"""The span model: one named, timed, attributed unit of work.

A :class:`Span` is the tracing layer's unit of record.  Spans nest —
every span carries its parent's id — and together the spans of one run
form a tree rooted at the CLI (or whatever opened the outermost span).
Durations come from the monotonic clock (``time.perf_counter``), so they
are immune to wall-clock steps; the wall-clock start is recorded too so
spans from different processes can be ordered on a shared timeline.

:class:`TraceContext` is the picklable handle that carries "who is my
parent" across process and thread boundaries: the experiment runtime
serializes it into work units shipped to pool workers, and the quote
server captures it at startup for its worker threads.
"""

from __future__ import annotations

import dataclasses
import os
import secrets
import time
from typing import Any, Optional

#: Span statuses.  ``degraded`` marks work that completed but fell back
#: to a safe answer (skipped window, shed request, blended-rate quote);
#: ``error`` marks work that raised.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_DEGRADED = "degraded"
STATUSES = (STATUS_OK, STATUS_ERROR, STATUS_DEGRADED)

#: Schema version stamped on every exported span line.
TRACE_SCHEMA_VERSION = 1


def new_id() -> str:
    """A fresh 64-bit random hex id (span or trace)."""
    return secrets.token_hex(8)


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """A picklable pointer to a span in some (possibly remote) process.

    Attributes:
        trace_id: The trace every descendant span must join.
        span_id: The parent id descendant spans must carry.
    """

    trace_id: str
    span_id: str

    def to_wire(self) -> "tuple[str, str]":
        """The tuple form serialized into work units (picklable, tiny)."""
        return (self.trace_id, self.span_id)

    @classmethod
    def from_wire(cls, wire: "tuple[str, str] | None") -> "Optional[TraceContext]":
        return None if wire is None else cls(*wire)


@dataclasses.dataclass
class Span:
    """One named, timed unit of work in a trace tree.

    Attributes:
        name: The stage name (``stream.window``, ``serve.batch``, ...);
            the summarize rollup groups by it.
        trace_id: The trace this span belongs to.
        span_id: This span's unique id.
        parent_id: The enclosing span's id (``None`` for a trace root).
        start_unix_s: Wall-clock start (``time.time()``), for cross-
            process ordering only.
        duration_s: Monotonic-clock duration, filled in when the span
            finishes.
        status: One of :data:`STATUSES`.
        attributes: Small JSON-able key/values describing the work.
        events: Point-in-time annotations (cache hits, drift decisions),
            each ``{"name": ..., "offset_s": ..., **attrs}``.
        pid: The process the span was recorded in (how a summarized
            trace proves the fan-out really crossed process boundaries).
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: "Optional[str]"
    start_unix_s: float
    duration_s: float = 0.0
    status: str = STATUS_OK
    attributes: "dict[str, Any]" = dataclasses.field(default_factory=dict)
    events: "list[dict]" = dataclasses.field(default_factory=list)
    pid: int = dataclasses.field(default_factory=os.getpid)
    #: Monotonic start, used only while the span is open (not exported).
    start_perf_s: float = dataclasses.field(
        default=0.0, repr=False, compare=False
    )

    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    # ------------------------------------------------------------------
    # Mutation while open
    # ------------------------------------------------------------------

    def set_attribute(self, name: str, value: Any) -> None:
        self.attributes[name] = value

    def set_status(self, status: str) -> None:
        if status not in STATUSES:
            raise ValueError(
                f"unknown span status {status!r}; expected one of {STATUSES}"
            )
        self.status = status

    def add_event(self, name: str, **attributes: Any) -> None:
        event = {
            "name": name,
            "offset_s": round(max(0.0, time.perf_counter() - self.start_perf_s), 9),
        }
        event.update(attributes)
        self.events.append(event)

    # ------------------------------------------------------------------
    # Serialization (JSONL wire format and worker→parent shipping)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "v": TRACE_SCHEMA_VERSION,
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix_s": self.start_unix_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "pid": self.pid,
            "attributes": self.attributes,
            "events": self.events,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(
            name=payload["name"],
            trace_id=payload["trace_id"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            start_unix_s=float(payload.get("start_unix_s", 0.0)),
            duration_s=float(payload.get("duration_s", 0.0)),
            status=payload.get("status", STATUS_OK),
            attributes=dict(payload.get("attributes", {})),
            events=list(payload.get("events", [])),
            pid=int(payload.get("pid", 0)),
        )
