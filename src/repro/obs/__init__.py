"""Observability: end-to-end tracing plus the metrics registry.

Every stage of the production chain — synth → calibrate → bundle → price
→ serve — records into this package, so a slow figure sweep or a
degraded quote can be attributed to the stage that caused it:

* :mod:`repro.obs.span` — the :class:`Span` model (name, monotonic
  duration, attributes, ``ok``/``error``/``degraded`` status, parent id)
  and the picklable :class:`TraceContext` handle.
* :mod:`repro.obs.tracer` — :class:`Tracer` (real spans, contextvar
  nesting, cross-process/thread propagation) and :class:`NoopTracer`
  (the near-zero-cost disabled path, installed by default).
* :mod:`repro.obs.export` — the JSONL :class:`TraceExporter`, trace
  loading, and the per-stage :func:`summarize_trace` rollup behind
  ``python -m repro trace summarize``.
* :mod:`repro.obs.metrics` — the process-global :data:`METRICS`
  registry of counters, stage timers, and latency reservoirs (moved
  here from ``repro.runtime.metrics``, which remains an alias).

Spans and counters share one export: :func:`to_json` merges the metrics
snapshot with the active tracer's per-stage span rollup — the payload
the CLI's ``--metrics`` flag writes.

Propagation contract: :func:`current_context` hands out a picklable
parent handle; workers (processes via
:mod:`repro.runtime.parallel`, threads via
:class:`repro.serve.server.QuoteServer`) run under
:func:`activate`/:func:`capture` and their spans are re-parented on
collection with :func:`adopt_spans`, so one ``--trace`` file tells the
whole fan-out story with zero orphan spans.
"""

from __future__ import annotations

import json

from repro.obs.export import (
    SUMMARY_QUANTILES,
    TraceExporter,
    read_trace,
    render_trace_summary,
    summarize_trace,
)
from repro.obs.metrics import (
    LATENCY_QUANTILES,
    METRICS,
    Metrics,
    RESERVOIR_CAPACITY,
    collect,
)
from repro.obs.span import (
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_OK,
    STATUSES,
    Span,
    TRACE_SCHEMA_VERSION,
    TraceContext,
    new_id,
)
from repro.obs.tracer import (
    NoopTracer,
    Tracer,
    activate,
    adopt_spans,
    capture,
    configure_tracing,
    current_context,
    event,
    get_tracer,
    set_tracer,
    span,
    span_stats,
    tracing_enabled,
)


def to_json(**extra) -> str:
    """One export for counters *and* spans (plus any extra key/values).

    The metrics registry's snapshot (counters, stage timers, latency
    quantiles) merged with the active tracer's per-span-name rollup
    under a ``"spans"`` key, as pretty JSON — what ``--metrics`` writes.
    """
    payload = json.loads(METRICS.to_json())
    payload["spans"] = span_stats()
    payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True, default=str)


__all__ = [
    "LATENCY_QUANTILES",
    "METRICS",
    "Metrics",
    "NoopTracer",
    "RESERVOIR_CAPACITY",
    "STATUSES",
    "STATUS_DEGRADED",
    "STATUS_ERROR",
    "STATUS_OK",
    "SUMMARY_QUANTILES",
    "Span",
    "TRACE_SCHEMA_VERSION",
    "TraceContext",
    "TraceExporter",
    "Tracer",
    "activate",
    "adopt_spans",
    "capture",
    "collect",
    "configure_tracing",
    "current_context",
    "event",
    "get_tracer",
    "new_id",
    "read_trace",
    "render_trace_summary",
    "set_tracer",
    "span",
    "span_stats",
    "summarize_trace",
    "to_json",
    "tracing_enabled",
]
