"""Tracers: span creation, context propagation, and the process global.

Two implementations share one interface:

* :class:`Tracer` — records real spans.  The current span lives in a
  :mod:`contextvars` variable, so nesting follows Python's control flow
  (including across ``await`` and into ``contextvars``-aware executors),
  and a *remote* parent installed with :meth:`Tracer.activate` lets work
  shipped to another process or thread re-join its caller's trace.
* :class:`NoopTracer` — the disabled path.  Every operation is a cheap
  no-op on shared singletons, so instrumented hot paths pay one global
  read and one method call when tracing is off.

The process-global tracer is a :data:`NoopTracer` until
:func:`configure_tracing` installs a real one (the CLI's ``--trace``
flag).  Module-level helpers (:func:`span`, :func:`event`,
:func:`current_context`, ...) always dispatch through the global, which
is what the instrumented subsystems call.

Cross-process collection: pool workers trace into a fresh buffering
:class:`Tracer` (see :func:`capture` and
:mod:`repro.runtime.parallel`), ship finished spans back as dicts with
the result, and the parent re-parents any orphans onto the submitting
span with :meth:`Tracer.adopt` — so one trace file tells the whole
fan-out story with no cross-process file contention.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
from typing import Any, Iterator, Optional

from repro.obs.span import (
    STATUS_ERROR,
    STATUS_OK,
    Span,
    TraceContext,
    new_id,
)

#: The innermost open span of the current logical context.
_CURRENT_SPAN: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)
#: A remote parent (another process/thread's span) to adopt when no
#: local span is open.
_REMOTE_PARENT: "contextvars.ContextVar[Optional[TraceContext]]" = (
    contextvars.ContextVar("repro_obs_remote_parent", default=None)
)


class _NoopSpan:
    """The span stand-in yielded while tracing is disabled."""

    __slots__ = ()

    def set_attribute(self, name: str, value: Any) -> None:
        pass

    def set_status(self, status: str) -> None:
        pass

    def add_event(self, name: str, **attributes: Any) -> None:
        pass


class _NoopSpanContext:
    """A reusable no-op context manager (no generator machinery)."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return _NOOP_SPAN

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()
_NOOP_SPAN_CONTEXT = _NoopSpanContext()


class NoopTracer:
    """The disabled tracer: same interface, near-zero cost, no spans."""

    enabled = False

    def span(self, name: str, **attributes: Any):
        return _NOOP_SPAN_CONTEXT

    def event(self, name: str, **attributes: Any) -> None:
        pass

    def current_span(self) -> "Optional[Span]":
        return None

    def current_context(self) -> "Optional[TraceContext]":
        return None

    def activate(self, context: "Optional[TraceContext]"):
        return contextlib.nullcontext()

    def adopt(self, span_dicts, parent: "Optional[TraceContext]" = None) -> None:
        pass

    def drain(self) -> "list[Span]":
        return []

    def span_stats(self) -> dict:
        return {}

    def close(self) -> None:
        pass


class Tracer:
    """Records real spans, keeps per-stage stats, exports on finish.

    Args:
        exporter: Object with ``export(span)`` (and optionally
            ``close()``), e.g. a JSONL
            :class:`~repro.obs.export.TraceExporter`.  Without one,
            finished spans are buffered in memory and handed out by
            :meth:`drain` — the capture mode pool workers run in.
    """

    enabled = True

    def __init__(self, exporter=None) -> None:
        self.exporter = exporter
        self._lock = threading.Lock()
        self._buffer: "list[Span]" = []
        self._stats: "dict[str, dict]" = {}

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def span(self, name: str, **attributes: Any) -> "Iterator[Span]":
        """Open a child span of the current (or remote) parent.

        The span becomes the current span for the ``with`` body, finishes
        on exit (status ``error`` and an ``exception`` event when the
        body raised), and is exported/buffered.
        """
        parent = _CURRENT_SPAN.get()
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            remote = _REMOTE_PARENT.get()
            if remote is not None:
                trace_id, parent_id = remote.trace_id, remote.span_id
            else:
                trace_id, parent_id = new_id(), None
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=new_id(),
            parent_id=parent_id,
            start_unix_s=time.time(),
            attributes=dict(attributes),
            start_perf_s=time.perf_counter(),
        )
        token = _CURRENT_SPAN.set(span)
        try:
            yield span
        except BaseException as exc:
            span.status = STATUS_ERROR
            span.add_event(
                "exception", type=type(exc).__name__, message=str(exc)
            )
            raise
        finally:
            span.duration_s = time.perf_counter() - span.start_perf_s
            _CURRENT_SPAN.reset(token)
            self._finish(span)

    def _finish(self, span: Span) -> None:
        with self._lock:
            stat = self._stats.setdefault(
                span.name, {"calls": 0, "seconds": 0.0, "errors": 0}
            )
            stat["calls"] += 1
            stat["seconds"] += span.duration_s
            if span.status == STATUS_ERROR:
                stat["errors"] += 1
            if self.exporter is None:
                self._buffer.append(span)
        if self.exporter is not None:
            self.exporter.export(span)

    # ------------------------------------------------------------------
    # Context plumbing
    # ------------------------------------------------------------------

    def event(self, name: str, **attributes: Any) -> None:
        """Annotate the current span (dropped when no span is open)."""
        span = _CURRENT_SPAN.get()
        if span is not None:
            span.add_event(name, **attributes)

    def current_span(self) -> "Optional[Span]":
        return _CURRENT_SPAN.get()

    def current_context(self) -> "Optional[TraceContext]":
        """The handle work shipped elsewhere needs to re-join this trace."""
        span = _CURRENT_SPAN.get()
        if span is not None:
            return span.context()
        return _REMOTE_PARENT.get()

    @contextlib.contextmanager
    def activate(self, context: "Optional[TraceContext]") -> "Iterator[None]":
        """Adopt a remote parent for the ``with`` body.

        Spans opened inside (with no local parent) join ``context``'s
        trace as its children — the receiving half of cross-process and
        cross-thread propagation.  ``None`` is a no-op, so call sites
        don't need to branch.
        """
        if context is None:
            yield
            return
        token = _REMOTE_PARENT.set(context)
        try:
            yield
        finally:
            _REMOTE_PARENT.reset(token)

    def adopt(
        self,
        span_dicts,
        parent: "Optional[TraceContext]" = None,
    ) -> int:
        """Re-parent and record spans collected from a worker.

        Spans that already belong to ``parent``'s trace pass through
        untouched.  Foreign spans (a worker that traced without context)
        are grafted in: their trace id is rewritten and their roots are
        re-parented onto ``parent``.  Returns the number adopted.
        """
        spans = [
            s if isinstance(s, Span) else Span.from_dict(s) for s in span_dicts
        ]
        if parent is not None:
            local_ids = {s.span_id for s in spans}
            for span in spans:
                if span.trace_id != parent.trace_id:
                    span.trace_id = parent.trace_id
                    if span.parent_id is None or span.parent_id not in local_ids:
                        span.parent_id = parent.span_id
                elif span.parent_id is None:
                    span.parent_id = parent.span_id
        for span in spans:
            self._finish(span)
        return len(spans)

    # ------------------------------------------------------------------
    # Reading out
    # ------------------------------------------------------------------

    def drain(self) -> "list[Span]":
        """Remove and return the buffered spans (capture mode only)."""
        with self._lock:
            spans, self._buffer = self._buffer, []
        return spans

    def span_stats(self) -> dict:
        """``{name: {calls, seconds, errors}}`` for every finished span."""
        with self._lock:
            return {name: dict(stat) for name, stat in self._stats.items()}

    def close(self) -> None:
        if self.exporter is not None and hasattr(self.exporter, "close"):
            self.exporter.close()


# ----------------------------------------------------------------------
# The process-global tracer
# ----------------------------------------------------------------------

_TRACER: "Tracer | NoopTracer" = NoopTracer()


def get_tracer() -> "Tracer | NoopTracer":
    return _TRACER


def set_tracer(tracer: "Tracer | NoopTracer") -> "Tracer | NoopTracer":
    """Install ``tracer`` as the process global; returns the old one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def configure_tracing(path=None, exporter=None) -> "Tracer | NoopTracer":
    """Install the global tracer from a trace path (or explicit exporter).

    ``path=None`` (and no exporter) restores the no-op tracer.  The
    previously installed tracer is closed, so reconfiguring flushes its
    file.
    """
    from repro.obs.export import TraceExporter

    if exporter is None and path is not None:
        exporter = TraceExporter(path)
    new = Tracer(exporter=exporter) if exporter is not None else NoopTracer()
    old = set_tracer(new)
    old.close()
    return new


def tracing_enabled() -> bool:
    return _TRACER.enabled


@contextlib.contextmanager
def capture(
    context: "Optional[TraceContext]",
) -> "Iterator[Tracer | NoopTracer]":
    """Trace the ``with`` body into a buffering tracer (worker side).

    Installs a fresh buffering :class:`Tracer` as the process global with
    ``context`` active, yields it (``drain()`` its spans afterwards), and
    restores the previous tracer on exit.  With ``context=None`` the
    body runs under the inherited tracer untouched and the yielded
    tracer drains empty — callers need no tracing-enabled branch.
    """
    if context is None:
        yield NoopTracer()
        return
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        with tracer.activate(context):
            yield tracer
    finally:
        set_tracer(previous)


# ----------------------------------------------------------------------
# Module-level conveniences (what instrumented code calls)
# ----------------------------------------------------------------------


def span(name: str, **attributes: Any):
    """Open a span on the global tracer (no-op context when disabled)."""
    return _TRACER.span(name, **attributes)


def event(name: str, **attributes: Any) -> None:
    """Annotate the global tracer's current span (no-op when disabled)."""
    _TRACER.event(name, **attributes)


def current_context() -> "Optional[TraceContext]":
    return _TRACER.current_context()


def activate(context: "Optional[TraceContext]"):
    return _TRACER.activate(context)


def adopt_spans(span_dicts, parent: "Optional[TraceContext]" = None) -> int:
    """Feed worker-collected spans into the global tracer (0 if no-op)."""
    if not span_dicts:
        return 0
    return _TRACER.adopt(span_dicts, parent) or 0


def span_stats() -> dict:
    return _TRACER.span_stats()
