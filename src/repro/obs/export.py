"""Trace export (JSONL) and the per-stage summarize rollup.

One span per line, JSON, append-ordered by *finish* time — children
therefore precede their parents, and the CLI root span is the last line
of a command's trace.  The format is deliberately boring: greppable,
streamable, diffable, and parseable with nothing but the stdlib.

:func:`summarize_trace` is the operator's entry point (surfaced as
``python -m repro trace summarize <path>``): group spans by name
("stage"), report count / errors / degraded / p50 / p95 / max latency
per stage, list the processes that contributed, and count *orphans* —
spans whose parent id resolves to no span in the file.  A healthy trace
has zero orphans; a nonzero count means context propagation broke
somewhere (exactly the regression the obs tests pin).
"""

from __future__ import annotations

import json
import pathlib
import threading
from typing import Optional

from repro.obs.span import STATUS_DEGRADED, STATUS_ERROR, Span

#: Quantiles reported per stage by the summarize rollup.
SUMMARY_QUANTILES = (0.5, 0.95)


class TraceExporter:
    """Append-only JSONL span writer (thread-safe, lazily opened).

    Args:
        path: File to append spans to.  Created (with parents) on the
            first export, so configuring tracing costs nothing until a
            span actually finishes.
    """

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)
        self._lock = threading.Lock()
        self._handle = None
        self.exported = 0

    def export(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True)
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a", encoding="utf-8")
            self._handle.write(line + "\n")
            self.exported += 1

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def read_trace(path) -> "list[Span]":
    """Load every span from a JSONL trace file (blank lines skipped)."""
    spans = []
    text = pathlib.Path(path).read_text(encoding="utf-8")
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


def _quantile(ordered: "list[float]", q: float) -> float:
    """Nearest-rank quantile of an already-sorted sample list."""
    n = len(ordered)
    rank = max(0, min(n - 1, int(q * n + 0.999999) - 1))
    return ordered[rank]


def summarize_trace(spans: "list[Span]") -> dict:
    """Per-stage latency/error rollup plus trace-health counters.

    Returns plain data::

        {
          "spans": int, "traces": int, "processes": [pid, ...],
          "orphans": int, "errors": int, "degraded": int,
          "wall_s": float,             # duration of the longest root span
          "stages": {
            name: {"count", "errors", "degraded", "processes",
                   "p50_ms", "p95_ms", "max_ms", "total_s"},
          },
        }
    """
    span_ids = {s.span_id for s in spans}
    orphans = sum(
        1 for s in spans if s.parent_id is not None and s.parent_id not in span_ids
    )
    stages: "dict[str, dict]" = {}
    for s in spans:
        stage = stages.setdefault(
            s.name,
            {"durations": [], "errors": 0, "degraded": 0, "pids": set()},
        )
        stage["durations"].append(s.duration_s)
        stage["pids"].add(s.pid)
        if s.status == STATUS_ERROR:
            stage["errors"] += 1
        elif s.status == STATUS_DEGRADED:
            stage["degraded"] += 1
    rolled = {}
    for name in sorted(stages):
        stage = stages[name]
        ordered = sorted(stage["durations"])
        rolled[name] = {
            "count": len(ordered),
            "errors": stage["errors"],
            "degraded": stage["degraded"],
            "processes": len(stage["pids"]),
            "p50_ms": round(_quantile(ordered, 0.5) * 1000.0, 3),
            "p95_ms": round(_quantile(ordered, 0.95) * 1000.0, 3),
            "max_ms": round(ordered[-1] * 1000.0, 3),
            "total_s": round(sum(ordered), 6),
        }
    roots = [s for s in spans if s.parent_id is None]
    return {
        "spans": len(spans),
        "traces": len({s.trace_id for s in spans}),
        "processes": sorted({s.pid for s in spans}),
        "orphans": orphans,
        "errors": sum(1 for s in spans if s.status == STATUS_ERROR),
        "degraded": sum(1 for s in spans if s.status == STATUS_DEGRADED),
        "wall_s": max((s.duration_s for s in roots), default=0.0),
        "stages": rolled,
    }


def render_trace_summary(summary: dict, path: "Optional[str]" = None) -> str:
    """The aligned-text report ``repro trace summarize`` prints."""
    lines = []
    if path is not None:
        lines.append(f"trace: {path}")
    lines.append(
        f"spans: {summary['spans']} in {summary['traces']} trace(s) "
        f"across {len(summary['processes'])} process(es); "
        f"orphans: {summary['orphans']}, errors: {summary['errors']}, "
        f"degraded: {summary['degraded']}"
    )
    name_width = max([len(n) for n in summary["stages"]] + [len("stage")])
    lines.append(
        f"{'stage':<{name_width}} {'count':>6} {'err':>4} {'degr':>5} "
        f"{'procs':>5} {'p50 ms':>9} {'p95 ms':>9} {'max ms':>9} {'total s':>9}"
    )
    for name, stage in summary["stages"].items():
        lines.append(
            f"{name:<{name_width}} {stage['count']:>6} {stage['errors']:>4} "
            f"{stage['degraded']:>5} {stage['processes']:>5} "
            f"{stage['p50_ms']:>9.3f} {stage['p95_ms']:>9.3f} "
            f"{stage['max_ms']:>9.3f} {stage['total_s']:>9.3f}"
        )
    if summary["orphans"]:
        lines.append(
            f"WARNING: {summary['orphans']} orphan span(s) — a parent id "
            "resolved to no span in this file; context propagation broke "
            "or the trace mixes unrelated runs"
        )
    return "\n".join(lines)
