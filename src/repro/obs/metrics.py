"""Lightweight stage timers, counters, and latency reservoirs.

Every driver (and the benchmark harness) funnels its bookkeeping through
the process-global :data:`METRICS` registry: how many markets were built,
how many datasets were generated, how often the result cache hit, how
many workers a fan-out used, and how long each named stage took.  The
registry serializes to structured JSON so benchmark runs leave a
machine-readable perf trail under ``benchmarks/output/``.

This module lives under :mod:`repro.obs` so counters and spans share one
observability surface — :func:`repro.obs.to_json` merges this registry's
snapshot with the active tracer's span rollup into a single export.  The
old import path, :mod:`repro.runtime.metrics`, remains a compatible
alias.

The registry is deliberately tiny — a dict of counters, a dict of
``{seconds, calls}`` stage timers, and a dict of bounded latency
reservoirs behind one lock — so instrumenting a hot path costs
nanoseconds, not milliseconds.  Reservoirs keep the most recent
:data:`RESERVOIR_CAPACITY` samples per series, enough to export stable
p50/p95/p99 tails for the serving and streaming stages without unbounded
memory.  Worker processes report
their own deltas back to the parent (see :mod:`repro.runtime.parallel`),
which merges them with :meth:`Metrics.merge`, so a parallel run's JSON
accounts for work done everywhere.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from collections.abc import Iterator, Mapping, Sequence

#: Samples kept per latency reservoir (ring buffer; oldest overwritten).
RESERVOIR_CAPACITY = 1024

#: Quantiles exported for every latency reservoir.
LATENCY_QUANTILES = (0.5, 0.95, 0.99)


class _Reservoir:
    """A bounded ring of the most recent samples for one latency series.

    Cumulative stage timers answer "how much time went where" but flatten
    the distribution; serving paths care about tails.  The reservoir keeps
    the last :data:`RESERVOIR_CAPACITY` observations (bounded memory, no
    matter how long the server runs) and computes nearest-rank quantiles
    over them on demand.
    """

    __slots__ = ("samples", "count")

    def __init__(self) -> None:
        self.samples: "list[float]" = []
        self.count = 0

    def add(self, value: float) -> None:
        if len(self.samples) < RESERVOIR_CAPACITY:
            self.samples.append(value)
        else:
            self.samples[self.count % RESERVOIR_CAPACITY] = value
        self.count += 1

    def quantiles(
        self, qs: Sequence[float] = LATENCY_QUANTILES
    ) -> "dict[str, float]":
        """Nearest-rank quantiles (plus max) over the retained samples."""
        ordered = sorted(self.samples)
        n = len(ordered)
        out = {}
        for q in qs:
            rank = max(0, min(n - 1, int(q * n + 0.999999) - 1))
            out[f"p{int(q * 100)}"] = ordered[rank]
        out["max"] = ordered[-1]
        return out


class Metrics:
    """A thread-safe registry of counters, stage timers, and latency
    reservoirs."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: "dict[str, int]" = {}
        self._stages: "dict[str, dict]" = {}
        self._latencies: "dict[str, _Reservoir]" = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named counter (creating it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe(self, name: str, seconds: float) -> None:
        """Record one timed call of the named stage."""
        with self._lock:
            stage = self._stages.setdefault(name, {"seconds": 0.0, "calls": 0})
            stage["seconds"] += seconds
            stage["calls"] += 1

    @contextlib.contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with``-block as one call of the named stage."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    def observe_latency(self, name: str, seconds: float) -> None:
        """Record one sample in the named bounded latency reservoir.

        Unlike :meth:`observe`, which only accumulates totals, reservoir
        samples feed tail quantiles (:meth:`latency_quantiles`, and the
        ``latencies`` section of :meth:`to_json`).
        """
        with self._lock:
            reservoir = self._latencies.setdefault(name, _Reservoir())
            reservoir.add(float(seconds))

    @contextlib.contextmanager
    def latency(self, name: str) -> Iterator[None]:
        """Time a ``with``-block as one reservoir sample of ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe_latency(name, time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Reading / merging
    # ------------------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def stage_seconds(self, name: str) -> float:
        with self._lock:
            stage = self._stages.get(name)
            return float(stage["seconds"]) if stage else 0.0

    def latency_count(self, name: str) -> int:
        """Total samples ever observed for the named reservoir."""
        with self._lock:
            reservoir = self._latencies.get(name)
            return reservoir.count if reservoir else 0

    def latency_quantiles(
        self, name: str, qs: Sequence[float] = LATENCY_QUANTILES
    ) -> "dict[str, float]":
        """``{"p50": ..., "p95": ..., "p99": ..., "max": ...}`` in seconds.

        Empty for a reservoir that never saw a sample.
        """
        with self._lock:
            reservoir = self._latencies.get(name)
            if reservoir is None or not reservoir.samples:
                return {}
            return reservoir.quantiles(qs)

    def snapshot(self) -> dict:
        """A deep copy of the current state (counters + stages + latencies).

        Latency reservoirs serialize as their retained samples so a
        snapshot round-trips through :meth:`merge` without losing tail
        information (beyond the reservoir bound itself).
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "stages": {k: dict(v) for k, v in self._stages.items()},
                "latencies": {
                    k: {"count": r.count, "samples": list(r.samples)}
                    for k, r in self._latencies.items()
                },
            }

    def merge(self, other: Mapping) -> None:
        """Fold another snapshot's counters, stage times, and latency
        samples into this one.

        Used by the parallel backend to account for work done in worker
        processes, whose registries the parent cannot see directly.
        """
        for name, amount in other.get("counters", {}).items():
            self.incr(name, amount)
        for name, stage in other.get("stages", {}).items():
            with self._lock:
                mine = self._stages.setdefault(name, {"seconds": 0.0, "calls": 0})
                mine["seconds"] += stage.get("seconds", 0.0)
                mine["calls"] += stage.get("calls", 0)
        for name, payload in other.get("latencies", {}).items():
            samples = payload.get("samples", [])
            with self._lock:
                reservoir = self._latencies.setdefault(name, _Reservoir())
                for sample in samples:
                    reservoir.add(float(sample))
                # Keep the true observation count even when the ring
                # already dropped some of the other side's samples.
                reservoir.count += max(0, payload.get("count", 0) - len(samples))

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._stages.clear()
            self._latencies.clear()

    def to_json(self, **extra) -> str:
        """The snapshot (plus any extra key/values) as pretty JSON.

        Latency reservoirs export as quantile summaries (count, p50, p95,
        p99, max seconds) rather than raw samples, so the JSON stays small
        and diffs stay readable.
        """
        payload = self.snapshot()
        payload["latencies"] = {
            name: {"count": entry["count"], **_summarize(entry["samples"])}
            for name, entry in payload["latencies"].items()
        }
        payload.update(extra)
        return json.dumps(payload, indent=2, sort_keys=True)


def _summarize(samples: "list[float]") -> "dict[str, float]":
    """Quantile summary of a raw sample list (empty dict when empty)."""
    if not samples:
        return {}
    reservoir = _Reservoir()
    reservoir.samples = list(samples)
    return reservoir.quantiles()


#: The process-global registry every runtime layer records into.
METRICS = Metrics()


@contextlib.contextmanager
def collect(label: str) -> Iterator[dict]:
    """Time a block and yield a report dict filled in on exit.

    >>> with collect("figure14") as report:
    ...     run_driver()
    >>> report["wall_time_s"]  # doctest: +SKIP

    The yielded dict is populated *after* the block exits with the wall
    time, the label, and a full metrics snapshot — handy for drivers that
    want to emit one structured-JSON record per run.
    """
    report: dict = {"label": label}
    start = time.perf_counter()
    try:
        yield report
    finally:
        report["wall_time_s"] = time.perf_counter() - start
        report.update(METRICS.snapshot())
