"""Atomic hot-swap of the active pricing snapshot.

The registry is the rendezvous between the producer side (the streaming
repricer publishing re-tiered designs) and the consumer side (quote
engines answering traffic).  It holds at most one *active*
:class:`~repro.serve.snapshot.PricingSnapshot` behind a single reference.
Because snapshots are immutable and the reference is swapped in one
assignment (atomic under the interpreter), readers either see the old
consistent snapshot or the new consistent snapshot — never a mix of old
boundaries with new prices.  The writer lock only serializes *writers*
(version assignment); readers never take it.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.accounting.tier_designer import TierDesign
from repro.errors import SnapshotUnavailableError
from repro.obs import METRICS
from repro.serve.snapshot import PricingSnapshot
from repro.stream.repricer import DesignPublication


class SnapshotRegistry:
    """Holds the active snapshot and swaps it atomically on publish."""

    def __init__(self) -> None:
        self._writer_lock = threading.Lock()
        self._active: "Optional[PricingSnapshot]" = None
        self._version = 0
        #: Lifetime counts, readable without a lock (monotonic ints).
        self.swaps = 0
        self.clears = 0

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------

    def current(self) -> "Optional[PricingSnapshot]":
        """The active snapshot, or ``None`` when nothing is published.

        Lock-free: one attribute read.  The returned snapshot stays valid
        (and consistent) even if a swap lands immediately after.
        """
        return self._active

    def require(self) -> PricingSnapshot:
        """The active snapshot, or :class:`SnapshotUnavailableError`."""
        snapshot = self._active
        if snapshot is None:
            raise SnapshotUnavailableError(
                "no pricing snapshot is published; quotes can only degrade "
                "to the blended rate"
            )
        return snapshot

    @property
    def version(self) -> int:
        """Version of the last publish (0 before the first)."""
        return self._version

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------

    def publish(
        self,
        design: TierDesign,
        *,
        config_digest: str,
        blended_rate: float,
        gamma: float,
        reference_distance_miles: "Optional[float]" = None,
        published_at_ms: int = 0,
    ) -> PricingSnapshot:
        """Freeze a design into a snapshot and make it active."""
        with self._writer_lock:
            version = self._version + 1
            snapshot = PricingSnapshot.build(
                design,
                version=version,
                config_digest=config_digest,
                blended_rate=blended_rate,
                gamma=gamma,
                reference_distance_miles=reference_distance_miles,
                published_at_ms=published_at_ms,
            )
            self._install(snapshot, version)
        return snapshot

    def publish_snapshot(self, snapshot: PricingSnapshot) -> PricingSnapshot:
        """Install an already-built snapshot, re-versioning it here."""
        import dataclasses

        with self._writer_lock:
            version = self._version + 1
            if snapshot.version != version:
                snapshot = dataclasses.replace(snapshot, version=version)
            self._install(snapshot, version)
        return snapshot

    def adopt(self, snapshot: PricingSnapshot) -> PricingSnapshot:
        """Install an externally versioned snapshot, as-is.

        Unlike :meth:`publish_snapshot`, the snapshot's own ``version``
        is preserved: fleet shard workers adopt coordinator-versioned
        shared snapshots, and every quote must carry the *fleet-wide*
        version so a cutover is provable from the answers alone.
        """
        with self._writer_lock:
            self._install(snapshot, int(snapshot.version))
        return snapshot

    def _install(self, snapshot: PricingSnapshot, version: int) -> None:
        self._version = version
        self._active = snapshot  # the atomic hot-swap
        self.swaps += 1
        METRICS.incr("serve.swaps")

    def clear(self) -> None:
        """Drop the active snapshot (quotes degrade until the next publish).

        Operational escape hatch: pulled when the published design is
        discovered to be wrong and blended-rate quoting is safer than
        serving it.  Recovery is automatic on the next publish.
        """
        with self._writer_lock:
            self._active = None
            self.clears += 1
            METRICS.incr("serve.clears")

    # ------------------------------------------------------------------
    # Producer wiring
    # ------------------------------------------------------------------

    def subscriber(
        self, config_digest: str
    ) -> "Callable[[DesignPublication], None]":
        """A callback for ``on_design_published`` hooks.

        Wire a streaming pipeline straight into the registry::

            registry = SnapshotRegistry()
            pipeline = StreamingPipeline(..., config=config)
            pipeline.repricer.on_design_published = registry.subscriber(
                pipeline.config_digest
            )

        (or pass ``on_design_published=`` to the pipeline constructor).
        Every accepted re-tiering then hot-swaps the active snapshot.
        """

        def _on_publication(publication: DesignPublication) -> None:
            with self._writer_lock:
                version = self._version + 1
                snapshot = PricingSnapshot.from_publication(
                    publication,
                    version=version,
                    config_digest=config_digest,
                )
                self._install(snapshot, version)

        return _on_publication
