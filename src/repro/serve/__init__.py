"""Online quote serving: answering pricing questions at traffic scale.

The batch runtime computes tier designs; the streaming repricer keeps
them fresh.  This package is the piece that *answers* with them: an
in-process concurrent quote service built from

* :class:`PricingSnapshot` — an immutable, versioned, digest-stamped view
  of one published design (tier rate card + vectorized destination→tier
  index + calibration scale);
* :class:`SnapshotRegistry` — atomic hot-swap of the active snapshot;
  readers never see a torn state, writers never block readers;
* :class:`QuoteEngine` — single and batched pricing queries ("flow of
  ``v`` Mbps over ``d`` miles to ``dst`` → tier, unit price, profit
  contribution"), vectorized through the same cost plumbing the designs
  were calibrated with;
* :class:`QuoteServer` — thread-pool workers over a bounded admission
  queue: per-request timeouts, drop-oldest load shedding, and graceful
  degradation to the blended rate ``P0`` whenever no snapshot can answer;
* :mod:`~repro.serve.loadgen` — the seeded load generator behind
  ``python -m repro serve --selftest`` and the serve benchmark.

Wiring it to a live stream is one argument::

    registry = SnapshotRegistry()
    pipeline = StreamingPipeline(
        ..., on_design_published=registry.subscriber(digest)
    )

Every accepted re-tiering then hot-swaps the active snapshot, and
subsequent quotes reflect the new tier prices.
"""

from repro.config import ServeConfig
from repro.serve.engine import Quote, QuoteEngine, QuoteRequest
from repro.serve.loadgen import LoadReport, generate_requests, run_load
from repro.serve.registry import SnapshotRegistry
from repro.serve.server import PendingQuote, QuoteServer
from repro.serve.snapshot import PricingSnapshot, UNKNOWN_TIER

__all__ = [
    "LoadReport",
    "PendingQuote",
    "PricingSnapshot",
    "Quote",
    "QuoteEngine",
    "QuoteRequest",
    "QuoteServer",
    "ServeConfig",
    "SnapshotRegistry",
    "UNKNOWN_TIER",
    "generate_requests",
    "run_load",
]
