"""Immutable, quote-ready views of a published tier design.

A :class:`PricingSnapshot` is everything the quote path needs, frozen at
publish time: the tier rate card, a vectorized destination→tier index,
the calibration scale ``gamma`` (relative cost → $/Mbps), the blended
reference rate ``P0``, and two identity fields — a monotonic ``version``
and a content ``digest`` — that let every quote prove which snapshot
priced it.  Snapshots are never mutated after construction (the lookup
arrays are read-only numpy arrays), so a reader that grabbed a snapshot
reference can keep quoting from it while the registry swaps in a newer
one: there is no torn state to observe, only an older consistent one.

``config_digest`` records the *regime* the snapshot was derived under
(the streaming pipeline's configuration fingerprint, or any caller-chosen
string).  Quote requests may pin a regime; a mismatch degrades the quote
to the blended rate rather than pricing it off the wrong market model.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.accounting.tier_designer import TierDesign
from repro.errors import DataError
from repro.runtime.cache import config_hash
from repro.stream.repricer import DesignPublication

#: Sentinel tier id for destinations the design has no tier for.
UNKNOWN_TIER = 0


@dataclasses.dataclass(frozen=True)
class PricingSnapshot:
    """One immutable, versioned pricing state.

    Attributes:
        version: Monotonic publish counter (assigned by the registry).
        digest: Content hash of the snapshot (rates, destinations, model
            parameters) — the per-quote consistency proof.
        config_digest: Fingerprint of the regime (pipeline configuration)
            the design was derived under.
        published_at_ms: Event time the design took effect.
        blended_rate: The blended reference rate ``P0`` ($/Mbps/month).
        gamma: Dollar scale mapping relative costs to $/Mbps.
        reference_distance_miles: Maximum haul distance of the calibration
            flow set — the cost-normalization frame quote costs are
            computed in (``None``: normalize per batch, the legacy
            behavior for hand-built snapshots).
        provider_asn: ASN of the design's route communities.
        rates: Tier id (1-based) -> $/Mbps/month.
    """

    version: int
    digest: str
    config_digest: str
    published_at_ms: int
    blended_rate: float
    gamma: float
    reference_distance_miles: Optional[float]
    provider_asn: int
    rates: dict
    _dsts: np.ndarray = dataclasses.field(repr=False)
    _tiers: np.ndarray = dataclasses.field(repr=False)
    _rate_by_tier: np.ndarray = dataclasses.field(repr=False)

    @classmethod
    def build(
        cls,
        design: TierDesign,
        *,
        version: int,
        config_digest: str,
        blended_rate: float,
        gamma: float,
        reference_distance_miles: "Optional[float]" = None,
        published_at_ms: int = 0,
    ) -> "PricingSnapshot":
        """Freeze a :class:`TierDesign` into a quote-ready snapshot."""
        if not design.rates:
            raise DataError("cannot snapshot a design with no tiers")
        if not design.tier_of_destination:
            raise DataError("cannot snapshot a design with no destinations")
        blended_rate = float(blended_rate)
        tier_ids = sorted(design.rates)
        if tier_ids != list(range(1, len(tier_ids) + 1)):
            raise DataError(
                f"design tiers must be contiguous from 1, got {tier_ids}"
            )
        # Sorted destination column + aligned tier column: batch lookups
        # are one searchsorted, not a Python loop over dict gets.
        items = sorted(design.tier_of_destination.items())
        dsts = np.array([dst for dst, _ in items], dtype=object)
        tiers = np.array([tier for _, tier in items], dtype=np.int64)
        # Index 0 is the unknown-destination fallback: the blended rate,
        # matching replay_design_prices' safe default.
        rate_by_tier = np.array(
            [blended_rate] + [float(design.rates[t]) for t in tier_ids]
        )
        dsts.setflags(write=False)
        tiers.setflags(write=False)
        rate_by_tier.setflags(write=False)
        reference = (
            None
            if reference_distance_miles is None
            else float(reference_distance_miles)
        )
        digest = config_hash(
            {
                "config_digest": config_digest,
                "blended_rate": blended_rate,
                "gamma": float(gamma),
                "reference_distance_miles": reference,
                "provider_asn": int(design.provider_asn),
                "rates": {str(t): float(design.rates[t]) for t in tier_ids},
                "destinations": [
                    [dst, int(tier)] for dst, tier in items
                ],
            }
        )
        return cls(
            version=int(version),
            digest=digest,
            config_digest=str(config_digest),
            published_at_ms=int(published_at_ms),
            blended_rate=blended_rate,
            gamma=float(gamma),
            reference_distance_miles=reference,
            provider_asn=int(design.provider_asn),
            rates={t: float(design.rates[t]) for t in tier_ids},
            _dsts=dsts,
            _tiers=tiers,
            _rate_by_tier=rate_by_tier,
        )

    @classmethod
    def from_publication(
        cls,
        publication: DesignPublication,
        *,
        version: int,
        config_digest: str,
    ) -> "PricingSnapshot":
        """Snapshot of a streaming re-tier publication."""
        return cls.build(
            publication.design,
            version=version,
            config_digest=config_digest,
            blended_rate=publication.blended_rate,
            gamma=publication.gamma,
            reference_distance_miles=publication.reference_distance_miles,
            published_at_ms=publication.window_end_ms,
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    @property
    def n_tiers(self) -> int:
        return len(self.rates)

    @property
    def n_destinations(self) -> int:
        return int(self._dsts.size)

    @property
    def destinations(self) -> tuple:
        """The designed destinations, sorted (load generators sample it)."""
        return tuple(self._dsts)

    def tiers_for(self, destinations) -> np.ndarray:
        """Vectorized destination→tier lookup.

        Returns one tier id per destination; :data:`UNKNOWN_TIER` (0) for
        destinations the design has no tier for.
        """
        queries = np.asarray(destinations, dtype=object)
        if queries.size == 0:
            return np.zeros(0, dtype=np.int64)
        positions = np.searchsorted(self._dsts, queries)
        positions = np.minimum(positions, self._dsts.size - 1)
        hits = self._dsts[positions] == queries
        tiers = np.where(hits, self._tiers[positions], UNKNOWN_TIER)
        return tiers.astype(np.int64)

    def prices_for_tiers(self, tiers: np.ndarray) -> np.ndarray:
        """Tier ids → unit prices; unknown (0) maps to the blended rate."""
        return self._rate_by_tier[np.asarray(tiers, dtype=np.int64)]

    def tier_for(self, destination: str) -> int:
        """Single-destination lookup (0 = unknown)."""
        return int(self.tiers_for([destination])[0])

    def unit_costs(self, relative_costs: np.ndarray) -> np.ndarray:
        """Relative delivery costs → calibrated $/Mbps unit costs."""
        return self.gamma * np.asarray(relative_costs, dtype=float)

    def describe(self) -> str:
        tiers = ", ".join(
            f"{t}:${self.rates[t]:.2f}" for t in sorted(self.rates)
        )
        return (
            f"PricingSnapshot(v{self.version}, digest={self.digest[:12]}, "
            f"{self.n_tiers} tiers [{tiers}], "
            f"{self.n_destinations} destinations, "
            f"P0=${self.blended_rate}/Mbps, gamma={self.gamma:.4g})"
        )
