"""Answering pricing questions against the active snapshot.

The engine turns "a flow of ``v`` Mbps over ``d`` miles toward
destination ``dst``" into "tier ``t`` at ``p`` $/Mbps, expected profit
contribution ``(p - c) * v`` $/month", where the unit cost ``c`` comes
from the same cost-model plumbing the batch pipeline calibrates with
(``c = gamma * f``, :class:`~repro.core.cost.CostModel` relative costs
scaled by the snapshot's calibration).

Batches are the native shape: one snapshot grab, one vectorized
destination→tier lookup, one cost-model pass over the whole batch — no
per-flow Python loop.  :meth:`QuoteEngine.quote` is the one-element
special case.

Degradation, not exceptions, is the failure mode: with no snapshot
published (or a request pinned to a different regime than the active
snapshot), the quote comes back at the blended rate ``P0`` with
``degraded=True`` — the operator's safe default, the same fallback the
drift replay uses for unknown destinations.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.core.cost import CostModel
from repro.core.flow import FlowSet, REGION_CODE, VALID_REGIONS
from repro.errors import ConfigurationError, DataError
from repro import obs
from repro.obs import METRICS
from repro.serve.registry import SnapshotRegistry
from repro.serve.snapshot import PricingSnapshot, UNKNOWN_TIER


@dataclasses.dataclass(frozen=True)
class QuoteRequest:
    """One pricing question.

    Attributes:
        dst: Destination address the flow heads toward (``None`` quotes
            an anonymous flow: always the blended fallback tier).
        volume_mbps: Flow volume (must be positive).
        distance_miles: Haul distance, the delivery-cost proxy.
        region: Optional region label for regional cost models.
        regime: Optional pinned configuration digest; a mismatch with the
            active snapshot's regime degrades the quote instead of pricing
            it off the wrong market model.
    """

    dst: Optional[str] = None
    volume_mbps: float = 1.0
    distance_miles: float = 1.0
    region: Optional[str] = None
    regime: Optional[str] = None

    def __post_init__(self) -> None:
        if not math.isfinite(self.volume_mbps) or self.volume_mbps <= 0:
            raise DataError(
                f"quote volume must be positive, got {self.volume_mbps!r}"
            )
        if not math.isfinite(self.distance_miles) or self.distance_miles < 0:
            raise DataError(
                f"quote distance must be non-negative, got "
                f"{self.distance_miles!r}"
            )
        if self.region is not None and self.region not in VALID_REGIONS:
            raise DataError(
                f"unknown region {self.region!r}; expected one of "
                f"{VALID_REGIONS}"
            )


@dataclasses.dataclass(frozen=True)
class Quote:
    """One pricing answer.

    ``degraded`` quotes price at the blended rate with no tier, cost, or
    profit attribution (there is no calibrated snapshot to attribute
    against).  ``known`` is ``False`` when the destination is absent from
    the design (quoted at the blended fallback, but *not* degraded — the
    snapshot itself answered).
    """

    unit_price: float
    tier: Optional[int]
    known: bool
    degraded: bool
    unit_cost: Optional[float] = None
    profit_contribution: Optional[float] = None
    snapshot_version: Optional[int] = None
    snapshot_digest: Optional[str] = None
    reason: Optional[str] = None


class QuoteEngine:
    """Prices quote requests against a registry's active snapshot.

    Args:
        registry: Where published snapshots are read from.
        cost_model: The delivery-cost model quotes attribute costs with;
            must match the model the designs were calibrated under and
            must not split flows (destination-type models do).
        fallback_blended_rate: ``P0`` used for degraded quotes when not
            even a snapshot is available to supply one.
    """

    def __init__(
        self,
        registry: SnapshotRegistry,
        cost_model: CostModel,
        fallback_blended_rate: float = 20.0,
    ) -> None:
        if fallback_blended_rate <= 0:
            raise ConfigurationError(
                f"fallback blended rate must be positive, got "
                f"{fallback_blended_rate}"
            )
        self.registry = registry
        self.cost_model = cost_model
        self.fallback_blended_rate = float(fallback_blended_rate)

    # ------------------------------------------------------------------
    # Quoting
    # ------------------------------------------------------------------

    def quote(self, request: QuoteRequest, strict: bool = False) -> Quote:
        """Price one request.

        ``strict=True`` raises
        :class:`~repro.errors.SnapshotUnavailableError` instead of
        degrading when nothing is published.
        """
        if strict:
            self.registry.require()
        return self.quote_batch([request])[0]

    def quote_batch(self, requests: "Sequence[QuoteRequest]") -> "list[Quote]":
        """Price a batch under one consistent snapshot.

        The snapshot reference is grabbed once, so every quote in the
        batch is answered by the same published state even if swaps land
        mid-batch.
        """
        requests = list(requests)
        if not requests:
            return []
        snapshot = self.registry.current()
        METRICS.incr("serve.quotes", len(requests))
        if snapshot is None:
            METRICS.incr("serve.degraded", len(requests))
            obs.event(
                "engine.degraded",
                reason="no snapshot published",
                requests=len(requests),
            )
            return [
                self.degraded_quote(r, reason="no snapshot published")
                for r in requests
            ]

        # Requests pinned to a different regime degrade individually; the
        # rest price on the active snapshot.
        quotes: "list[Optional[Quote]]" = [None] * len(requests)
        live = []
        for i, request in enumerate(requests):
            if request.regime is not None and request.regime != snapshot.config_digest:
                quotes[i] = self.degraded_quote(
                    request,
                    snapshot=snapshot,
                    reason=(
                        f"regime mismatch: request pinned "
                        f"{request.regime[:12]}, active "
                        f"{snapshot.config_digest[:12]}"
                    ),
                )
                METRICS.incr("serve.degraded")
                obs.event("engine.degraded", reason="regime mismatch")
            else:
                live.append(i)
        if live:
            for i, quote in zip(live, self._price(snapshot, [requests[i] for i in live])):
                quotes[i] = quote
        return quotes  # type: ignore[return-value]

    def _price(
        self, snapshot: PricingSnapshot, requests: "list[QuoteRequest]"
    ) -> "list[Quote]":
        """The vectorized hot path: lookup, cost, margin in numpy."""
        with METRICS.stage("serve.lookup"):
            dsts = ["" if r.dst is None else r.dst for r in requests]
            tiers = snapshot.tiers_for(dsts)
            prices = snapshot.prices_for_tiers(tiers)
        with METRICS.stage("serve.cost"):
            # QuoteRequest validated volume/distance/region on construction,
            # so assemble the batch straight into columns on the
            # pre-validated fast path — no per-request re-validation.
            n = len(requests)
            region_codes = None
            if all(r.region is not None for r in requests):
                region_codes = np.fromiter(
                    (REGION_CODE[r.region] for r in requests),
                    dtype=np.int32,
                    count=n,
                )
            flows = FlowSet.from_columns(
                np.fromiter((r.volume_mbps for r in requests), dtype=float, count=n),
                np.fromiter(
                    (r.distance_miles for r in requests), dtype=float, count=n
                ),
                region_codes=region_codes,
                validate=False,
            )
            costed = self.cost_model.prepare_quotes(
                flows, snapshot.reference_distance_miles
            )
            if len(costed.flows) != len(requests):
                raise ConfigurationError(
                    f"cost model {self.cost_model.name!r} splits flows "
                    f"({len(requests)} requests became "
                    f"{len(costed.flows)}); quote serving needs a "
                    "non-splitting cost model"
                )
            unit_costs = snapshot.unit_costs(costed.relative_costs)
            volumes = flows.demands
            profits = (prices - unit_costs) * volumes
        return [
            Quote(
                unit_price=float(prices[i]),
                tier=None if tiers[i] == UNKNOWN_TIER else int(tiers[i]),
                known=bool(tiers[i] != UNKNOWN_TIER),
                degraded=False,
                unit_cost=float(unit_costs[i]),
                profit_contribution=float(profits[i]),
                snapshot_version=snapshot.version,
                snapshot_digest=snapshot.digest,
            )
            for i in range(len(requests))
        ]

    def quote_columns(self, dsts, volumes_mbps, distances_miles) -> dict:
        """The columnar twin of :meth:`quote_batch`, for process pipes.

        Equivalent to pricing ``QuoteRequest`` objects that carry no
        ``region``/``regime``, but takes three flat columns and returns a
        dict of numpy arrays — a payload that pickles at buffer-copy
        speed, with no per-request objects built on either side.  The
        fleet's shard wire uses this for every batch that qualifies;
        callers rebuild :class:`Quote` objects (or wire dicts) from the
        columns exactly once, at the edge that needs them.

        Returns ``{"degraded": True, "reason", "blended", "version",
        "digest"}`` when no snapshot is published, else ``{"degraded":
        False, "prices", "tiers", "unit_costs", "profits", "version",
        "digest"}`` with arrays aligned to the input columns.
        """
        n = len(dsts)
        METRICS.incr("serve.quotes", n)
        snapshot = self.registry.current()
        if snapshot is None:
            METRICS.incr("serve.degraded", n)
            obs.event(
                "engine.degraded",
                reason="no snapshot published",
                requests=n,
            )
            return {
                "degraded": True,
                "reason": "no snapshot published",
                "blended": self.fallback_blended_rate,
                "version": None,
                "digest": None,
            }
        with METRICS.stage("serve.lookup"):
            tiers = snapshot.tiers_for(
                ["" if dst is None else dst for dst in dsts]
            )
            prices = snapshot.prices_for_tiers(tiers)
        with METRICS.stage("serve.cost"):
            flows = FlowSet.from_columns(
                np.asarray(volumes_mbps, dtype=float),
                np.asarray(distances_miles, dtype=float),
                validate=False,
            )
            costed = self.cost_model.prepare_quotes(
                flows, snapshot.reference_distance_miles
            )
            if len(costed.flows) != n:
                raise ConfigurationError(
                    f"cost model {self.cost_model.name!r} splits flows "
                    f"({n} requests became {len(costed.flows)}); quote "
                    "serving needs a non-splitting cost model"
                )
            unit_costs = snapshot.unit_costs(costed.relative_costs)
            profits = (prices - unit_costs) * flows.demands
        return {
            "degraded": False,
            "prices": prices,
            "tiers": tiers,
            "unit_costs": unit_costs,
            "profits": profits,
            "version": snapshot.version,
            "digest": snapshot.digest,
        }

    def degraded_quote(
        self,
        request: QuoteRequest,
        snapshot: "Optional[PricingSnapshot]" = None,
        reason: str = "degraded",
    ) -> Quote:
        """The blended-rate safe answer (no tier/cost attribution)."""
        del request
        blended = (
            self.fallback_blended_rate
            if snapshot is None
            else snapshot.blended_rate
        )
        return Quote(
            unit_price=float(blended),
            tier=None,
            known=False,
            degraded=True,
            snapshot_version=None if snapshot is None else snapshot.version,
            snapshot_digest=None if snapshot is None else snapshot.digest,
            reason=reason,
        )
