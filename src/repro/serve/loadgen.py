"""Deterministic load generation for the quote server.

Drives a running :class:`~repro.serve.server.QuoteServer` with a seeded
request mix — mostly designed destinations, a configurable fraction of
unknown ones — and reports sustained quotes/sec plus the request-latency
tail.  Both the CLI's ``serve --selftest`` and the serve benchmark run
through here, so the committed baselines and the smoke runs measure the
same workload.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Optional

import numpy as np

from repro.errors import QuoteTimeoutError
from repro.obs import METRICS
from repro.serve.engine import QuoteRequest
from repro.serve.server import QuoteServer
from repro.serve.snapshot import PricingSnapshot


@dataclasses.dataclass(frozen=True)
class LoadReport:
    """What one load run did.

    ``answered`` counts every response the callers received — priced or
    degraded — while ``timed_out`` counts requests whose answer never
    arrived in time.  Latency quantiles are submit→resolve milliseconds
    from the ``serve.request`` reservoir.
    """

    n_requests: int
    answered: int
    priced: int
    degraded: int
    known: int
    timed_out: int
    shed: int
    wall_time_s: float
    latency_ms: dict

    @property
    def quotes_per_second(self) -> float:
        return self.answered / max(self.wall_time_s, 1e-9)

    def render(self) -> str:
        tail = ", ".join(
            f"{name} {value:.2f} ms"
            for name, value in sorted(self.latency_ms.items())
        )
        return "\n".join(
            [
                f"load: {self.n_requests} requests in "
                f"{self.wall_time_s:.2f} s ({self.quotes_per_second:,.0f} "
                f"quotes/s)",
                f"  answered: {self.answered} ({self.priced} priced / "
                f"{self.degraded} degraded, {self.known} known "
                f"destinations), {self.timed_out} timed out, "
                f"{self.shed} shed",
                f"  latency: {tail or 'n/a'}",
            ]
        )


def generate_requests(
    n_requests: int,
    seed: int = 0,
    snapshot: "Optional[PricingSnapshot]" = None,
    unknown_fraction: float = 0.2,
    regime: "Optional[str]" = None,
) -> "list[QuoteRequest]":
    """A seeded, reproducible request mix.

    Known destinations are sampled from the snapshot's design; unknown
    ones come from a TEST-NET range the design never prices.  Without a
    snapshot every request is an unknown destination (the degraded-path
    workload).
    """
    rng = np.random.default_rng(seed)
    known = list(snapshot.destinations) if snapshot is not None else []
    volumes = rng.uniform(0.5, 50.0, size=n_requests)
    distances = rng.uniform(1.0, 5000.0, size=n_requests)
    unknown_draws = rng.random(n_requests)
    known_picks = (
        rng.integers(0, len(known), size=n_requests) if known else None
    )
    requests = []
    for i in range(n_requests):
        if known_picks is not None and unknown_draws[i] >= unknown_fraction:
            dst = known[int(known_picks[i])]
        else:
            dst = f"198.51.100.{i % 256}"
        requests.append(
            QuoteRequest(
                dst=dst,
                volume_mbps=float(volumes[i]),
                distance_miles=float(distances[i]),
                regime=regime,
            )
        )
    return requests


def run_load(
    server: QuoteServer,
    requests: "list[QuoteRequest]",
    burst: int = 128,
    timeout_ms: "Optional[float]" = None,
) -> LoadReport:
    """Fire the requests in bursts and gather every answer.

    Bursts bound how much the generator outruns the workers: each burst is
    fully submitted, then fully awaited, which keeps queue pressure
    realistic without the generator itself timing everything out.
    """
    shed_before = server.shed
    answered = priced = degraded = known = timed_out = 0
    start = time.perf_counter()
    for at in range(0, len(requests), max(1, burst)):
        pendings = [
            server.submit(request, timeout_ms)
            for request in requests[at : at + burst]
        ]
        for pending in pendings:
            try:
                quote = pending.result()
            except QuoteTimeoutError:
                timed_out += 1
                continue
            answered += 1
            if quote.degraded:
                degraded += 1
            else:
                priced += 1
            if quote.known:
                known += 1
    wall = time.perf_counter() - start
    return LoadReport(
        n_requests=len(requests),
        answered=answered,
        priced=priced,
        degraded=degraded,
        known=known,
        timed_out=timed_out,
        shed=server.shed - shed_before,
        wall_time_s=wall,
        latency_ms={
            name: seconds * 1000.0
            for name, seconds in METRICS.latency_quantiles(
                "serve.request"
            ).items()
        },
    )
