"""The in-process quote server: admission control, workers, timeouts.

:class:`QuoteServer` fronts a :class:`~repro.serve.engine.QuoteEngine`
with a fixed thread pool and a bounded admission queue (the streaming
layer's :class:`~repro.stream.queue.BoundedQueue` under the drop-oldest
policy).  The contract a caller gets:

* **Admission** — a submitted request either gets an answer or is *shed*:
  when the queue is full the oldest pending request is evicted, counted
  (``serve.shed``), and answered immediately with the degraded
  blended-rate quote.  Nothing blocks the submitter, nothing is silently
  lost.
* **Timeouts** — every request carries a deadline.  A request that
  expires in the queue is answered with
  :class:`~repro.errors.QuoteTimeoutError` by the worker that finds it;
  a caller that stops waiting gets the same error from
  :meth:`QuoteServer.quote`.
* **Batching** — workers drain the queue in gulps and price each gulp
  through one vectorized :meth:`~repro.serve.engine.QuoteEngine.quote_batch`
  call, so a loaded server amortizes snapshot lookup and cost-model work
  across the whole batch.
* **No exceptions on the data path** — engine-side failures (including a
  mid-flight snapshot clear) resolve to degraded quotes, never to an
  exception leaking out of a worker.

Latency is recorded per stage into the global metrics registry:
``serve.request`` (submit→resolve) and ``serve.batch`` (one worker gulp)
reservoirs export p50/p95/p99.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import warnings
from collections.abc import Sequence
from typing import Optional

from repro import obs
from repro.config import ServeConfig
from repro.errors import ConfigurationError, QuoteTimeoutError, ReproError
from repro.obs import METRICS
from repro.serve.engine import Quote, QuoteEngine, QuoteRequest
from repro.stream.queue import BoundedQueue

#: How long an idle worker sleeps between queue checks (seconds).
_IDLE_WAIT_S = 0.05


class PendingQuote:
    """A submitted request's future answer."""

    __slots__ = ("request", "submitted_at", "deadline", "_event", "_quote", "_error")

    def __init__(self, request: QuoteRequest, timeout_s: float) -> None:
        self.request = request
        self.submitted_at = time.perf_counter()
        self.deadline = self.submitted_at + timeout_s
        self._event = threading.Event()
        self._quote: "Optional[Quote]" = None
        self._error: "Optional[BaseException]" = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def _resolve(self, quote: Quote) -> None:
        if self._event.is_set():
            return
        self._quote = quote
        METRICS.observe_latency(
            "serve.request", time.perf_counter() - self.submitted_at
        )
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        if self._event.is_set():
            return
        self._error = error
        self._event.set()

    def result(self, timeout_s: "Optional[float]" = None) -> Quote:
        """Wait for the answer (default: until the request's deadline).

        Raises:
            QuoteTimeoutError: When the deadline passes unanswered, or
                the server itself timed the request out.
        """
        if timeout_s is None:
            timeout_s = max(0.0, self.deadline - time.perf_counter()) + _IDLE_WAIT_S
        if not self._event.wait(timeout_s):
            METRICS.incr("serve.timeouts")
            raise QuoteTimeoutError(
                f"quote not answered within {timeout_s * 1000:.0f} ms"
            )
        if self._error is not None:
            raise self._error
        assert self._quote is not None
        return self._quote


class QuoteServer:
    """Thread-pool quote service over a bounded admission queue.

    Args:
        engine: The quoting engine (registry + cost model).
        config: The server's :class:`~repro.config.ServeConfig`
            (``None`` resolves one from the environment/defaults).
        workers / queue_depth / timeout_ms / max_batch: **Deprecated**
            keyword spellings of the same knobs; they warn and fold into
            ``config``.  Pass a ``ServeConfig`` instead.
    """

    def __init__(
        self,
        engine: QuoteEngine,
        config: "Optional[ServeConfig]" = None,
        *,
        workers: "Optional[int]" = None,
        queue_depth: "Optional[int]" = None,
        timeout_ms: "Optional[float]" = None,
        max_batch: "Optional[int]" = None,
    ) -> None:
        legacy = {
            name: value
            for name, value in {
                "workers": workers,
                "queue_depth": queue_depth,
                "timeout_ms": timeout_ms,
                "max_batch": max_batch,
            }.items()
            if value is not None
        }
        if legacy:
            warnings.warn(
                "repro.serve.QuoteServer "
                f"keyword configuration ({', '.join(sorted(legacy))}) is "
                "deprecated; pass config=ServeConfig(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        if config is None:
            config = ServeConfig.resolve(**legacy)
        elif legacy:
            config = dataclasses.replace(config, **legacy)
        self.config = config
        self.engine = engine
        self.n_workers = int(config.workers)
        self.timeout_ms = float(config.timeout_ms)
        self.max_batch = int(config.max_batch)
        #: The submitting thread's trace context, captured at start() so
        #: worker-thread spans re-join the caller's trace (contextvars do
        #: not cross thread creation).
        self._trace_ctx = None
        self._queue = BoundedQueue(config.queue_depth, policy="drop-oldest")
        self._queue.on_evict = self._shed
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._threads: "list[threading.Thread]" = []
        self._running = False
        # Lifetime counters (ints; reads need no lock).
        self.served = 0
        self.shed = 0
        self.timed_out = 0
        self.degraded = 0
        self.batches = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "QuoteServer":
        with self._lock:
            if self._running:
                return self
            self._running = True
            self._trace_ctx = obs.current_context()
            self._threads = [
                threading.Thread(
                    target=self._worker_loop,
                    name=f"quote-worker-{i}",
                    daemon=True,
                )
                for i in range(self.n_workers)
            ]
        for thread in self._threads:
            thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the server.

        ``drain=True`` (the default) honors every admitted request:
        workers keep gulping until the queue is empty, so anything
        submitted before ``stop()`` is *priced*, not abandoned.
        ``drain=False`` is the fast path for emergencies: in-flight
        batches still complete (a worker is never interrupted mid-price),
        but requests still waiting in the queue resolve immediately as
        degraded blended-rate quotes with reason ``"server stopped"``.
        Either way no admitted request is left unanswered.
        """
        with self._work_ready:
            if not self._running:
                return
            self._running = False
            abandoned = [] if drain else self._queue.drain()
            self._work_ready.notify_all()
        for pending in abandoned:
            self._resolve_degraded(pending, "server stopped")
        for thread in self._threads:
            thread.join()
        self._threads = []
        # Safety net: a submit() racing the shutdown can slip a request in
        # after the workers decided to exit; it still gets an answer.
        with self._lock:
            leftovers = self._queue.drain()
        for pending in leftovers:
            self._resolve_degraded(pending, "server stopped")

    def close(self, drain: bool = True) -> None:
        """Alias for :meth:`stop` (the resource-style spelling)."""
        self.stop(drain=drain)

    def __enter__(self) -> "QuoteServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------
    # Submitting
    # ------------------------------------------------------------------

    def submit(
        self, request: QuoteRequest, timeout_ms: "Optional[float]" = None
    ) -> PendingQuote:
        """Enqueue one request; returns its pending answer immediately.

        A full queue sheds the *oldest* pending request (degraded answer,
        ``serve.shed``) to admit this one — fresh traffic beats stale.
        """
        if not self._running:
            raise ConfigurationError(
                "quote server is not running (call start() or use it as a "
                "context manager)"
            )
        timeout_s = (self.timeout_ms if timeout_ms is None else timeout_ms) / 1000.0
        pending = PendingQuote(request, timeout_s)
        with self._work_ready:
            self._queue.offer(pending)
            self._work_ready.notify()
        return pending

    def quote(
        self, request: QuoteRequest, timeout_ms: "Optional[float]" = None
    ) -> Quote:
        """Submit and wait: the synchronous single-quote call."""
        return self.submit(request, timeout_ms).result()

    def quote_many(
        self,
        requests: "Sequence[QuoteRequest]",
        timeout_ms: "Optional[float]" = None,
    ) -> "list[Quote]":
        """Submit a burst and wait for every answer (in request order)."""
        pendings = [self.submit(r, timeout_ms) for r in requests]
        return [p.result() for p in pendings]

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._work_ready:
                while self._running and len(self._queue) == 0:
                    self._work_ready.wait(_IDLE_WAIT_S)
                if not self._running and len(self._queue) == 0:
                    return
                batch = self._take_batch()
            if batch:
                self._serve_batch(batch)

    def _take_batch(self) -> "list[PendingQuote]":
        """Up to ``max_batch`` pending requests (caller holds the lock).

        ``drain()`` empties the queue, so the overflow beyond ``max_batch``
        is re-offered for other workers to gulp concurrently.
        """
        drained = self._queue.drain()
        batch = drained[: self.max_batch]
        for leftover in drained[self.max_batch :]:
            self._queue.offer(leftover)
        return batch

    def _serve_batch(self, batch: "list[PendingQuote]") -> None:
        with obs.activate(self._trace_ctx), obs.span(
            "serve.batch", size=len(batch)
        ) as span:
            self._serve_batch_traced(batch, span)

    def _serve_batch_traced(self, batch: "list[PendingQuote]", span) -> None:
        now = time.perf_counter()
        live = []
        expired = 0
        for pending in batch:
            if pending.deadline <= now:
                self.timed_out += 1
                expired += 1
                METRICS.incr("serve.expired")
                pending._fail(
                    QuoteTimeoutError(
                        "request expired in the admission queue before a "
                        "worker reached it"
                    )
                )
            else:
                live.append(pending)
        if expired:
            span.set_attribute("expired", expired)
            span.set_status(obs.STATUS_DEGRADED)
        if not live:
            return
        self.batches += 1
        with METRICS.latency("serve.batch"):
            try:
                quotes = self.engine.quote_batch([p.request for p in live])
            except ReproError as exc:
                # The engine never raises for a missing snapshot (it
                # degrades), so this is a config-level failure; still, the
                # data path answers rather than leaks.
                METRICS.incr("serve.errors")
                span.set_status(obs.STATUS_ERROR)
                span.add_event(
                    "engine.error", type=type(exc).__name__, message=str(exc)
                )
                for pending in live:
                    self._resolve_degraded(
                        pending, f"{type(exc).__name__}: {exc}"
                    )
                return
        degraded = 0
        for pending, quote in zip(live, quotes):
            self.served += 1
            if quote.degraded:
                self.degraded += 1
                degraded += 1
            pending._resolve(quote)
        span.set_attribute("served", len(live))
        if degraded:
            span.set_attribute("degraded", degraded)
            span.set_status(obs.STATUS_DEGRADED)

    # ------------------------------------------------------------------
    # Degraded resolutions
    # ------------------------------------------------------------------

    def _shed(self, pending: PendingQuote) -> None:
        """Eviction hook: the shed request still gets an answer."""
        self.shed += 1
        METRICS.incr("serve.shed")
        obs.event("serve.shed")
        self._resolve_degraded(pending, "shed by admission control")

    def _resolve_degraded(self, pending: PendingQuote, reason: str) -> None:
        self.degraded += 1
        pending._resolve(
            self.engine.degraded_quote(
                pending.request,
                snapshot=self.engine.registry.current(),
                reason=reason,
            )
        )

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Operational counters plus request-latency quantiles (ms)."""
        latency = {
            name: round(seconds * 1000.0, 3)
            for name, seconds in METRICS.latency_quantiles(
                "serve.request"
            ).items()
        }
        return {
            "served": self.served,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "degraded": self.degraded,
            "batches": self.batches,
            "queue_depth": len(self._queue),
            "queue_high_watermark": self._queue.high_watermark,
            "workers": self.n_workers,
            "request_latency_ms": latency,
        }
