"""Shard worker processes and the fleet coordinator.

Topology: one coordinator (this process) owns the shared-memory
segments and ``N`` forked shard workers, each running the *existing*
:class:`~repro.serve.engine.QuoteEngine` against its attached segment.
Requests route by destination hash (:func:`shard_of`), so a given
destination is always priced by the same shard — cache-friendly and
deterministic.

Per-shard transport is one duplex pipe driven strictly
request/reply under a per-shard lock, which buys three guarantees
cheaply:

* replies can never interleave (no correlation bookkeeping);
* a cutover ack returned ⇒ every later reply on that pipe was priced on
  the new segment (the stale-quote proof the cutover test leans on);
* a shard holding its lock is *busy*, so the watchdog only pings idle
  shards and liveness never competes with traffic.

Failure handling: any pipe error or round-trip timeout declares the
shard dead — its in-flight batch resolves to degraded blended-rate
quotes (reason ``"shard crashed"``), the process is killed if still
alive (a wedged worker could otherwise answer a *later* request with a
stale reply), and the watchdog respawns a fresh worker attached to the
current segment version within about one heartbeat.

Cutover: :meth:`ShardFleet.publish` freezes the new design into a new
segment version, flips shards **one at a time** (each worker attaches
the new segment, drops its old attachment, then acks), and unlinks the
old segment only after every reader has detached.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import threading
import time
import zlib
from typing import Optional

from repro import obs
from repro.config import FleetConfig
from repro.core.cost import CostModel
from repro.errors import ConfigurationError
from repro.obs import METRICS
from repro.serve.engine import Quote, QuoteEngine, QuoteRequest
from repro.serve.registry import SnapshotRegistry
from repro.serve.snapshot import PricingSnapshot
from repro.fleet.shm import AttachedSnapshot, SharedSnapshot
from repro.stream.repricer import DesignPublication

#: How long a cutover/stop handshake may take before the shard is
#: declared wedged (generous: attach is milliseconds).
_HANDSHAKE_TIMEOUT_S = 30.0


def shard_of(dst: "Optional[str]", n_shards: int) -> int:
    """Stable destination→shard routing (``None`` routes to shard 0).

    crc32 rather than ``hash()``: stable across processes and runs
    (``PYTHONHASHSEED`` randomizes ``str.__hash__``), cheap, and
    uniform enough for address-shaped keys.
    """
    if n_shards <= 1 or dst is None:
        return 0
    return zlib.crc32(dst.encode("utf-8")) % n_shards


def _encode_batch(requests: "list[QuoteRequest]") -> tuple:
    """Pick the wire shape for one shard-bound batch.

    Batches where no request pins a ``region`` or ``regime`` — the hot
    path — go over the pipe as three flat columns (``quotec``), which
    pickle several times faster than object batches and let the worker
    price without building a single ``QuoteRequest``.  Anything fancier
    falls back to the object wire (``quote``).
    """
    for request in requests:
        if request.region is not None or request.regime is not None:
            return ("quote", requests)
    return (
        "quotec",
        [r.dst for r in requests],
        [r.volume_mbps for r in requests],
        [r.distance_miles for r in requests],
    )


def _quotes_from_columns(payload: dict, n: int) -> "list[Quote]":
    """Rebuild ``Quote`` objects from a ``quotesc`` columnar payload.

    Field-for-field identical to what the worker's engine would have
    built (the fleet equality tests hold the two wires to the same
    answers)."""
    if payload["degraded"]:
        blended = float(payload["blended"])
        version = payload["version"]
        digest = payload["digest"]
        reason = payload["reason"]
        return [
            Quote(
                unit_price=blended,
                tier=None,
                known=False,
                degraded=True,
                snapshot_version=version,
                snapshot_digest=digest,
                reason=reason,
            )
            for _ in range(n)
        ]
    version = payload["version"]
    digest = payload["digest"]
    return [
        Quote(
            unit_price=price,
            tier=tier if tier else None,
            known=tier != 0,
            degraded=False,
            unit_cost=cost,
            profit_contribution=profit,
            snapshot_version=version,
            snapshot_digest=digest,
        )
        for price, tier, cost, profit in zip(
            payload["prices"].tolist(),
            payload["tiers"].tolist(),
            payload["unit_costs"].tolist(),
            payload["profits"].tolist(),
        )
    ]


# ----------------------------------------------------------------------
# Worker side (runs in the forked shard process)
# ----------------------------------------------------------------------


def _shard_main(
    shard_id: int,
    conn,
    cost_model: CostModel,
    fallback_blended_rate: float,
    segment: "Optional[str]",
) -> None:
    """One shard worker: attach, price, repeat until told to stop."""
    # The fork may have captured another coordinator thread mid-critical-
    # section; re-initializing the registry replaces any held lock with a
    # fresh one and gives this worker its own counters (shipped back to
    # the coordinator in the stop handshake).  Tracing stays off in
    # workers — spans don't survive a pipe built for quote rows.
    METRICS.__init__()
    obs.set_tracer(obs.NoopTracer())

    registry = SnapshotRegistry()
    engine = QuoteEngine(
        registry, cost_model, fallback_blended_rate=fallback_blended_rate
    )
    attached: "Optional[AttachedSnapshot]" = None

    def _attach(name: str) -> int:
        nonlocal attached
        fresh = AttachedSnapshot(name)
        registry.adopt(fresh.snapshot)
        previous, attached = attached, fresh
        if previous is not None:
            # Detach *before* acking, so the coordinator's "every reader
            # detached" precondition for unlinking the old segment is
            # true the moment the ack arrives.
            previous.close()
        return fresh.version

    try:
        if segment is not None:
            _attach(segment)
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            op = message[0]
            if op == "quotec":
                _, batch_id, dsts, volumes, distances = message
                payload = engine.quote_columns(dsts, volumes, distances)
                conn.send(("quotesc", batch_id, payload, registry.version))
            elif op == "quote":
                _, batch_id, requests = message
                quotes = engine.quote_batch(requests)
                conn.send(("quotes", batch_id, quotes, registry.version))
            elif op == "attach":
                conn.send(("attached", _attach(message[1]), os.getpid()))
            elif op == "ping":
                conn.send(("pong", os.getpid(), registry.version))
            elif op == "stop":
                conn.send(("stopped", os.getpid(), METRICS.snapshot()))
                break
            else:  # pragma: no cover - protocol misuse
                conn.send(("error", f"unknown op {op!r}"))
    finally:
        if attached is not None:
            attached.close()
        conn.close()


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


class _Shard:
    """One worker process plus its pipe, lock, and liveness flag."""

    __slots__ = ("index", "process", "conn", "lock", "pid", "dead")

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()
        self.pid = process.pid
        self.dead = False


class ShardFleet:
    """Coordinator for N shard workers over shared snapshot segments.

    Args:
        cost_model: The delivery-cost model every shard's engine quotes
            with (must match the published designs' calibration).
        config: The fleet's :class:`~repro.config.FleetConfig` (``None``
            resolves one from the environment/defaults).
        fallback_blended_rate: ``P0`` for degraded quotes before the
            first publication.
    """

    def __init__(
        self,
        cost_model: CostModel,
        config: "Optional[FleetConfig]" = None,
        *,
        fallback_blended_rate: float = 20.0,
    ) -> None:
        self.config = config or FleetConfig.resolve()
        self.n_shards = self.config.shard_count()
        self.cost_model = cost_model
        self.fallback_blended_rate = float(fallback_blended_rate)
        methods = multiprocessing.get_all_start_methods()
        # fork: workers inherit the already-imported numpy/scipy stack
        # instead of re-importing it per respawn.
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._shards: "list[Optional[_Shard]]" = [None] * self.n_shards
        self._segment: "Optional[SharedSnapshot]" = None
        self._snapshot: "Optional[PricingSnapshot]" = None
        self._version = 0
        self._publish_lock = threading.Lock()
        self._respawn_lock = threading.Lock()
        self._batch_counter = 0
        self._batch_lock = threading.Lock()
        self._watchdog: "Optional[threading.Thread]" = None
        self._stop_event = threading.Event()
        self._running = False
        #: Lifetime counters (ints; reads need no lock).
        self.respawns = 0
        self.cutovers = 0
        self.shard_failures = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ShardFleet":
        if self._running:
            return self
        self._running = True
        self._stop_event.clear()
        for index in range(self.n_shards):
            self._shards[index] = self._spawn(index)
        self._watchdog = threading.Thread(
            target=self._watchdog_loop, name="fleet-watchdog", daemon=True
        )
        self._watchdog.start()
        return self

    def stop(self) -> None:
        """Stop workers (merging their metrics back) and unlink segments."""
        if not self._running:
            return
        self._running = False
        self._stop_event.set()
        if self._watchdog is not None:
            self._watchdog.join()
            self._watchdog = None
        for shard in self._shards:
            if shard is None:
                continue
            with shard.lock:
                if not shard.dead:
                    try:
                        shard.conn.send(("stop",))
                        reply = self._recv(shard, _HANDSHAKE_TIMEOUT_S)
                        if reply[0] == "stopped":
                            # Fold the worker's counters into ours, so
                            # fleet-wide serve.quotes / serve.degraded
                            # totals survive the processes.
                            METRICS.merge(reply[2])
                    except (EOFError, OSError, TimeoutError):
                        pass
                self._reap(shard)
        self._shards = [None] * self.n_shards
        if self._segment is not None:
            self._segment.unlink()
            self._segment = None

    def __enter__(self) -> "ShardFleet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._running

    @property
    def version(self) -> int:
        """Version of the segment currently in force (0 before any)."""
        return self._version

    def pids(self) -> "list[Optional[int]]":
        """Current worker pids, by shard index."""
        return [
            None if shard is None else shard.pid for shard in self._shards
        ]

    # ------------------------------------------------------------------
    # Publication / cutover
    # ------------------------------------------------------------------

    def publish(self, snapshot: PricingSnapshot) -> PricingSnapshot:
        """Freeze a snapshot into a new segment and cut the fleet over.

        The fleet assigns the version (monotonic, fleet-wide).  Shards
        flip one at a time — the rest keep answering on the old segment —
        and the old segment is unlinked only after every shard has
        detached from it.  Returns the (re-versioned) snapshot.
        """
        with self._publish_lock:
            version = self._version + 1
            if snapshot.version != version:
                snapshot = dataclasses.replace(snapshot, version=version)
            segment = SharedSnapshot.publish(snapshot)
            previous = self._segment
            self._segment = segment
            self._snapshot = snapshot
            self._version = version
            if self._running:
                with obs.span(
                    "fleet.cutover", version=version, segment=segment.name
                ):
                    for shard in list(self._shards):
                        if shard is not None:
                            self._cutover_shard(shard, segment)
                self.cutovers += 1
                METRICS.incr("fleet.cutovers")
            if previous is not None:
                # Every live shard acked after detaching; crashed shards
                # were reaped (their mappings died with them).  No reader
                # remains, so removal is safe.
                previous.unlink()
        return snapshot

    def subscriber(self, config_digest: str):
        """An ``on_design_published``-shaped callback that publishes here.

        Wire a streaming pipeline straight into the fleet::

            pipeline.repricer.subscribe(
                fleet.subscriber(pipeline.config_digest)
            )

        Every accepted re-tiering then becomes a new segment version and
        a fleet-wide cutover.
        """

        def _on_publication(publication: DesignPublication) -> None:
            self.publish(
                PricingSnapshot.from_publication(
                    publication,
                    version=self._version + 1,
                    config_digest=config_digest,
                )
            )

        return _on_publication

    def _cutover_shard(self, shard: _Shard, segment: SharedSnapshot) -> None:
        with shard.lock:
            if shard.dead:
                return
            try:
                shard.conn.send(("attach", segment.name))
                reply = self._recv(shard, _HANDSHAKE_TIMEOUT_S)
                if reply[0] != "attached" or reply[1] != segment.version:
                    raise OSError(f"bad cutover ack {reply[:2]!r}")
            except (EOFError, OSError, TimeoutError):
                self._declare_dead(shard)

    # ------------------------------------------------------------------
    # Quoting
    # ------------------------------------------------------------------

    def quote_batch(
        self,
        requests: "list[QuoteRequest]",
        timeout_s: "Optional[float]" = None,
    ) -> "list[Quote]":
        """Price a batch across shards (answers in request order).

        The batch is partitioned by destination hash, sent to every
        involved shard, then the replies are collected — shards price
        their partitions concurrently.
        """
        if not self._running:
            raise ConfigurationError(
                "shard fleet is not running (call start() or use it as a "
                "context manager)"
            )
        if not requests:
            return []
        if self.n_shards == 1:
            return self.quote_shard(0, requests, timeout_s)
        if timeout_s is None:
            timeout_s = self.config.timeout_ms / 1000.0
        parts: "dict[int, list[int]]" = {}
        for i, request in enumerate(requests):
            parts.setdefault(
                shard_of(request.dst, self.n_shards), []
            ).append(i)
        quotes: "list[Optional[Quote]]" = [None] * len(requests)

        def _fill(indices: "list[int]", answers: "list[Quote]") -> None:
            for i, quote in zip(indices, answers):
                quotes[i] = quote

        # Two phases so shards price their partitions concurrently:
        # send to every involved shard first (locks taken in index order,
        # so concurrent batches cannot deadlock), then collect replies.
        in_flight = []
        try:
            for sid, indices in sorted(parts.items()):
                part = [requests[i] for i in indices]
                shard = self._shards[sid]
                if shard is None or shard.dead:
                    _fill(indices, self._degraded_batch(part, "shard down"))
                    continue
                with self._batch_lock:
                    self._batch_counter += 1
                    batch_id = self._batch_counter
                kind, *wire = _encode_batch(part)
                shard.lock.acquire()
                try:
                    shard.conn.send((kind, batch_id, *wire))
                except (OSError, BrokenPipeError, ValueError):
                    self._declare_dead(shard)
                    shard.lock.release()
                    _fill(
                        indices, self._degraded_batch(part, "shard crashed")
                    )
                    continue
                in_flight.append((shard, batch_id, indices, part))
            for shard, batch_id, indices, part in in_flight:
                try:
                    _fill(
                        indices,
                        self._collect_quotes(shard, batch_id, len(part), timeout_s),
                    )
                except (EOFError, OSError, TimeoutError):
                    self._declare_dead(shard)
                    _fill(
                        indices, self._degraded_batch(part, "shard crashed")
                    )
        finally:
            for shard, _, _, _ in in_flight:
                shard.lock.release()
        return quotes  # type: ignore[return-value]

    def quote_shard(
        self,
        shard_id: int,
        requests: "list[QuoteRequest]",
        timeout_s: "Optional[float]" = None,
    ) -> "list[Quote]":
        """Round-trip one batch to one shard (the front door's unit)."""
        if timeout_s is None:
            timeout_s = self.config.timeout_ms / 1000.0
        shard = self._shards[shard_id]
        if shard is None or shard.dead:
            return self._degraded_batch(requests, "shard down")
        with self._batch_lock:
            self._batch_counter += 1
            batch_id = self._batch_counter
        kind, *wire = _encode_batch(requests)
        with shard.lock:
            if shard.dead:
                return self._degraded_batch(requests, "shard down")
            try:
                shard.conn.send((kind, batch_id, *wire))
                return self._collect_quotes(
                    shard, batch_id, len(requests), timeout_s
                )
            except (EOFError, OSError, BrokenPipeError, TimeoutError):
                self._declare_dead(shard)
                return self._degraded_batch(requests, "shard crashed")

    def _collect_quotes(
        self, shard: _Shard, batch_id: int, n: int, timeout_s: float
    ) -> "list[Quote]":
        """One quote reply off the pipe, either wire shape (caller holds
        the shard lock and handles the error → degraded translation)."""
        reply = self._recv(shard, timeout_s)
        if reply[0] not in ("quotes", "quotesc") or reply[1] != batch_id:
            raise OSError(f"mismatched reply {reply[:2]!r}")
        METRICS.incr("fleet.batches")
        if reply[0] == "quotesc":
            return _quotes_from_columns(reply[2], n)
        return reply[2]

    def _recv(self, shard: _Shard, timeout_s: float):
        """``recv`` with a deadline (caller holds the shard lock)."""
        if not shard.conn.poll(timeout_s):
            raise TimeoutError(
                f"shard {shard.index} did not reply within {timeout_s} s"
            )
        return shard.conn.recv()

    def _degraded_batch(
        self, requests: "list[QuoteRequest]", reason: str
    ) -> "list[Quote]":
        snapshot = self._snapshot
        blended = (
            self.fallback_blended_rate
            if snapshot is None
            else snapshot.blended_rate
        )
        METRICS.incr("fleet.degraded", len(requests))
        obs.event("fleet.degraded", reason=reason, requests=len(requests))
        return [
            Quote(
                unit_price=float(blended),
                tier=None,
                known=False,
                degraded=True,
                snapshot_version=None if snapshot is None else snapshot.version,
                snapshot_digest=None if snapshot is None else snapshot.digest,
                reason=reason,
            )
            for _ in requests
        ]

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------

    def _spawn(self, index: int) -> _Shard:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_shard_main,
            args=(
                index,
                child_conn,
                self.cost_model,
                self.fallback_blended_rate,
                None if self._segment is None else self._segment.name,
            ),
            name=f"quote-shard-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Shard(index, process, parent_conn)

    def _declare_dead(self, shard: _Shard) -> None:
        """Mark a shard unusable (caller holds the shard lock)."""
        if shard.dead:
            return
        shard.dead = True
        self.shard_failures += 1
        METRICS.incr("fleet.shard_failures")
        obs.event("fleet.shard_failure", shard=shard.index, pid=shard.pid)

    def _reap(self, shard: _Shard) -> None:
        """Kill (if needed) and clean up one worker process."""
        try:
            shard.conn.close()
        except OSError:
            pass
        if shard.process.is_alive():
            shard.process.terminate()
        shard.process.join(timeout=5.0)
        if shard.process.is_alive():  # pragma: no cover - last resort
            shard.process.kill()
            shard.process.join(timeout=5.0)
        shard.process.close()

    def _respawn(self, index: int, expected: _Shard) -> None:
        """Replace a dead worker (idempotent via the identity check)."""
        with self._respawn_lock:
            if not self._running or self._shards[index] is not expected:
                return
            with expected.lock:
                expected.dead = True
                self._reap(expected)
                # The replacement attaches the *current* segment on its
                # way up (the name is passed to _shard_main), so a
                # respawned shard can never answer from a stale design.
                self._shards[index] = self._spawn(index)
            self.respawns += 1
            METRICS.incr("fleet.respawns")
            obs.event(
                "fleet.respawn",
                shard=index,
                pid=self._shards[index].pid,
            )

    def _watchdog_loop(self) -> None:
        interval_s = self.config.heartbeat_ms / 1000.0
        while not self._stop_event.wait(interval_s):
            for index in range(self.n_shards):
                shard = self._shards[index]
                if shard is None:
                    continue
                if shard.dead or not shard.process.is_alive():
                    self._respawn(index, shard)
                    continue
                # Only ping idle shards: a held lock means a quote (or
                # cutover) round-trip is mid-flight, which is liveness
                # evidence in itself.
                if shard.lock.acquire(blocking=False):
                    try:
                        shard.conn.send(("ping",))
                        reply = self._recv(shard, interval_s * 10 + 1.0)
                        if reply[0] != "pong":
                            raise OSError(f"bad pong {reply[:1]!r}")
                    except (EOFError, OSError, TimeoutError):
                        self._declare_dead(shard)
                    finally:
                        shard.lock.release()

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Operational snapshot: topology, liveness, cutover counters."""
        return {
            "shards": self.n_shards,
            "pids": self.pids(),
            "version": self._version,
            "segment": None if self._segment is None else self._segment.name,
            "cutovers": self.cutovers,
            "respawns": self.respawns,
            "shard_failures": self.shard_failures,
            "batches": METRICS.counter("fleet.batches"),
            "degraded": METRICS.counter("fleet.degraded"),
        }
