"""Sharded multi-process quote serving over shared-memory snapshots.

The thread-pool :class:`~repro.serve.server.QuoteServer` tops out at
roughly one core of pricing work — the GIL serializes the numpy-adjacent
Python around every batch.  This package is the process-topology answer:

* :mod:`~repro.fleet.shm` — :class:`SharedSnapshot` freezes a
  :class:`~repro.serve.snapshot.PricingSnapshot` into a versioned,
  named shared-memory segment (``repro-snap-<digest>-v<N>``);
  :class:`AttachedSnapshot` maps it back **lock-free and zero-copy** in
  any process (read-only numpy views straight into the segment).
* :mod:`~repro.fleet.shard` — :class:`ShardFleet`: worker processes
  keyed by destination hash, each running the existing
  :class:`~repro.serve.engine.QuoteEngine` against its attached
  segment, with heartbeat liveness, automatic respawn of crashed
  shards, and one-shard-at-a-time snapshot cutover (old segments are
  unlinked only after every reader detached).
* :mod:`~repro.fleet.frontdoor` — :class:`FrontDoor`: an asyncio socket
  front-end (length-prefixed JSON frames) that batches requests per
  shard behind bounded admission queues (drop-oldest shedding), plus
  :class:`FleetClient` and the socket load generator behind
  ``python -m repro fleet --selftest``.

Wiring a live stream to a fleet is one line, same shape as the
registry::

    fleet = ShardFleet(cost_model, FleetConfig(shards=4))
    pipeline.repricer.subscribe(fleet.subscriber(pipeline.config_digest))

Every accepted re-tiering then becomes a new segment version and a
fleet-wide cutover, and every quote carries the version that priced it.
"""

from repro.config import FleetConfig
from repro.fleet.frontdoor import (
    FleetClient,
    FleetLoadReport,
    FrontDoor,
    run_socket_load,
)
from repro.fleet.shard import ShardFleet, shard_of
from repro.fleet.shm import (
    AttachedSnapshot,
    SharedPricingSnapshot,
    SharedSnapshot,
    segment_name,
)

__all__ = [
    "AttachedSnapshot",
    "FleetClient",
    "FleetConfig",
    "FleetLoadReport",
    "FrontDoor",
    "SharedPricingSnapshot",
    "SharedSnapshot",
    "ShardFleet",
    "run_socket_load",
    "segment_name",
    "shard_of",
]
