"""The asyncio front door: sockets in, shard batches out.

Wire protocol — length-prefixed JSON frames (4-byte big-endian length,
then UTF-8 JSON), both directions.  A request frame::

    {"id": 7, "quotes": [{"dst": "10.0.0.1", "volume_mbps": 4.0,
                          "distance_miles": 120.0}, ...]}

is answered (eventually, not necessarily in submission order — frames
are correlated by ``id``) with::

    {"id": 7, "quotes": [{"unit_price": 14.25, "tier": 2, ...}, ...]}

``{"id": N, "op": "stats"}`` returns the fleet's operational snapshot.
Malformed frames get an ``{"id": ..., "error": ...}`` reply; a frame
too large to be honest closes the connection.

Inside, the front door is a per-shard fan-in: each parsed request is
routed by destination hash onto its shard's bounded admission queue
(the streaming layer's :class:`~repro.stream.queue.BoundedQueue` under
``drop-oldest`` — a full queue sheds the *oldest* waiting request,
which resolves immediately as a degraded quote, counted in
``fleet.shed``).  One dispatcher task per shard gulps up to
``max_batch`` requests and round-trips them to its worker via
:meth:`~repro.fleet.shard.ShardFleet.quote_shard` on an executor
thread, so the event loop never blocks on a pipe and distinct shards
price concurrently.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import struct
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro import obs
from repro.config import FleetConfig
from repro.errors import DataError, ReproError
from repro.obs import METRICS
from repro.serve.engine import Quote, QuoteRequest
from repro.fleet.shard import ShardFleet, shard_of
from repro.stream.queue import BoundedQueue

_FRAME_LEN = struct.Struct(">I")
#: Largest accepted frame (requests and replies), in bytes.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: QuoteRequest fields a frame's quote objects may carry.
_REQUEST_FIELDS = frozenset(
    ("dst", "volume_mbps", "distance_miles", "region", "regime")
)


def encode_frame(payload: dict) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _FRAME_LEN.pack(len(body)) + body


async def read_frame(reader: asyncio.StreamReader) -> dict:
    header = await reader.readexactly(_FRAME_LEN.size)
    (length,) = _FRAME_LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise DataError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte "
            "limit"
        )
    return json.loads(await reader.readexactly(length))


def quote_to_wire(quote: Quote) -> dict:
    return {
        "unit_price": quote.unit_price,
        "tier": quote.tier,
        "known": quote.known,
        "degraded": quote.degraded,
        "unit_cost": quote.unit_cost,
        "profit_contribution": quote.profit_contribution,
        "snapshot_version": quote.snapshot_version,
        "snapshot_digest": quote.snapshot_digest,
        "reason": quote.reason,
    }


def _parse_request(obj) -> QuoteRequest:
    if not isinstance(obj, dict):
        raise DataError(f"quote must be an object, got {type(obj).__name__}")
    unknown = set(obj) - _REQUEST_FIELDS
    if unknown:
        raise DataError(f"unknown quote field(s) {sorted(unknown)}")
    return QuoteRequest(**obj)


class _PendingItem:
    """One routed request waiting in a shard's admission queue."""

    __slots__ = ("request", "future", "submitted_at")

    def __init__(self, request: QuoteRequest, future: asyncio.Future) -> None:
        self.request = request
        self.future = future
        self.submitted_at = time.perf_counter()

    def resolve(self, quote: Quote) -> None:
        if not self.future.done():
            METRICS.observe_latency(
                "fleet.request", time.perf_counter() - self.submitted_at
            )
            self.future.set_result(quote)


class FrontDoor:
    """Asyncio socket front-end over a running :class:`ShardFleet`."""

    def __init__(
        self, fleet: ShardFleet, config: "Optional[FleetConfig]" = None
    ) -> None:
        self.fleet = fleet
        self.config = config or fleet.config
        self.host = self.config.host
        self.port: "Optional[int]" = None  # bound port, known after start
        self._server: "Optional[asyncio.base_events.Server]" = None
        self._pool: "Optional[ThreadPoolExecutor]" = None
        self._queues: "list[BoundedQueue]" = []
        self._wakeups: "list[asyncio.Event]" = []
        self._dispatchers: "list[asyncio.Task]" = []
        self.shed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "FrontDoor":
        n = self.fleet.n_shards
        self._pool = ThreadPoolExecutor(
            max_workers=n, thread_name_prefix="fleet-dispatch"
        )
        self._queues = []
        self._wakeups = []
        for sid in range(n):
            queue = BoundedQueue(self.config.queue_depth, policy="drop-oldest")
            queue.on_evict = self._shed
            self._queues.append(queue)
            self._wakeups.append(asyncio.Event())
        self._dispatchers = [
            asyncio.create_task(
                self._dispatch_loop(sid), name=f"fleet-dispatch-{sid}"
            )
            for sid in range(n)
        ]
        self._server = await asyncio.start_server(
            self._handle_client, host=self.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        """Close the listener, then drain dispatchers (queued requests
        resolve degraded — the fleet behind may already be stopping)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in self._dispatchers:
            task.cancel()
        for task in self._dispatchers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._dispatchers = []
        for queue in self._queues:
            for item in queue.drain():
                item.resolve(
                    self.fleet._degraded_batch(
                        [item.request], "front door stopped"
                    )[0]
                )
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    async def __aenter__(self) -> "FrontDoor":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        frame_tasks: "set[asyncio.Task]" = set()
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                    BrokenPipeError,
                ):
                    break
                except (DataError, json.JSONDecodeError, UnicodeDecodeError):
                    METRICS.incr("fleet.bad_frames")
                    break  # unframeable input: the stream is unrecoverable
                # Serve each frame in its own task so a big batch doesn't
                # head-of-line block later frames on the same connection.
                task = asyncio.create_task(
                    self._serve_frame(frame, writer, write_lock)
                )
                frame_tasks.add(task)
                task.add_done_callback(frame_tasks.discard)
        finally:
            if frame_tasks:
                await asyncio.gather(*frame_tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_frame(
        self,
        frame,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        frame_id = frame.get("id") if isinstance(frame, dict) else None
        if not isinstance(frame, dict):
            reply = {"id": None, "error": "frame must be a JSON object"}
        elif frame.get("op") == "stats":
            stats = dict(self.fleet.stats())
            stats["shed"] = self.shed
            stats["request_latency_ms"] = {
                name: round(seconds * 1000.0, 3)
                for name, seconds in METRICS.latency_quantiles(
                    "fleet.request"
                ).items()
            }
            reply = {"id": frame_id, "stats": stats}
        else:
            reply = await self._serve_quotes(frame_id, frame)
        async with write_lock:
            writer.write(encode_frame(reply))
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass  # client went away; nothing left to route to

    async def _serve_quotes(self, frame_id, frame: dict) -> dict:
        raw = frame.get("quotes")
        if not isinstance(raw, list) or not raw:
            METRICS.incr("fleet.bad_frames")
            return {
                "id": frame_id,
                "error": "frame needs a non-empty 'quotes' array "
                "(or 'op': 'stats')",
            }
        loop = asyncio.get_running_loop()
        futures: "list[asyncio.Future]" = []
        answers: "list[Optional[dict]]" = [None] * len(raw)
        for i, obj in enumerate(raw):
            try:
                request = _parse_request(obj)
            except (ReproError, TypeError) as exc:
                METRICS.incr("fleet.bad_requests")
                answers[i] = {"error": f"{type(exc).__name__}: {exc}"}
                continue
            future = loop.create_future()
            futures.append(future)
            sid = shard_of(request.dst, self.fleet.n_shards)
            METRICS.incr("fleet.requests")
            self._queues[sid].offer(_PendingItem(request, future))
            self._wakeups[sid].set()
        quotes = await asyncio.gather(*futures) if futures else []
        it = iter(quotes)
        for i in range(len(raw)):
            if answers[i] is None:
                answers[i] = quote_to_wire(next(it))
        return {"id": frame_id, "quotes": answers}

    # ------------------------------------------------------------------
    # Shard dispatch
    # ------------------------------------------------------------------

    def _shed(self, item: _PendingItem) -> None:
        """Admission-queue eviction: the shed request still gets an answer.

        Runs on the event-loop thread (offers only happen there), so
        resolving the future directly is safe.
        """
        self.shed += 1
        METRICS.incr("fleet.shed")
        obs.event("fleet.shed")
        item.resolve(
            self.fleet._degraded_batch(
                [item.request], "shed by admission control"
            )[0]
        )

    async def _dispatch_loop(self, sid: int) -> None:
        queue = self._queues[sid]
        wakeup = self._wakeups[sid]
        loop = asyncio.get_running_loop()
        while True:
            await wakeup.wait()
            wakeup.clear()
            while len(queue):
                batch = self._take_batch(queue)
                if not batch:
                    break
                try:
                    quotes = await loop.run_in_executor(
                        self._pool,
                        self.fleet.quote_shard,
                        sid,
                        [item.request for item in batch],
                    )
                except asyncio.CancelledError:
                    # stop() cancelled us mid-round-trip; the batch still
                    # owes its callers an answer.
                    quotes = self.fleet._degraded_batch(
                        [item.request for item in batch],
                        "front door stopped",
                    )
                    for item, quote in zip(batch, quotes):
                        item.resolve(quote)
                    raise
                for item, quote in zip(batch, quotes):
                    item.resolve(quote)

    def _take_batch(self, queue: BoundedQueue) -> "list[_PendingItem]":
        """Up to ``max_batch`` waiting items; overflow is re-offered.

        Single-consumer per queue, so re-offering preserves FIFO order
        (and can never overflow: the drain freed the capacity).
        """
        drained = queue.drain()
        batch = drained[: self.config.max_batch]
        for leftover in drained[self.config.max_batch :]:
            queue.offer(leftover)
        return batch


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class FleetLoadReport:
    """What one socket load run did (the fleet twin of ``LoadReport``)."""

    n_requests: int
    answered: int
    priced: int
    degraded: int
    known: int
    wall_time_s: float
    latency_ms: dict
    versions: tuple
    stale: int = 0

    @property
    def quotes_per_second(self) -> float:
        return self.answered / max(self.wall_time_s, 1e-9)

    def render(self) -> str:
        tail = ", ".join(
            f"{name} {value:.2f} ms"
            for name, value in sorted(self.latency_ms.items())
        )
        return "\n".join(
            [
                f"fleet load: {self.n_requests} requests in "
                f"{self.wall_time_s:.2f} s ({self.quotes_per_second:,.0f} "
                f"quotes/s)",
                f"  answered: {self.answered} ({self.priced} priced / "
                f"{self.degraded} degraded, {self.known} known "
                f"destinations), snapshot versions {list(self.versions)}",
                f"  latency: {tail or 'n/a'}",
            ]
        )


class FleetClient:
    """A pipelining asyncio client for the front-door frame protocol."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._pending: "dict[int, asyncio.Future]" = {}
        self._read_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "FleetClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader)
                future = self._pending.pop(frame.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError("front door connection closed")
                    )
            self._pending.clear()

    async def request(self, payload: dict) -> dict:
        """Send one frame (an ``id`` is stamped in) and await its reply."""
        self._next_id += 1
        frame_id = self._next_id
        payload = {**payload, "id": frame_id}
        future = asyncio.get_running_loop().create_future()
        self._pending[frame_id] = future
        self._writer.write(encode_frame(payload))
        await self._writer.drain()
        return await future

    async def quote_batch(self, quotes: "list[dict]") -> "list[dict]":
        reply = await self.request({"quotes": quotes})
        if "error" in reply:
            raise DataError(f"front door rejected the frame: {reply['error']}")
        return reply["quotes"]

    async def stats(self) -> dict:
        return (await self.request({"op": "stats"}))["stats"]

    async def close(self) -> None:
        self._read_task.cancel()
        try:
            await self._read_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def __aenter__(self) -> "FleetClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


async def run_socket_load(
    host: str,
    port: int,
    requests: "list[QuoteRequest]",
    *,
    frame_size: int = 64,
    pipeline_depth: int = 8,
) -> FleetLoadReport:
    """Drive a front door over a real socket and gather every answer.

    Requests go out ``frame_size`` to a frame with up to
    ``pipeline_depth`` frames in flight — enough concurrency to keep
    every shard busy without the client timing itself out.
    """
    client = await FleetClient.connect(host, port)
    try:
        frames = [
            [
                {
                    "dst": r.dst,
                    "volume_mbps": r.volume_mbps,
                    "distance_miles": r.distance_miles,
                    "region": r.region,
                    "regime": r.regime,
                }
                for r in requests[at : at + frame_size]
            ]
            for at in range(0, len(requests), max(1, frame_size))
        ]
        answered = priced = degraded = known = 0
        versions: "set" = set()
        latencies: "list[float]" = []
        start = time.perf_counter()

        async def _send(batch: "list[dict]") -> None:
            nonlocal answered, priced, degraded, known
            sent_at = time.perf_counter()
            answers = await client.quote_batch(batch)
            per_request = (time.perf_counter() - sent_at) / max(
                1, len(answers)
            )
            for answer in answers:
                if "error" in answer:
                    continue
                answered += 1
                latencies.append(per_request * 1000.0)
                if answer["degraded"]:
                    degraded += 1
                else:
                    priced += 1
                if answer["known"]:
                    known += 1
                versions.add(answer["snapshot_version"])

        for at in range(0, len(frames), max(1, pipeline_depth)):
            await asyncio.gather(
                *(_send(batch) for batch in frames[at : at + pipeline_depth])
            )
        wall = time.perf_counter() - start
    finally:
        await client.close()
    latencies.sort()

    def _quantile(q: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    return FleetLoadReport(
        n_requests=len(requests),
        answered=answered,
        priced=priced,
        degraded=degraded,
        known=known,
        wall_time_s=wall,
        latency_ms={
            "p50": _quantile(0.50),
            "p95": _quantile(0.95),
            "p99": _quantile(0.99),
        },
        versions=tuple(sorted(v for v in versions if v is not None)),
        stale=0,
    )
