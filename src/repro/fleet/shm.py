"""Shared-memory publication of pricing snapshots.

A :class:`~repro.serve.snapshot.PricingSnapshot` is already the right
shape for cross-process sharing: its lookup state is three flat arrays
(sorted destinations, aligned tier ids, the tier rate card) plus a
handful of scalars.  :class:`SharedSnapshot` freezes one snapshot into a
named ``multiprocessing.shared_memory`` segment that any process on the
machine can attach **lock-free** and reconstruct **zero-copy**: the
attached arrays are read-only numpy views straight into the mapped
buffer, the same ``from_columns(validate=False)`` adoption discipline
the columnar core uses for pre-validated data.

Segment layout (versioned by name, immutable once published)::

    repro-snap-<digest[:12]>-v<version>
    +--------------------------------------------------------------+
    | u64 LE header length H                                       |
    | H bytes of JSON: scalars (version, digest, gamma, ...) plus  |
    |   per-array {dtype, offset, count} descriptors               |
    | ... padding to a 64-byte boundary ...                        |
    | dsts:         S<w> fixed-width UTF-8 bytes, sorted           |
    | tiers:        int64, aligned to dsts                         |
    | rate_by_tier: float64, index 0 = blended fallback            |
    +--------------------------------------------------------------+

Destinations are stored as fixed-width bytes rather than object strings
(object arrays cannot cross a process boundary without pickling).  UTF-8
byte order equals code-point order, so ``searchsorted`` against the
bytes column gives the same answers as against the original strings —
:class:`SharedPricingSnapshot` just encodes its queries first.

Lifecycle discipline (the part that keeps ``-W error::ResourceWarning``
clean): exactly one process — the publisher — owns each segment and is
the only one that ``unlink()``\\ s it; attachers map and unmap but never
register with the interpreter's resource tracker (which would otherwise
double-register the segment and either unlink it prematurely or warn at
exit).  Publisher-side segments are additionally unlinked by an
``atexit`` hook guarded by the creating PID, so a crashed coordinator
cannot strand segments in ``/dev/shm`` — and a forked worker inheriting
the registry cannot vandalize live ones.
"""

from __future__ import annotations

import atexit
import gc
import json
import os
import struct
from multiprocessing import resource_tracker, shared_memory
from typing import Optional

import numpy as np

from repro.errors import DataError
from repro.obs import METRICS
from repro.serve.snapshot import PricingSnapshot, UNKNOWN_TIER

#: Data block alignment (covers every numpy dtype's requirement).
_ALIGN = 64
#: Per-array alignment inside the data block.
_ARRAY_ALIGN = 16
_HEADER_LEN = struct.Struct("<Q")

#: Segments created by this process, by name — the atexit safety net.
_OWNED: "dict[str, SharedSnapshot]" = {}
#: Mappings whose close() was blocked by live array views; retried at
#: exit (by then the views are collectable).
_ZOMBIES: "list[shared_memory.SharedMemory]" = []


def segment_name(digest: str, version: int) -> str:
    """The canonical segment name: ``repro-snap-<digest>-v<N>``."""
    return f"repro-snap-{digest[:12]}-v{int(version)}"


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a named segment without resource-tracker registration.

    Python's ``SharedMemory(name=...)`` registers *attachers* with the
    resource tracker too (bpo-39959), so a worker that merely mapped a
    segment would unlink it — or warn about a "leak" — when it exits.
    Ownership here is explicit: only the publisher unlinks.  3.13+ has
    ``track=False`` for exactly this; older interpreters get the same
    effect by stubbing out registration for the duration of the attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    real_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = real_register


def _close_segment(shm: shared_memory.SharedMemory) -> None:
    """Unmap, tolerating stray array views (collect and retry once).

    A mapping that still cannot close (the caller kept a view alive) is
    parked for an atexit retry rather than left to a noisy ``__del__``.
    """
    try:
        shm.close()
    except BufferError:
        gc.collect()
        try:
            shm.close()
        except BufferError:
            _ZOMBIES.append(shm)


def _encode_destinations(dsts: np.ndarray) -> np.ndarray:
    """Object/str destination column → fixed-width sorted bytes column."""
    encoded = [
        d if isinstance(d, bytes) else str(d).encode("utf-8")
        for d in dsts
    ]
    width = max((len(raw) for raw in encoded), default=1) or 1
    return np.array(encoded, dtype=f"S{width}")


class SharedPricingSnapshot(PricingSnapshot):
    """A snapshot whose lookup arrays view a shared-memory segment.

    Identical to :class:`~repro.serve.snapshot.PricingSnapshot` except
    the destination column holds fixed-width bytes, so queries are
    encoded before the ``searchsorted`` (and queries wider than the
    column can never match — they are unknown by construction, not
    silently truncated).
    """

    def tiers_for(self, destinations) -> np.ndarray:
        queries = list(destinations)
        if not queries:
            return np.zeros(0, dtype=np.int64)
        width = self._dsts.dtype.itemsize
        encoded = np.zeros(len(queries), dtype=self._dsts.dtype)
        too_wide = np.zeros(len(queries), dtype=bool)
        for i, dst in enumerate(queries):
            raw = (
                dst
                if isinstance(dst, bytes)
                else str(dst).encode("utf-8")
            )
            if len(raw) > width:
                too_wide[i] = True
            else:
                encoded[i] = raw
        positions = np.searchsorted(self._dsts, encoded)
        positions = np.minimum(positions, self._dsts.size - 1)
        hits = (self._dsts[positions] == encoded) & ~too_wide
        tiers = np.where(hits, self._tiers[positions], UNKNOWN_TIER)
        return tiers.astype(np.int64)

    @property
    def destinations(self) -> tuple:
        return tuple(d.decode("utf-8") for d in self._dsts)


class SharedSnapshot:
    """One published segment, owned by the publishing process.

    Only the publisher holds one of these; it is the sole party allowed
    to :meth:`unlink`.  Readers go through :func:`attach` /
    :class:`AttachedSnapshot` instead.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        *,
        version: int,
        digest: str,
        n_destinations: int,
    ) -> None:
        self._shm = shm
        self.name = shm.name
        self.version = int(version)
        self.digest = digest
        self.n_destinations = int(n_destinations)
        self.owner_pid = os.getpid()
        self._unlinked = False
        _OWNED[self.name] = self

    @classmethod
    def publish(cls, snapshot: PricingSnapshot) -> "SharedSnapshot":
        """Freeze a snapshot's arrays into a fresh named segment."""
        if snapshot.n_destinations == 0:
            raise DataError("cannot share a snapshot with no destinations")
        dsts = _encode_destinations(snapshot._dsts)
        tiers = np.ascontiguousarray(snapshot._tiers, dtype=np.int64)
        rate_by_tier = np.ascontiguousarray(
            snapshot._rate_by_tier, dtype=np.float64
        )

        arrays = {}
        offset = 0
        for label, array in (
            ("dsts", dsts),
            ("tiers", tiers),
            ("rate_by_tier", rate_by_tier),
        ):
            offset = -(-offset // _ARRAY_ALIGN) * _ARRAY_ALIGN
            arrays[label] = {
                "dtype": array.dtype.str,
                "offset": offset,
                "count": int(array.size),
            }
            offset += array.nbytes
        header = json.dumps(
            {
                "version": int(snapshot.version),
                "digest": snapshot.digest,
                "config_digest": snapshot.config_digest,
                "published_at_ms": int(snapshot.published_at_ms),
                "blended_rate": float(snapshot.blended_rate),
                "gamma": float(snapshot.gamma),
                "reference_distance_miles": (
                    None
                    if snapshot.reference_distance_miles is None
                    else float(snapshot.reference_distance_miles)
                ),
                "provider_asn": int(snapshot.provider_asn),
                "rates": {
                    str(tier): float(rate)
                    for tier, rate in snapshot.rates.items()
                },
                "arrays": arrays,
            },
            sort_keys=True,
        ).encode("utf-8")
        data_start = -(-(8 + len(header)) // _ALIGN) * _ALIGN
        total = data_start + offset

        name = segment_name(snapshot.digest, snapshot.version)
        try:
            shm = shared_memory.SharedMemory(
                create=True, name=name, size=total
            )
        except FileExistsError:
            # A previous run crashed hard enough to strand this name (the
            # atexit hook never ran).  Segments are content-addressed, so
            # replacing it is safe — no live publisher can own it.
            stale = _attach_untracked(name)
            _close_segment(stale)
            stale.unlink()
            shm = shared_memory.SharedMemory(
                create=True, name=name, size=total
            )
        try:
            shm.buf[0:8] = _HEADER_LEN.pack(len(header))
            shm.buf[8 : 8 + len(header)] = header
            for label, array in (
                ("dsts", dsts),
                ("tiers", tiers),
                ("rate_by_tier", rate_by_tier),
            ):
                spec = arrays[label]
                view = np.frombuffer(
                    shm.buf,
                    dtype=np.dtype(spec["dtype"]),
                    count=spec["count"],
                    offset=data_start + spec["offset"],
                )
                view[:] = array
                del view  # drop the buffer reference before any close()
        except BaseException:
            _close_segment(shm)
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            raise
        METRICS.incr("fleet.segments_published")
        return cls(
            shm,
            version=snapshot.version,
            digest=snapshot.digest,
            n_destinations=snapshot.n_destinations,
        )

    @property
    def size(self) -> int:
        return self._shm.size

    def unlink(self) -> None:
        """Unmap and remove the segment (idempotent, owner only)."""
        if self._unlinked:
            return
        self._unlinked = True
        _OWNED.pop(self.name, None)
        _close_segment(self._shm)
        if self.owner_pid == os.getpid():
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
            METRICS.incr("fleet.segments_unlinked")

    # ``close`` is an alias: an owner releasing a segment removes it.
    close = unlink

    def __enter__(self) -> "SharedSnapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedSnapshot({self.name}, v{self.version}, "
            f"{self.n_destinations} destinations, {self.size} bytes)"
        )


class AttachedSnapshot:
    """A reader's zero-copy view of a published segment.

    ``.snapshot`` is a :class:`SharedPricingSnapshot` whose arrays alias
    the mapped buffer — nothing is copied at attach time, and the
    segment cannot change under the reader (segments are immutable;
    new designs get new segments).  Call :meth:`close` (or use as a
    context manager) to drop the views and unmap.
    """

    def __init__(self, name: str) -> None:
        shm = _attach_untracked(name)
        try:
            (header_len,) = _HEADER_LEN.unpack_from(shm.buf, 0)
            meta = json.loads(bytes(shm.buf[8 : 8 + header_len]))
            data_start = -(-(8 + header_len) // _ALIGN) * _ALIGN
            columns = {}
            for label, spec in meta["arrays"].items():
                view = np.frombuffer(
                    shm.buf,
                    dtype=np.dtype(spec["dtype"]),
                    count=spec["count"],
                    offset=data_start + spec["offset"],
                )
                view.setflags(write=False)
                columns[label] = view
            self.snapshot: "Optional[SharedPricingSnapshot]" = (
                SharedPricingSnapshot(
                    version=meta["version"],
                    digest=meta["digest"],
                    config_digest=meta["config_digest"],
                    published_at_ms=meta["published_at_ms"],
                    blended_rate=meta["blended_rate"],
                    gamma=meta["gamma"],
                    reference_distance_miles=meta["reference_distance_miles"],
                    provider_asn=meta["provider_asn"],
                    rates={
                        int(tier): rate
                        for tier, rate in meta["rates"].items()
                    },
                    _dsts=columns["dsts"],
                    _tiers=columns["tiers"],
                    _rate_by_tier=columns["rate_by_tier"],
                )
            )
        except BaseException:
            _close_segment(shm)
            raise
        self._shm = shm
        self.name = name
        METRICS.incr("fleet.segments_attached")

    @property
    def version(self) -> int:
        assert self.snapshot is not None
        return self.snapshot.version

    def close(self) -> None:
        """Drop the views and unmap (idempotent; never unlinks)."""
        if self.snapshot is None:
            return
        self.snapshot = None
        _close_segment(self._shm)

    detach = close

    def __enter__(self) -> "AttachedSnapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _cleanup_owned() -> None:
    """atexit: unlink whatever this process published and still owns."""
    for segment in list(_OWNED.values()):
        if segment.owner_pid == os.getpid():
            segment.unlink()
    zombies, _ZOMBIES[:] = list(_ZOMBIES), []
    gc.collect()
    for shm in zombies:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - caller pinned the view
            pass


atexit.register(_cleanup_owned)
