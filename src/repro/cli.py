"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table1`` — regenerate the paper's Table 1 (paper vs synthetic).
* ``figure N`` — regenerate Figure N's series as a text table
  (N in 1-6, 8-16; Figures 7 and 17 are architecture diagrams).
* ``datasets`` — list the synthetic datasets and their targets.
* ``design`` — design pricing tiers for a dataset and print the tier
  card (prices, destinations, demand) plus profit capture.
* ``stream`` — replay a synthetic trace through the streaming repricing
  pipeline (windowed ingest, incremental calibration, drift-triggered
  re-tiering) and print the window-by-window report.
* ``serve`` — stand up the online quote service: run a short replayed
  stream that publishes tier designs into the snapshot registry, then
  serve a seeded self-test load through the thread-pool quote server and
  report quotes/sec plus the latency tail.
* ``fleet`` — the multi-process version of ``serve``: shard workers over
  shared-memory snapshot segments behind an asyncio socket front door,
  self-tested over a real socket with a live snapshot cutover halfway
  through the load.
* ``ecosystem`` — generate a seeded AS-level internet ecosystem (tiered
  AS hierarchy, IXP peering, valley-free routing, per-AS NetFlow) and
  optionally self-test it end to end.
* ``mechanisms`` — price one dataset under every registered pricing
  mechanism (posted tiers, spot auction, paid peering, hybrid) across
  several demand families and print the profit-capture comparison table;
  ``--selftest`` additionally asserts posted-tiers byte-identity and the
  spot-auction clearing invariants.
* ``trace summarize`` — roll a ``--trace`` JSONL file up into per-stage
  latency/error statistics.
* ``workers`` — join a running socket-executor coordinator (``--executor
  socket`` sweep) as one or more sweep worker processes.

Everything honors ``--flows`` and ``--seed`` so results are reproducible
and fast to experiment with.  Every subcommand additionally honors the
runtime flags ``--jobs`` (parallel fan-out), ``--executor`` (sweep
backend: serial/pool/socket), ``--no-cache`` (disable the
dataset/market/result cache), ``--metrics`` (emit a structured-JSON run
report), and ``--trace`` (append every span of the run to a JSONL trace
file) — none of which change the computed output.

Flag values resolve through :mod:`repro.config` (explicit flag >
``REPRO_*`` environment variable > default), and a failing run exits
with the :data:`repro.errors.EXIT_CODES` code of the error class, so
wrappers can tell a calibration failure from a malformed configuration.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
import warnings
from collections.abc import Sequence

from repro import obs
from repro.config import (
    EXECUTOR_BACKENDS,
    MECHANISMS,
    ExecutorConfig,
    MechanismConfig,
    ObsConfig,
    RuntimeConfig,
    ServeConfig,
    StreamConfig,
)
from repro.core.bundling import strategy_by_name
from repro.errors import (
    ConfigurationError,
    DataError,
    MechanismError,
    ReproError,
    exit_code_for,
)
from repro.experiments import figures, render, sweeps, tables
from repro.experiments.config import DEFAULT_CONFIG
from repro.experiments.runner import build_market
from repro.runtime import cache as runtime_cache
from repro.synth.datasets import DATASET_NAMES, DATASETS

#: Figure number -> (driver factory, renderer) wiring.
_FIGURES = {
    1: (lambda cfg: figures.figure1_data(), render.render_figure1),
    2: (lambda cfg: figures.figure2_data(), render.render_figure2),
    3: (lambda cfg: figures.figure3_data(), render.render_figure3),
    4: (lambda cfg: figures.figure4_data(), render.render_figure4),
    5: (lambda cfg: figures.figure5_data(), render.render_figure5),
    6: (lambda cfg: figures.figure6_data(), render.render_figure6),
    8: (lambda cfg: figures.figure8_data(cfg), render.render_figure8),
    9: (lambda cfg: figures.figure9_data(cfg), render.render_figure9),
    10: (
        lambda cfg: sweeps.figure10_data(cfg),
        lambda data: render.render_theta_sweep(data, "Figure 10"),
    ),
    11: (
        lambda cfg: sweeps.figure11_data(cfg),
        lambda data: render.render_theta_sweep(data, "Figure 11"),
    ),
    12: (
        lambda cfg: sweeps.figure12_data(cfg),
        lambda data: render.render_theta_sweep(data, "Figure 12"),
    ),
    13: (
        lambda cfg: sweeps.figure13_data(cfg),
        lambda data: render.render_theta_sweep(data, "Figure 13"),
    ),
    14: (
        lambda cfg: sweeps.figure14_data(config=cfg),
        lambda data: render.render_envelope(
            data, "Figure 14", f"alpha in {data['alphas']}"
        ),
    ),
    15: (
        lambda cfg: sweeps.figure15_data(config=cfg),
        lambda data: render.render_envelope(
            data, "Figure 15", f"P0 in {data['blended_rates']}"
        ),
    ),
    16: (
        lambda cfg: sweeps.figure16_data(config=cfg),
        lambda data: render.render_envelope(
            data, "Figure 16", f"s0 in {data['s0_values']}"
        ),
    ),
}


def _add_mechanism_flag(parser: argparse.ArgumentParser) -> None:
    """``--mechanism`` on every pricing-path subcommand.

    ``None`` (not given) falls through to ``REPRO_MECHANISM`` and the
    posted-tiers default via :class:`MechanismConfig`.
    """
    parser.add_argument(
        "--mechanism",
        choices=MECHANISMS,
        default=None,
        help=(
            "pricing mechanism (default $REPRO_MECHANISM, else "
            "posted-tiers — the paper's pipeline, byte-identical)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduction of 'How Many Tiers? Pricing in the Internet "
            "Transit Market' (SIGCOMM 2011)"
        ),
    )
    parser.add_argument(
        "--flows",
        type=int,
        default=DEFAULT_CONFIG.n_flows,
        help="synthetic flows per dataset",
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_CONFIG.seed, help="dataset RNG seed"
    )

    # Runtime flags, shared by every subcommand (so they can be written
    # after it: ``python -m repro figure 14 --jobs 4``).  They steer how
    # the work runs, never what it computes.
    runtime = argparse.ArgumentParser(add_help=False)
    runtime.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for experiment fan-out "
            "(default: $REPRO_JOBS, else 1 = serial; 0 = all cores)"
        ),
    )
    runtime.add_argument(
        "--executor",
        choices=EXECUTOR_BACKENDS,
        default=None,
        help=(
            "sweep execution backend: serial (inline), pool (process "
            "pool; the default), or socket (work-stealing coordinator "
            "+ local/remote workers, see 'repro workers') "
            "(default: $REPRO_EXECUTOR, else pool)"
        ),
    )
    runtime.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed dataset/market/result cache",
    )
    runtime.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help=(
            "after the command, write a structured-JSON run report "
            "(wall time, cache hits/misses, workers, markets built, "
            "per-span latency) to PATH ('-' for stderr)"
        ),
    )
    runtime.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "append every span of this run (CLI, sweeps, workers, "
            "windows, quote batches) to PATH as JSONL; summarize with "
            "'trace summarize PATH' (default: $REPRO_TRACE, else off)"
        ),
    )

    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="regenerate Table 1", parents=[runtime])

    fig = sub.add_parser(
        "figure", help="regenerate one figure", parents=[runtime]
    )
    fig.add_argument("number", type=int, choices=sorted(_FIGURES))
    fig.add_argument(
        "--workers",
        type=int,
        default=None,
        dest="workers_alias",
        metavar="N",
        help="deprecated alias for --jobs",
    )

    sub.add_parser(
        "datasets", help="list synthetic datasets", parents=[runtime]
    )

    design = sub.add_parser(
        "design", help="design pricing tiers", parents=[runtime]
    )
    design.add_argument(
        "dataset", choices=DATASET_NAMES, help="which network to design for"
    )
    design.add_argument("--tiers", type=int, default=3)
    design.add_argument(
        "--demand", choices=("ced", "logit"), default="ced"
    )
    design.add_argument(
        "--strategy",
        default="profit-weighted",
        help="bundling strategy (figure-legend name)",
    )
    _add_mechanism_flag(design)

    stream = sub.add_parser(
        "stream",
        help="run the streaming repricing pipeline on a replayed trace",
        parents=[runtime],
    )
    stream.add_argument(
        "dataset", choices=DATASET_NAMES, help="which network's trace to replay"
    )
    stream.add_argument(
        "--window",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="event-time window length (default 600)",
    )
    stream.add_argument(
        "--slide",
        type=float,
        default=None,
        metavar="SECONDS",
        help="window slide for sliding windows (default: tumbling)",
    )
    stream.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="out-of-order arrival tolerance (delays window closes)",
    )
    stream.add_argument(
        "--drift-threshold",
        type=float,
        default=0.1,
        metavar="GAP",
        help="re-tier when refreshed-vs-stale profit capture exceeds this",
    )
    stream.add_argument("--tiers", type=int, default=3)
    stream.add_argument(
        "--demand", choices=("ced", "logit"), default="ced"
    )
    stream.add_argument(
        "--duration",
        type=float,
        default=3600.0,
        metavar="SECONDS",
        help="length of the replayed capture",
    )
    stream.add_argument(
        "--export-interval",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="router active timeout (re-export cadence) in the replay",
    )
    stream.add_argument(
        "--queue",
        type=int,
        default=4096,
        metavar="RECORDS",
        help="bounded ingest queue capacity",
    )
    stream.add_argument(
        "--policy",
        choices=("block", "drop-oldest"),
        default="block",
        help="full-queue backpressure policy",
    )
    stream.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="checkpoint file: written each window, resumed from if present",
    )
    stream.add_argument(
        "--max-windows",
        type=int,
        default=None,
        metavar="N",
        help="stop (with a checkpoint) after N windows",
    )
    stream.add_argument(
        "--shift-at",
        type=float,
        default=None,
        metavar="SECONDS",
        help="inject a structural demand shift at this instant",
    )
    stream.add_argument("--shift-factor", type=float, default=3.0)
    stream.add_argument("--shift-fraction", type=float, default=0.5)
    _add_mechanism_flag(stream)

    serve = sub.add_parser(
        "serve",
        help="run the online quote service and a built-in self-test load",
        parents=[runtime],
    )
    serve.add_argument(
        "dataset",
        choices=DATASET_NAMES,
        help="which network's trace warms up the snapshot registry",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="quote-server worker threads (default $REPRO_SERVE_WORKERS, else 2)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        metavar="N",
        help=(
            "admission-queue capacity; full queues shed the oldest "
            "request (default 256)"
        ),
    )
    serve.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        metavar="MS",
        help="per-request deadline (default 1000 ms)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=None,
        metavar="N",
        help="largest request batch one worker prices at once (default 64)",
    )
    serve.add_argument(
        "--selftest",
        type=int,
        default=2000,
        metavar="N",
        help="self-test load size in requests (default 2000)",
    )
    serve.add_argument(
        "--unknown-fraction",
        type=float,
        default=0.2,
        metavar="F",
        help="fraction of load aimed at destinations outside the design",
    )
    serve.add_argument(
        "--tiers", type=int, default=3, help="tier budget for published designs"
    )
    serve.add_argument(
        "--demand", choices=("ced", "logit"), default="ced"
    )
    serve.add_argument(
        "--window",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="warm-up stream window length (default 600)",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=1800.0,
        metavar="SECONDS",
        help="warm-up stream capture length (default 1800)",
    )
    _add_mechanism_flag(serve)

    fleet = sub.add_parser(
        "fleet",
        help=(
            "run the sharded multi-process quote fleet (shared-memory "
            "snapshots, asyncio front door) and a socket self-test load"
        ),
        parents=[runtime],
    )
    fleet.add_argument(
        "dataset",
        choices=DATASET_NAMES,
        help="which network's trace warms up the published design",
    )
    fleet.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "shard worker processes (default $REPRO_FLEET_SHARDS, else 2; "
            "0 = one per core)"
        ),
    )
    fleet.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="PORT",
        help="front-door listen port (default 0 = ephemeral, reported)",
    )
    fleet.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        metavar="N",
        help="per-shard admission-queue capacity (default 1024)",
    )
    fleet.add_argument(
        "--max-batch",
        type=int,
        default=None,
        metavar="N",
        help="largest batch one shard round-trip carries (default 512)",
    )
    fleet.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        metavar="MS",
        help="per-request deadline / shard round-trip bound (default 5000)",
    )
    fleet.add_argument(
        "--selftest",
        type=int,
        default=2000,
        metavar="N",
        help=(
            "socket self-test load size in requests, split around a live "
            "snapshot cutover (default 2000)"
        ),
    )
    fleet.add_argument(
        "--unknown-fraction",
        type=float,
        default=0.2,
        metavar="F",
        help="fraction of load aimed at destinations outside the design",
    )
    fleet.add_argument(
        "--tiers", type=int, default=3, help="tier budget for published designs"
    )
    fleet.add_argument(
        "--demand", choices=("ced", "logit"), default="ced"
    )
    fleet.add_argument(
        "--window",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="warm-up stream window length (default 600)",
    )
    fleet.add_argument(
        "--duration",
        type=float,
        default=1800.0,
        metavar="SECONDS",
        help="warm-up stream capture length (default 1800)",
    )

    ecosystem = sub.add_parser(
        "ecosystem",
        help=(
            "generate a seeded AS-level internet ecosystem (valley-free "
            "routing, per-AS NetFlow) and report it"
        ),
        parents=[runtime],
    )
    ecosystem.add_argument(
        "--ases",
        type=int,
        default=None,
        metavar="N",
        help="total AS count (default $REPRO_ECOSYSTEM_ASES, else 50)",
    )
    ecosystem.add_argument(
        "--ixps",
        type=int,
        default=None,
        metavar="N",
        help="internet-exchange sites (default $REPRO_ECOSYSTEM_IXPS, else 3)",
    )
    ecosystem.add_argument(
        "--seed",
        type=int,
        default=None,
        dest="ecosystem_seed",
        metavar="SEED",
        help="world seed (default $REPRO_ECOSYSTEM_SEED, else 0)",
    )
    ecosystem.add_argument(
        "--tiers",
        type=int,
        default=3,
        help="tier budget for the per-AS designs (default 3)",
    )
    ecosystem.add_argument(
        "--emit-netflow",
        default=None,
        metavar="DIR",
        help="write every AS's sampled NetFlow v5 packets to DIR/<as>.nf5",
    )
    ecosystem.add_argument(
        "--selftest",
        action="store_true",
        help=(
            "verify the world: valley-free paths, byte-identical rebuild, "
            "wire round-trip, and measure->model->design for one stub and "
            "one tier-2 AS"
        ),
    )
    _add_mechanism_flag(ecosystem)

    mechanisms = sub.add_parser(
        "mechanisms",
        help=(
            "price one dataset under every registered pricing mechanism "
            "and tabulate profit capture per demand family"
        ),
        parents=[runtime],
    )
    mechanisms.add_argument(
        "dataset",
        nargs="?",
        default="eu_isp",
        choices=DATASET_NAMES,
        help="which synthetic network to price (default eu_isp)",
    )
    mechanisms.add_argument(
        "--tiers",
        type=int,
        default=3,
        help="tier budget for the posted/hybrid mechanisms (default 3)",
    )
    mechanisms.add_argument(
        "--spot-windows",
        type=int,
        default=None,
        metavar="W",
        help="spot-auction delivery windows (default $REPRO_MECHANISM_SPOT_WINDOWS, else 24)",
    )
    mechanisms.add_argument(
        "--selftest",
        action="store_true",
        help=(
            "additionally assert posted-tiers byte-identity against the "
            "legacy bundling path (all six strategies) and the "
            "spot-auction clearing invariants"
        ),
    )

    report = sub.add_parser(
        "report",
        help="run every table/figure and emit a markdown report",
        parents=[runtime],
    )
    report.add_argument(
        "--output", default="-", help="file to write ('-' for stdout)"
    )

    export = sub.add_parser(
        "export",
        help="write a synthetic dataset as a flow CSV",
        parents=[runtime],
    )
    export.add_argument("dataset", choices=DATASET_NAMES)
    export.add_argument("output", help="CSV path to write")

    offerings = sub.add_parser(
        "offerings",
        help="price the §2.1 product taxonomy on one dataset",
        parents=[runtime],
    )
    offerings.add_argument("dataset", choices=DATASET_NAMES)
    offerings.add_argument(
        "--cost",
        choices=("linear", "regional", "destination-type"),
        default="linear",
    )

    drift = sub.add_parser(
        "drift",
        help="score a saved tier design against a flow CSV",
        parents=[runtime],
    )
    drift.add_argument("design", help="tier-design JSON (from save_design)")
    drift.add_argument("matrix", help="flow CSV with dst addresses")
    drift.add_argument("--rate", type=float, default=20.0, help="blended P0")

    trace = sub.add_parser(
        "trace",
        help="inspect trace files written by --trace",
        parents=[runtime],
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize",
        help="per-stage latency/error rollup of a JSONL trace file",
    )
    summarize.add_argument("path", help="JSONL trace file to summarize")

    workers = sub.add_parser(
        "workers",
        help=(
            "join a socket-executor coordinator as sweep worker "
            "process(es); exits when the coordinator does"
        ),
        parents=[runtime],
    )
    workers.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="the coordinator address printed/configured by the sweep run",
    )
    workers.add_argument(
        "--processes",
        type=int,
        default=1,
        metavar="N",
        help="worker processes to run from this command (default 1)",
    )
    return parser


def _config(args: argparse.Namespace):
    """The experiment config for a run: CLI flags over resolved configs.

    Fan-out (``--jobs``/``--executor``) resolves through
    :class:`ExecutorConfig`; caching through :class:`RuntimeConfig`.
    """
    executor_config = ExecutorConfig.resolve(cli=args)
    runtime_config = RuntimeConfig.resolve(cli=args)
    return dataclasses.replace(
        DEFAULT_CONFIG,
        n_flows=args.flows,
        seed=args.seed,
        jobs=executor_config.jobs,
        cache=runtime_config.cache,
        executor=executor_config.backend,
    )


def cmd_table1(args: argparse.Namespace) -> str:
    return tables.render_table1(tables.table1_data(config=_config(args)))


def cmd_figure(args: argparse.Namespace) -> str:
    driver, renderer = _FIGURES[args.number]
    return renderer(driver(_config(args)))


def cmd_datasets(args: argparse.Namespace) -> str:
    del args
    lines = ["synthetic datasets (targets from the paper's Table 1):"]
    for name in DATASET_NAMES:
        spec = DATASETS[name]
        lines.append(
            f"  {name:<10} {spec.capture_date}  "
            f"w-avg {spec.w_avg_distance_miles:>6.0f} mi (CV {spec.distance_cv})  "
            f"{spec.aggregate_gbps:>5.0f} Gbps (demand CV {spec.demand_cv})"
        )
    return "\n".join(lines)


def cmd_design(args: argparse.Namespace) -> str:
    market = build_market(
        args.dataset, family=args.demand, config=_config(args)
    )
    strategy = strategy_by_name(args.strategy)
    mech_cfg = MechanismConfig.resolve(cli=args)
    if not mech_cfg.is_default:
        mechanism = mech_cfg.build(strategy=strategy, n_tiers=args.tiers)
        design = mechanism.design_on(market)
        lines = [
            market.describe(),
            f"mechanism: {mechanism.describe()}",
            f"profit capture: {design.profit_capture:.1%} "
            f"(blended ${market.blended_profit():,.0f} -> "
            f"${design.profit:,.0f} -> ceiling ${market.max_profit():,.0f})",
            f"tiers: {design.n_tiers} total "
            f"({design.posted_tiers} posted, {design.spot_tiers} spot)",
            "",
            f"{'tier':>4} {'price $/Mbps':>13} {'flows':>7} "
            f"{'demand Mbps':>13} {'mean cost':>10}",
        ]
        for i, tier in enumerate(design.tiers, start=1):
            lines.append(
                f"{i:>4} {tier.price:>13.2f} {tier.n_flows:>7} "
                f"{tier.demand_mbps:>13.1f} {tier.mean_cost:>10.2f}"
            )
        return "\n".join(lines)
    outcome = market.tiered_outcome(strategy, args.tiers)
    lines = [
        market.describe(),
        f"strategy: {strategy.name}, tiers requested: {args.tiers}",
        f"profit capture: {outcome.profit_capture:.1%} "
        f"(blended ${market.blended_profit():,.0f} -> "
        f"${outcome.profit:,.0f} -> ceiling ${market.max_profit():,.0f})",
        "",
        f"{'tier':>4} {'price $/Mbps':>13} {'flows':>7} {'demand Mbps':>13} "
        f"{'mean cost':>10}",
    ]
    for i, tier in enumerate(outcome.tiers, start=1):
        lines.append(
            f"{i:>4} {tier.price:>13.2f} {tier.n_flows:>7} "
            f"{tier.demand_mbps:>13.1f} {tier.mean_cost:>10.2f}"
        )
    return "\n".join(lines)


def cmd_stream(args: argparse.Namespace) -> str:
    from repro.core.ced import CEDDemand
    from repro.core.cost import LinearDistanceCost
    from repro.core.logit import LogitDemand
    from repro.stream import (
        DemandShift,
        StreamingPipeline,
        TraceReplaySource,
    )
    from repro.synth.trace import generate_network_trace

    trace = generate_network_trace(
        args.dataset,
        n_flows=args.flows,
        seed=args.seed,
        duration_seconds=args.duration,
    )
    shift = None
    if args.shift_at is not None:
        shift = DemandShift(
            at_ms=int(args.shift_at * 1000),
            factor=args.shift_factor,
            fraction=args.shift_fraction,
        )
    source = TraceReplaySource(
        trace,
        export_interval_ms=int(args.export_interval * 1000),
        shift=shift,
    )
    if args.demand == "ced":
        demand = CEDDemand(alpha=DEFAULT_CONFIG.alpha)
    else:
        demand = LogitDemand(alpha=DEFAULT_CONFIG.alpha, s0=DEFAULT_CONFIG.s0)
    config = StreamConfig.resolve(
        window_ms=int(args.window * 1000),
        slide_ms=None if args.slide is None else int(args.slide * 1000),
        reorder_tolerance_ms=int(args.tolerance * 1000),
        queue_capacity=args.queue,
        queue_policy=args.policy,
        n_tiers=args.tiers,
        drift_threshold=args.drift_threshold,
        blended_rate=DEFAULT_CONFIG.blended_rate,
    )
    mech_cfg = MechanismConfig.resolve(cli=args)
    pipeline = StreamingPipeline(
        source,
        distance_fn=trace.distance_for,
        demand_model=demand,
        cost_model=LinearDistanceCost(theta=DEFAULT_CONFIG.theta),
        config=config,
        checkpoint_path=args.checkpoint,
        mechanism=(
            None if mech_cfg.is_default else mech_cfg.build(n_tiers=args.tiers)
        ),
    )
    report = pipeline.run(max_windows=args.max_windows)
    return report.render()


def cmd_serve(args: argparse.Namespace) -> str:
    import json

    from repro.core.ced import CEDDemand
    from repro.core.cost import LinearDistanceCost
    from repro.core.logit import LogitDemand
    from repro.serve import (
        QuoteEngine,
        QuoteServer,
        SnapshotRegistry,
        generate_requests,
        run_load,
    )
    from repro.stream import StreamingPipeline, TraceReplaySource
    from repro.synth.trace import generate_network_trace

    # 1. Warm the registry with genuinely streamed designs: replay a short
    #    trace and let every accepted re-tiering hot-swap a snapshot in.
    trace = generate_network_trace(
        args.dataset,
        n_flows=args.flows,
        seed=args.seed,
        duration_seconds=args.duration,
    )
    source = TraceReplaySource(trace, export_interval_ms=60_000)
    if args.demand == "ced":
        demand = CEDDemand(alpha=DEFAULT_CONFIG.alpha)
    else:
        demand = LogitDemand(alpha=DEFAULT_CONFIG.alpha, s0=DEFAULT_CONFIG.s0)
    cost_model = LinearDistanceCost(theta=DEFAULT_CONFIG.theta)
    config = StreamConfig.resolve(
        window_ms=int(args.window * 1000),
        n_tiers=args.tiers,
        blended_rate=DEFAULT_CONFIG.blended_rate,
    )
    mech_cfg = MechanismConfig.resolve(cli=args)
    registry = SnapshotRegistry()
    pipeline = StreamingPipeline(
        source,
        distance_fn=trace.distance_for,
        demand_model=demand,
        cost_model=cost_model,
        config=config,
        mechanism=(
            None if mech_cfg.is_default else mech_cfg.build(n_tiers=args.tiers)
        ),
    )
    pipeline.repricer.on_design_published = registry.subscriber(
        pipeline.config_digest
    )
    stream_report = pipeline.run()
    snapshot = registry.current()

    # 2. Serve the self-test load against whatever the stream published.
    engine = QuoteEngine(
        registry, cost_model, fallback_blended_rate=DEFAULT_CONFIG.blended_rate
    )
    requests = generate_requests(
        args.selftest,
        seed=args.seed,
        snapshot=snapshot,
        unknown_fraction=args.unknown_fraction,
    )
    serve_config = ServeConfig.resolve(cli=args)
    with QuoteServer(engine, serve_config) as server:
        load = run_load(server, requests)
        stats = server.stats()
    lines = [
        f"stream warm-up: {len(stream_report.results)} windows, "
        f"{stream_report.windows_priced} priced, "
        f"{stream_report.retier_events} re-tier events, "
        f"{registry.swaps} snapshot swaps",
        (
            "active snapshot: none (degraded serving)"
            if snapshot is None
            else f"active {snapshot.describe()}"
        ),
        load.render(),
        "server: " + json.dumps(stats, sort_keys=True),
    ]
    return "\n".join(lines)


def cmd_fleet(args: argparse.Namespace) -> str:
    import asyncio
    import json

    from repro.core.ced import CEDDemand
    from repro.core.cost import LinearDistanceCost
    from repro.core.logit import LogitDemand
    from repro.config import FleetConfig
    from repro.fleet import FrontDoor, ShardFleet, run_socket_load
    from repro.serve import SnapshotRegistry, generate_requests
    from repro.stream import StreamingPipeline, TraceReplaySource
    from repro.synth.trace import generate_network_trace

    # 1. Warm up exactly like `serve`: replay a short trace; every accepted
    #    re-tiering publishes into a plain registry (for the load
    #    generator's known destinations) *and* into the fleet (segment
    #    versions; the workers attach the last one on spawn).
    trace = generate_network_trace(
        args.dataset,
        n_flows=args.flows,
        seed=args.seed,
        duration_seconds=args.duration,
    )
    source = TraceReplaySource(trace, export_interval_ms=60_000)
    if args.demand == "ced":
        demand = CEDDemand(alpha=DEFAULT_CONFIG.alpha)
    else:
        demand = LogitDemand(alpha=DEFAULT_CONFIG.alpha, s0=DEFAULT_CONFIG.s0)
    cost_model = LinearDistanceCost(theta=DEFAULT_CONFIG.theta)
    stream_config = StreamConfig.resolve(
        window_ms=int(args.window * 1000),
        n_tiers=args.tiers,
        blended_rate=DEFAULT_CONFIG.blended_rate,
    )
    fleet_config = FleetConfig.resolve(cli=args)
    registry = SnapshotRegistry()
    fleet = ShardFleet(
        cost_model,
        fleet_config,
        fallback_blended_rate=DEFAULT_CONFIG.blended_rate,
    )
    pipeline = StreamingPipeline(
        source,
        distance_fn=trace.distance_for,
        demand_model=demand,
        cost_model=cost_model,
        config=stream_config,
    )
    pipeline.repricer.on_design_published = registry.subscriber(
        pipeline.config_digest
    )
    pipeline.repricer.subscribe(fleet.subscriber(pipeline.config_digest))
    stream_report = pipeline.run()
    snapshot = registry.current()

    # 2. Spin up the fleet + front door and drive the socket self-test,
    #    with a live cutover halfway through: the second half's answers
    #    must all carry the post-cutover version.
    requests = generate_requests(
        args.selftest,
        seed=args.seed,
        snapshot=snapshot,
        unknown_fraction=args.unknown_fraction,
    )

    async def _selftest(door: FrontDoor):
        half = len(requests) // 2
        first = await run_socket_load(
            door.host, door.port, requests[:half]
        )
        if snapshot is not None:
            fleet.publish(snapshot)
        second = await run_socket_load(
            door.host, door.port, requests[half:]
        )
        return first, second

    with fleet:
        if snapshot is not None:
            fleet.publish(snapshot)

        async def _run():
            async with FrontDoor(fleet, fleet_config) as door:
                port = door.port
                first, second = await _selftest(door)
                return port, first, second

        port, first, second = asyncio.run(_run())
        stats = fleet.stats()
        pids = [pid for pid in stats["pids"] if pid is not None]
    stale = [v for v in second.versions if v != fleet.version]
    answered = first.answered + second.answered
    wall = first.wall_time_s + second.wall_time_s
    summary = {
        "shards": fleet.n_shards,
        "pids": pids,
        "distinct_pids": len(set(pids)),
        "port": port,
        "answered": answered,
        "priced": first.priced + second.priced,
        "degraded": first.degraded + second.degraded,
        "quotes_per_second": round(answered / max(wall, 1e-9), 1),
        "p99_ms": second.latency_ms.get("p99"),
        "versions": sorted(set(first.versions) | set(second.versions)),
        "cutovers": stats["cutovers"],
        "respawns": stats["respawns"],
        "stale_after_cutover": len(stale),
    }
    lines = [
        f"stream warm-up: {len(stream_report.results)} windows, "
        f"{stream_report.windows_priced} priced, "
        f"{stream_report.retier_events} re-tier events",
        (
            "active snapshot: none (degraded serving)"
            if snapshot is None
            else f"active {snapshot.describe()}"
        ),
        f"fleet: {fleet.n_shards} shards (pids {pids}), front door on "
        f"port {port}, segment version {fleet.version}",
        first.render(),
        f"-- live cutover to v{fleet.version} --",
        second.render(),
        "fleet-report: " + json.dumps(summary, sort_keys=True),
    ]
    return "\n".join(lines)


def cmd_ecosystem(args: argparse.Namespace) -> str:
    import json

    from repro.config import EcosystemConfig
    from repro.ecosystem import (
        EcosystemSpec,
        STUB,
        TIER2,
        as_table1_row,
        build_ecosystem,
        design_for_as,
        measured_flowset_for,
        render_ecosystem,
        verify_valley_free,
    )
    from repro.netflow.codec import encode_packets

    config = EcosystemConfig.resolve(cli=args)
    spec = EcosystemSpec.from_counts(
        ases=config.ases, ixps=config.ixps, seed=config.seed
    )
    eco = build_ecosystem(spec)
    lines = [
        f"ecosystem: {spec.n_ases} ASes (seed {spec.seed}, "
        f"digest {spec.digest()[:12]})",
        "summary: " + json.dumps(eco.summary(), sort_keys=True),
    ]

    if args.emit_netflow:
        import pathlib

        out_dir = pathlib.Path(args.emit_netflow)
        out_dir.mkdir(parents=True, exist_ok=True)
        engines = eco.engine_map()
        total_packets = 0
        for a in eco.ases:
            packets = encode_packets(eco.netflow_records_for(a.asn), engines)
            (out_dir / f"{a.name}.nf5").write_bytes(b"".join(packets))
            total_packets += len(packets)
        lines.append(
            f"netflow: wrote {len(eco.ases)} .nf5 files "
            f"({total_packets} packets) to {out_dir}"
        )

    if args.selftest:
        checked = verify_valley_free(eco)
        lines.append(f"selftest: {checked} paths valley-free")
        rebuilt = render_ecosystem(spec)
        identical = (
            eco.up_edges.tobytes() == rebuilt.up_edges.tobytes()
            and eco.peer_edges.tobytes() == rebuilt.peer_edges.tobytes()
            and eco.tables.path_len.tobytes()
            == rebuilt.tables.path_len.tobytes()
            and eco.tables.next_hop.tobytes()
            == rebuilt.tables.next_hop.tobytes()
        )
        if not identical:
            raise DataError("rebuild of the same spec diverged")
        lines.append("selftest: rebuild byte-identical")
        probes = [eco.ases_of_kind(STUB)[0], eco.ases_of_kind(TIER2)[0]]
        wired = measured_flowset_for(eco, probes[0].asn, through_wire=True)
        direct = measured_flowset_for(eco, probes[0].asn, through_wire=False)
        if wired.demands.tobytes() != direct.demands.tobytes():
            raise DataError("NetFlow v5 wire round-trip changed demands")
        lines.append(
            f"selftest: wire round-trip exact ({len(wired)} flows)"
        )
        mech_cfg = MechanismConfig.resolve(cli=args)
        mechanism = (
            None
            if mech_cfg.is_default
            else mech_cfg.build(n_tiers=args.tiers)
        )
        for probe in probes:
            design = design_for_as(
                eco, probe.asn, n_tiers=args.tiers, mechanism=mechanism
            )
            lines.append(
                f"design {probe.name}: " + json.dumps(design, sort_keys=True)
            )
        lines.append(
            "table1 "
            + json.dumps(as_table1_row(eco, probes[0].asn), sort_keys=True)
        )
    return "\n".join(lines)


def cmd_mechanisms(args: argparse.Namespace) -> str:
    import numpy as np

    from repro.core.ced import CEDDemand
    from repro.core.cost import LinearDistanceCost
    from repro.core.logit import LogitDemand
    from repro.core.market import Market
    from repro.mechanisms import (
        MECHANISM_NAMES,
        PostedTiers,
        cleared_supply,
        clearing_price,
        mechanism_by_name,
    )
    from repro.synth.datasets import load_dataset

    mech_cfg = MechanismConfig.resolve(cli=args)
    flows = load_dataset(args.dataset, n_flows=args.flows, seed=args.seed)
    cost_model = LinearDistanceCost(theta=DEFAULT_CONFIG.theta)
    families = [
        ("ced a=1.1", CEDDemand(alpha=1.1)),
        ("ced a=3.0", CEDDemand(alpha=3.0)),
        (
            "logit",
            LogitDemand(alpha=DEFAULT_CONFIG.alpha, s0=DEFAULT_CONFIG.s0),
        ),
    ]
    lines = [
        f"dataset {args.dataset}: {len(flows)} flows, "
        f"{flows.aggregate_gbps():.1f} Gbps (seed {args.seed}, "
        f"blended ${DEFAULT_CONFIG.blended_rate:.0f}/Mbps, "
        f"tier budget {args.tiers}, "
        f"spot windows {mech_cfg.spot_windows})",
        "",
        f"{'demand family':<13} {'mechanism':<13} {'capture':>9} "
        f"{'profit $/mo':>13} {'tiers':>6} {'posted':>7}",
    ]
    captures: dict = {}
    markets: dict = {}
    for label, demand in families:
        market = Market(
            flows, demand, cost_model, DEFAULT_CONFIG.blended_rate
        )
        markets[label] = market
        for name in MECHANISM_NAMES:
            mechanism = mechanism_by_name(
                name,
                n_tiers=args.tiers,
                spot_windows=mech_cfg.spot_windows,
                elasticity_split=mech_cfg.elasticity_split,
                exchange_radius_miles=mech_cfg.exchange_radius_miles,
                bargaining=mech_cfg.bargaining,
            )
            try:
                design = mechanism.design_on(market)
            except MechanismError as exc:
                lines.append(
                    f"{label:<13} {name:<13} {'n/a':>9} "
                    f"{'—':>13} {'—':>6} {'—':>7}  ({exc})"
                )
                continue
            captures[(label, name)] = design.profit_capture
            lines.append(
                f"{label:<13} {name:<13} {design.profit_capture:>9.4f} "
                f"{design.profit:>13,.0f} {design.n_tiers:>6} "
                f"{design.posted_tiers:>7}"
            )
    lines.append("")
    lines.append(
        "capture = (pi_mechanism - pi_blended) / (pi_max - pi_blended); "
        "negative means the mechanism earns less than blended-rate "
        "pricing (the paid-peering bypass threat can force near-cost "
        "peering rates)."
    )

    if args.selftest:
        from repro.core.bundling import paper_strategies

        if tuple(MECHANISMS) != tuple(MECHANISM_NAMES):
            raise MechanismError(
                "config MECHANISMS and mechanisms MECHANISM_NAMES diverged"
            )
        lines.append(f"selftest: registry in sync ({len(MECHANISMS)} mechanisms)")

        # Posted-tiers byte-identity: the mechanism wrapper must score
        # exactly what the legacy bundling path scores, strategy by
        # strategy — same prices, same profit, same capture, bit for bit.
        market = markets["ced a=1.1"]
        for strategy in paper_strategies():
            outcome = market.tiered_outcome(strategy, args.tiers)
            design = PostedTiers(
                strategy=strategy, n_tiers=args.tiers
            ).design_on(market)
            identical = (
                design.profit == outcome.profit
                and design.profit_capture == outcome.profit_capture
                and design.consumer_surplus == outcome.consumer_surplus
                and [t.price for t in design.tiers]
                == [t.price for t in outcome.tiers]
                and [t.n_flows for t in design.tiers]
                == [t.n_flows for t in outcome.tiers]
            )
            if not identical:
                raise MechanismError(
                    f"posted-tiers diverged from the legacy path for "
                    f"strategy {strategy.name!r}"
                )
        lines.append(
            f"selftest: posted-tiers byte-identical to the legacy "
            f"bundling path ({len(paper_strategies())} strategies)"
        )

        # Spot clearing invariants: the clearing price is strictly
        # decreasing in supply, and clearing/cleared_supply are inverses.
        elastic = markets["ced a=3.0"]
        valuations = elastic.valuations
        supply = float(np.sum(flows.demands))
        prices = [
            clearing_price(valuations, s, 3.0)
            for s in (0.5 * supply, supply, 2.0 * supply)
        ]
        if not (prices[0] > prices[1] > prices[2]):
            raise MechanismError(
                "clearing price is not strictly decreasing in supply"
            )
        round_trip = cleared_supply(valuations, prices[1], 3.0)
        if abs(round_trip - supply) > 1e-6 * supply:
            raise MechanismError(
                f"clearing price round-trip drifted: cleared "
                f"{round_trip:.6f} vs supply {supply:.6f}"
            )
        lines.append(
            "selftest: clearing price monotone in supply, round-trip exact"
        )

        # On the elastic family, per-window uniform-price clearing must
        # beat one posted book (the paper's spot-vs-tiers comparison).
        spot = captures.get(("ced a=3.0", "spot-auction"))
        posted = captures.get(("ced a=3.0", "posted-tiers"))
        if spot is None or posted is None or spot < posted:
            raise MechanismError(
                f"spot capture {spot} did not reach posted capture "
                f"{posted} on the elastic family"
            )
        lines.append(
            f"selftest: spot capture {spot:.4f} >= posted {posted:.4f} "
            f"on ced a=3.0"
        )
    return "\n".join(lines)


def cmd_report(args: argparse.Namespace) -> str:
    from repro.experiments.report import generate_report

    text = generate_report(_config(args))
    if args.output != "-":
        import pathlib

        pathlib.Path(args.output).write_text(text)
        return f"wrote {args.output} ({len(text.splitlines())} lines)"
    return text


def cmd_export(args: argparse.Namespace) -> str:
    from repro.io import save_flowset
    from repro.synth.datasets import load_dataset

    flows = load_dataset(args.dataset, n_flows=args.flows, seed=args.seed)
    path = save_flowset(flows, args.output)
    return f"wrote {path} ({len(flows)} flows, {flows.aggregate_gbps():.1f} Gbps)"


def cmd_offerings(args: argparse.Namespace) -> str:
    from repro.core.cost import (
        DestinationTypeCost,
        LinearDistanceCost,
        RegionalCost,
    )
    from repro.peering.offerings import compare_offerings, render_offerings

    cost_model = {
        "linear": lambda: LinearDistanceCost(theta=DEFAULT_CONFIG.theta),
        "regional": lambda: RegionalCost(theta=1.1),
        "destination-type": lambda: DestinationTypeCost(theta=0.2),
    }[args.cost]()
    market = build_market(
        args.dataset, family="ced", cost_model=cost_model, config=_config(args)
    )
    return (
        market.describe()
        + "\n"
        + render_offerings(compare_offerings(market))
    )


def cmd_drift(args: argparse.Namespace) -> str:
    from repro.accounting.drift import evaluate_drift
    from repro.core.ced import CEDDemand
    from repro.core.cost import LinearDistanceCost
    from repro.io import load_design, load_flowset

    design = load_design(args.design)
    flows = load_flowset(args.matrix)
    report = evaluate_drift(
        design,
        flows,
        CEDDemand(alpha=DEFAULT_CONFIG.alpha),
        LinearDistanceCost(theta=DEFAULT_CONFIG.theta),
        blended_rate=args.rate,
    )
    verdict = "RE-TIER" if report.should_retier() else "keep current tiers"
    return "\n".join(
        [
            f"design: {design.n_tiers} tiers over "
            f"{len(design.tier_of_destination)} destinations",
            f"new matrix: {len(flows)} flows, "
            f"{report.unknown_destinations} unknown / "
            f"{report.missing_destinations} churned destinations",
            f"stale design:     profit ${report.stale_profit:,.0f} "
            f"(capture {report.stale_capture:.3f})",
            f"refreshed design: profit ${report.refreshed_profit:,.0f} "
            f"(capture {report.refreshed_capture:.3f})",
            f"monthly regret:   ${report.regret:,.0f}",
            f"recommendation:   {verdict}",
        ]
    )


def cmd_workers(args: argparse.Namespace) -> str:
    import multiprocessing

    from repro.runtime.executor import worker_main

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        raise ConfigurationError(
            f"--connect expects HOST:PORT, got {args.connect!r}"
        )
    port = int(port_text)
    if args.processes < 1:
        raise ConfigurationError(
            f"--processes must be >= 1, got {args.processes}"
        )
    heartbeat_ms = ExecutorConfig.resolve(cli=args).heartbeat_ms
    if args.processes == 1:
        executed = worker_main(host, port, heartbeat_ms=heartbeat_ms)
        return f"worker exited after {executed} spec(s)"
    context = multiprocessing.get_context(
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else None
    )
    procs = [
        context.Process(
            target=worker_main,
            args=(host, port),
            kwargs={"heartbeat_ms": heartbeat_ms},
            name=f"repro-workers-{i}",
        )
        for i in range(args.processes)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join()
    return f"{len(procs)} workers exited"


def cmd_trace(args: argparse.Namespace) -> str:
    from repro.obs import read_trace, render_trace_summary, summarize_trace

    try:
        spans = read_trace(args.path)
    except FileNotFoundError:
        raise DataError(f"no trace file at {args.path!r}") from None
    return render_trace_summary(summarize_trace(spans), path=args.path)


_COMMANDS = {
    "table1": cmd_table1,
    "figure": cmd_figure,
    "datasets": cmd_datasets,
    "design": cmd_design,
    "stream": cmd_stream,
    "serve": cmd_serve,
    "fleet": cmd_fleet,
    "ecosystem": cmd_ecosystem,
    "mechanisms": cmd_mechanisms,
    "report": cmd_report,
    "export": cmd_export,
    "offerings": cmd_offerings,
    "drift": cmd_drift,
    "trace": cmd_trace,
    "workers": cmd_workers,
}


def _apply_flag_aliases(args: argparse.Namespace) -> None:
    """Honor the historical jobs/workers cross-spellings, with a warning.

    ``figure --workers`` predates the jobs/workers naming split and means
    process fan-out (``--jobs``); ``serve --jobs`` (inherited from the
    shared runtime flags) likewise gets read as the serving thread count.
    Canonical spellings win when both are given.
    """
    workers_alias = getattr(args, "workers_alias", None)
    if workers_alias is not None:
        warnings.warn(
            "repro figure --workers is a deprecated alias; use --jobs",
            DeprecationWarning,
            stacklevel=2,
        )
        if args.jobs is None:
            args.jobs = workers_alias
    if args.command == "serve" and getattr(args, "jobs", None) is not None:
        warnings.warn(
            "repro serve --jobs is a deprecated alias; use --workers",
            DeprecationWarning,
            stacklevel=2,
        )
        if args.workers is None:
            args.workers = args.jobs


def _emit_metrics(
    args: argparse.Namespace, wall_time_s: float, cache_enabled: bool
) -> None:
    """Write the run's structured-JSON report where ``--metrics`` asked.

    :func:`repro.obs.to_json` merges the metrics registry with the
    tracer's per-span rollup, so one file carries counters and latency.
    """
    executor_config = ExecutorConfig.resolve(cli=args)
    payload = obs.to_json(
        command=args.command,
        wall_time_s=wall_time_s,
        jobs=executor_config.worker_count(),
        executor=executor_config.backend,
        cache_enabled=cache_enabled,
    )
    if args.metrics == "-":
        print(payload, file=sys.stderr)
    else:
        import pathlib

        pathlib.Path(args.metrics).write_text(payload + "\n")


def main(argv: "Sequence[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    _apply_flag_aliases(args)
    cache_was_enabled = runtime_cache.cache_enabled()
    if getattr(args, "no_cache", False):
        # Disable all cache layers (results, markets, datasets), not just
        # the driver-level result cache the config threads through.
        runtime_cache.configure(enabled=False)
    run_cache_enabled = runtime_cache.cache_enabled()
    obs_config = ObsConfig.resolve(cli=args)
    if obs_config.enabled:
        obs.configure_tracing(obs_config.trace)
    started = time.perf_counter()
    exit_code = 0
    try:
        try:
            with obs.span(f"cli.{args.command}", command=args.command):
                output = _COMMANDS[args.command](args)
            print(output)
        except BrokenPipeError:
            # Output was piped into a pager/head that closed early; not an
            # error.
            sys.stderr.close()
            return 0
        except ReproError as exc:
            print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
            exit_code = exit_code_for(exc)
        if exit_code == 0 and getattr(args, "metrics", None):
            _emit_metrics(args, time.perf_counter() - started, run_cache_enabled)
        return exit_code
    finally:
        # main() is also called in-process (tests, embedding); don't let
        # one --no-cache run disable caching — or leave a tracer holding
        # an open file — for the rest of the process.
        runtime_cache.configure(enabled=cache_was_enabled)
        if obs_config.enabled:
            obs.configure_tracing(None)


if __name__ == "__main__":
    sys.exit(main())
