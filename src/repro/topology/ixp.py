"""Internet exchange points and peering interconnects (paper §2.2.2, Fig. 2).

An :class:`IXP` sits in a city; networks present at the exchange can peer
there.  The peering-bypass model (:mod:`repro.peering.bypass`) uses these
to reason about a customer provisioning its own link to a nearby exchange
instead of paying the ISP's blended rate.
"""

from __future__ import annotations

import dataclasses

from repro.errors import TopologyError
from repro.geo.coords import City, city_distance_miles


@dataclasses.dataclass(frozen=True)
class IXP:
    """An Internet exchange point.

    Attributes:
        name: Exchange name, e.g. ``"BOS-IX"``.
        city: Location.
        members: Codes/names of networks present at the exchange.
    """

    name: str
    city: City
    members: tuple = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("IXP name must be non-empty")

    def has_member(self, network: str) -> bool:
        return network in self.members

    def with_member(self, network: str) -> "IXP":
        """A copy with one more member network."""
        if self.has_member(network):
            return self
        return dataclasses.replace(self, members=self.members + (network,))

    def distance_to_city(self, city: City) -> float:
        """Great-circle distance from another city in miles."""
        return city_distance_miles(self.city, city)
