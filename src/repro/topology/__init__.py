"""Network-topology substrate: PoPs, links, routing, reference networks."""

from repro.topology.builders import (
    build_cdn_topology,
    build_eu_isp_topology,
    build_internet2_topology,
)
from repro.topology.ixp import IXP
from repro.topology.network import Topology
from repro.topology.pop import Link, PoP
from repro.topology.routing import (
    ExitDecision,
    ExitSelector,
    FlowSpec,
    PolicyOutcome,
)

__all__ = [
    "ExitDecision",
    "ExitSelector",
    "FlowSpec",
    "IXP",
    "Link",
    "PoP",
    "PolicyOutcome",
    "Topology",
    "build_cdn_topology",
    "build_eu_isp_topology",
    "build_internet2_topology",
]
