"""Points of presence and links.

A transit network is modeled at PoP granularity: routers collapse into one
node per metro (how the paper's data is aggregated), and links carry a
geographic length that the cost models consume.
"""

from __future__ import annotations

import dataclasses

from repro.errors import TopologyError
from repro.geo.coords import City, city_distance_miles


@dataclasses.dataclass(frozen=True)
class PoP:
    """A point of presence located in a gazetteer city.

    Attributes:
        code: Short unique code, e.g. ``"FRA"``.
        city: The city the PoP sits in (provides coordinates and country).
    """

    code: str
    city: City

    def __post_init__(self) -> None:
        if not self.code:
            raise TopologyError("PoP code must be non-empty")

    def distance_to(self, other: "PoP") -> float:
        """Great-circle distance to another PoP in miles."""
        return city_distance_miles(self.city, other.city)


@dataclasses.dataclass(frozen=True)
class Link:
    """An undirected backbone link between two PoPs.

    Attributes:
        a: One endpoint PoP code.
        b: The other endpoint PoP code.
        length_miles: Geographic length; defaults to the great-circle
            distance between the endpoint cities when built through
            :meth:`repro.topology.network.Topology.add_link`.
        capacity_gbps: Nominal capacity, used by the accounting examples.
    """

    a: str
    b: str
    length_miles: float
    capacity_gbps: float = 10.0

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise TopologyError(f"link endpoints must differ, got {self.a!r} twice")
        if self.length_miles < 0:
            raise TopologyError(f"link length must be >= 0, got {self.length_miles}")
        if self.capacity_gbps <= 0:
            raise TopologyError(f"capacity must be positive, got {self.capacity_gbps}")

    @property
    def key(self) -> tuple:
        """Canonical unordered endpoint pair."""
        return tuple(sorted((self.a, self.b)))
