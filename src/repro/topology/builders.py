"""Reference topologies for the three studied networks (§4.1.1).

The paper's networks are proprietary; these builders produce plausible
stand-ins at the same scale and geographic footprint:

* :func:`build_eu_isp_topology` — a European transit ISP: a dense national
  core (Benelux) with regional spurs, matching the short (54-mile
  demand-weighted) flow distances of the paper's EU ISP.
* :func:`build_internet2_topology` — the historical Abilene backbone: 11
  PoPs, the published link set, continental-scale distances.
* :func:`build_cdn_topology` — a global CDN footprint: PoPs on every
  continent; the CDN's "distance" is endpoint-to-endpoint GeoIP distance
  so the backbone links are only used by the accounting examples.
"""

from __future__ import annotations

from repro.geo.coords import (
    City,
    EUROPEAN_CITIES,
    US_RESEARCH_CITIES,
    WORLD_CITIES,
)
from repro.topology.network import Topology


def _city(table: tuple, name: str) -> City:
    for city in table:
        if city.name == name:
            return city
    raise LookupError(f"{name!r} is not in the gazetteer table")


def build_eu_isp_topology() -> Topology:
    """A European transit ISP centred on the Benelux/DE core."""
    topology = Topology("eu-isp")
    codes = {
        "AMS": "Amsterdam",
        "RTM": "Rotterdam",
        "HAG": "The Hague",
        "UTR": "Utrecht",
        "EIN": "Eindhoven",
        "BRU": "Brussels",
        "ANR": "Antwerp",
        "FRA": "Frankfurt",
        "DUS": "Dusseldorf",
        "HAM": "Hamburg",
        "BER": "Berlin",
        "MUC": "Munich",
        "PAR": "Paris",
        "LON": "London",
        "ZRH": "Zurich",
        "VIE": "Vienna",
        "MIL": "Milan",
        "MAD": "Madrid",
        "STO": "Stockholm",
        "CPH": "Copenhagen",
        "WAW": "Warsaw",
        "PRG": "Prague",
    }
    for code, name in codes.items():
        topology.add_pop(code, _city(EUROPEAN_CITIES, name))
    edges = [
        # Dense national core.
        ("AMS", "RTM"), ("AMS", "UTR"), ("AMS", "HAG"), ("RTM", "HAG"),
        ("UTR", "EIN"), ("RTM", "ANR"), ("ANR", "BRU"), ("EIN", "DUS"),
        # Western-European ring.
        ("AMS", "LON"), ("LON", "PAR"), ("PAR", "BRU"), ("BRU", "FRA"),
        ("AMS", "FRA"), ("DUS", "FRA"), ("FRA", "MUC"), ("FRA", "HAM"),
        ("HAM", "BER"), ("BER", "WAW"), ("MUC", "VIE"), ("VIE", "PRG"),
        ("PRG", "BER"), ("MUC", "ZRH"), ("ZRH", "MIL"), ("PAR", "MAD"),
        ("HAM", "CPH"), ("CPH", "STO"),
    ]
    for a, b in edges:
        topology.add_link(a, b)
    return topology


#: The historical Abilene (Internet2) link set.
_ABILENE_EDGES = [
    ("SEA", "SNV"), ("SEA", "DEN"), ("SNV", "LAX"), ("SNV", "DEN"),
    ("LAX", "HOU"), ("DEN", "KSC"), ("KSC", "HOU"), ("KSC", "IPL"),
    ("HOU", "ATL"), ("IPL", "CHI"), ("IPL", "ATL"), ("CHI", "NYC"),
    ("ATL", "WDC"), ("NYC", "WDC"), ("SLC", "DEN"), ("SLC", "SNV"),
]


def build_internet2_topology() -> Topology:
    """The 11-PoP Abilene research backbone."""
    topology = Topology("internet2")
    codes = {
        "SEA": "Seattle",
        "SNV": "Sunnyvale",
        "LAX": "Los Angeles",
        "SLC": "Salt Lake City",
        "DEN": "Denver",
        "KSC": "Kansas City",
        "HOU": "Houston",
        "IPL": "Indianapolis",
        "CHI": "Chicago",
        "ATL": "Atlanta",
        "WDC": "Washington",
        "NYC": "New York",
    }
    for code, name in codes.items():
        topology.add_pop(code, _city(US_RESEARCH_CITIES, name))
    for a, b in _ABILENE_EDGES:
        topology.add_link(a, b)
    return topology


def build_cdn_topology() -> Topology:
    """A global CDN footprint: every PoP homed to regional hubs."""
    topology = Topology("cdn")
    hub_names = {"New York", "London", "Singapore"}
    hubs = []
    for city in WORLD_CITIES:
        code = _cdn_code(city)
        topology.add_pop(code, city)
        if city.name in hub_names:
            hubs.append(code)
    # Hubs form a full mesh; every other PoP connects to its two nearest hubs.
    for i, hub_a in enumerate(hubs):
        for hub_b in hubs[i + 1 :]:
            topology.add_link(hub_a, hub_b)
    for city in WORLD_CITIES:
        code = _cdn_code(city)
        if code in hubs:
            continue
        nearest = sorted(
            hubs, key=lambda hub: topology.geographic_distance(code, hub)
        )[:2]
        for hub in nearest:
            topology.add_link(code, hub)
    return topology


def _cdn_code(city: City) -> str:
    return (city.name[:3] + city.country).upper().replace(" ", "")
