"""Customer routing policy under tier-tagged routes (paper §5.1).

The paper's deployment story: the upstream ISP tags routes with their
pricing tier; a customer that runs its own backbone can then stop
hot-potato routing ("offload to the transit network as early as
possible") for destinations whose routes are tagged expensive, and
instead carry the traffic across its own backbone to a hand-off point
where the destination falls in a cheaper tier.

:class:`ExitSelector` models that decision per flow:

* **hot-potato** — hand off at the customer PoP closest to the traffic
  source (classic behaviour, ignores price tags);
* **tier-aware** — hand off at the PoP minimizing
  ``backbone_cost_per_mile * own_carriage + tier_price * volume``, i.e.
  trade backbone miles against the provider's tier price at each exit.

The provider's tier for a (exit PoP, destination) pair comes from a
caller-supplied pricing function — in the simplest case the provider's
regional cost model evaluated at the exit-to-destination distance.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence

from repro.errors import TopologyError
from repro.topology.network import Topology

#: Signature: (exit PoP code, destination key) -> $/Mbps/month tier price.
TierPriceFn = Callable[[str, str], float]
#: Signature: (exit PoP code, destination key) -> miles (provider side).
ProviderDistanceFn = Callable[[str, str], float]


@dataclasses.dataclass(frozen=True)
class ExitDecision:
    """The chosen hand-off for one flow."""

    source_pop: str
    exit_pop: str
    destination: str
    demand_mbps: float
    backbone_miles: float
    tier_price: float

    @property
    def backbone_cost(self) -> float:
        """Filled in by the selector: carriage miles * unit mile cost."""
        return self.backbone_miles

    def monthly_transit_bill(self) -> float:
        return self.tier_price * self.demand_mbps


@dataclasses.dataclass(frozen=True)
class PolicyOutcome:
    """Aggregate result of routing a traffic matrix under one policy."""

    policy: str
    decisions: tuple
    backbone_mile_mbps: float
    transit_bill: float

    def total_cost(self, backbone_cost_per_mile_mbps: float) -> float:
        return (
            self.backbone_mile_mbps * backbone_cost_per_mile_mbps
            + self.transit_bill
        )


@dataclasses.dataclass(frozen=True)
class FlowSpec:
    """One customer flow: where it enters the backbone and where it goes."""

    source_pop: str
    destination: str
    demand_mbps: float

    def __post_init__(self) -> None:
        if self.demand_mbps <= 0:
            raise TopologyError("flow demand must be positive")


class ExitSelector:
    """Chooses hand-off PoPs for a customer with its own backbone.

    Args:
        backbone: The customer's own topology (hand-off PoPs are its
            nodes; carriage distances are its routed path lengths).
        handoff_pops: PoP codes where the customer can reach the
            provider (must exist in ``backbone``).
        tier_price: Provider's tier price for (exit, destination).
        backbone_cost_per_mile_mbps: The customer's amortized cost of
            carrying 1 Mbps for 1 mile on its own backbone, $/month.
    """

    def __init__(
        self,
        backbone: Topology,
        handoff_pops: Sequence[str],
        tier_price: TierPriceFn,
        backbone_cost_per_mile_mbps: float,
    ) -> None:
        if not handoff_pops:
            raise TopologyError("need at least one hand-off PoP")
        for code in handoff_pops:
            backbone.pop(code)  # raises for unknown codes
        if backbone_cost_per_mile_mbps < 0:
            raise TopologyError("backbone cost must be >= 0")
        self.backbone = backbone
        self.handoff_pops = list(dict.fromkeys(handoff_pops))
        self.tier_price = tier_price
        self.backbone_cost_per_mile_mbps = float(backbone_cost_per_mile_mbps)

    # ------------------------------------------------------------------

    def hot_potato_exit(self, flow: FlowSpec) -> str:
        """The nearest hand-off to the source (price-blind)."""
        return min(
            self.handoff_pops,
            key=lambda code: (
                self.backbone.routed_distance(flow.source_pop, code),
                code,
            ),
        )

    def tier_aware_exit(self, flow: FlowSpec) -> str:
        """The hand-off minimizing backbone carriage + tier price."""

        def monthly_cost(code: str) -> float:
            miles = self.backbone.routed_distance(flow.source_pop, code)
            return flow.demand_mbps * (
                miles * self.backbone_cost_per_mile_mbps
                + self.tier_price(code, flow.destination)
            )

        return min(self.handoff_pops, key=lambda code: (monthly_cost(code), code))

    # ------------------------------------------------------------------

    def route_all(
        self, flows: Sequence[FlowSpec], policy: str = "tier-aware"
    ) -> PolicyOutcome:
        """Route a traffic matrix under one policy and aggregate costs."""
        if policy == "hot-potato":
            choose = self.hot_potato_exit
        elif policy == "tier-aware":
            choose = self.tier_aware_exit
        else:
            raise TopologyError(
                f"unknown policy {policy!r}; use 'hot-potato' or 'tier-aware'"
            )
        decisions = []
        backbone_mile_mbps = 0.0
        transit_bill = 0.0
        for flow in flows:
            exit_pop = choose(flow)
            miles = self.backbone.routed_distance(flow.source_pop, exit_pop)
            price = self.tier_price(exit_pop, flow.destination)
            decisions.append(
                ExitDecision(
                    source_pop=flow.source_pop,
                    exit_pop=exit_pop,
                    destination=flow.destination,
                    demand_mbps=flow.demand_mbps,
                    backbone_miles=miles,
                    tier_price=price,
                )
            )
            backbone_mile_mbps += miles * flow.demand_mbps
            transit_bill += price * flow.demand_mbps
        return PolicyOutcome(
            policy=policy,
            decisions=tuple(decisions),
            backbone_mile_mbps=backbone_mile_mbps,
            transit_bill=transit_bill,
        )

    def savings(self, flows: Sequence[FlowSpec]) -> dict:
        """Monthly cost of both policies and the tag-awareness savings."""
        hot = self.route_all(flows, "hot-potato")
        aware = self.route_all(flows, "tier-aware")
        rate = self.backbone_cost_per_mile_mbps
        hot_cost = hot.total_cost(rate)
        aware_cost = aware.total_cost(rate)
        return {
            "hot_potato": hot,
            "tier_aware": aware,
            "hot_potato_cost": hot_cost,
            "tier_aware_cost": aware_cost,
            "savings": hot_cost - aware_cost,
            "savings_fraction": (
                (hot_cost - aware_cost) / hot_cost if hot_cost > 0 else 0.0
            ),
        }
