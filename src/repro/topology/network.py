"""The PoP-level network graph.

:class:`Topology` wraps a :mod:`networkx` graph of PoPs and links and
provides the distance computations the paper's §4.1.1 heuristics need:

* entry-to-exit great-circle distance (EU ISP heuristic);
* shortest routed path with distance as the sum of traversed link lengths
  (Internet2 heuristic).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional

import networkx as nx

from repro.errors import TopologyError
from repro.geo.coords import City
from repro.topology.pop import Link, PoP


class Topology:
    """A named PoP-level network.

    PoPs are addressed by code.  Links are undirected and weighted by
    geographic length; routing is shortest-path on length.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise TopologyError("topology name must be non-empty")
        self.name = name
        self._graph = nx.Graph()
        self._pops: dict = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_pop(self, code: str, city: City) -> PoP:
        """Register a PoP; codes must be unique."""
        if code in self._pops:
            raise TopologyError(f"duplicate PoP code {code!r} in {self.name}")
        pop = PoP(code=code, city=city)
        self._pops[code] = pop
        self._graph.add_node(code)
        return pop

    def add_link(
        self,
        a: str,
        b: str,
        length_miles: Optional[float] = None,
        capacity_gbps: float = 10.0,
    ) -> Link:
        """Connect two PoPs; length defaults to the great-circle distance."""
        pop_a = self.pop(a)
        pop_b = self.pop(b)
        if length_miles is None:
            length_miles = pop_a.distance_to(pop_b)
        link = Link(a=a, b=b, length_miles=length_miles, capacity_gbps=capacity_gbps)
        self._graph.add_edge(a, b, length=link.length_miles, link=link)
        return link

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def pop(self, code: str) -> PoP:
        try:
            return self._pops[code]
        except KeyError as exc:
            raise TopologyError(f"unknown PoP {code!r} in {self.name}") from exc

    @property
    def pop_codes(self) -> "list[str]":
        return sorted(self._pops)

    @property
    def pops(self) -> "list[PoP]":
        return [self._pops[code] for code in self.pop_codes]

    @property
    def links(self) -> "list[Link]":
        return [data["link"] for _, _, data in self._graph.edges(data=True)]

    def __len__(self) -> int:
        return len(self._pops)

    def __contains__(self, code: str) -> bool:
        return code in self._pops

    def __repr__(self) -> str:
        return (
            f"Topology({self.name!r}, pops={len(self)}, "
            f"links={self._graph.number_of_edges()})"
        )

    # ------------------------------------------------------------------
    # Distances (the §4.1.1 heuristics)
    # ------------------------------------------------------------------

    def is_connected(self) -> bool:
        return len(self) > 0 and nx.is_connected(self._graph)

    def geographic_distance(self, a: str, b: str) -> float:
        """Entry-to-exit great-circle distance (the EU-ISP heuristic)."""
        return self.pop(a).distance_to(self.pop(b))

    def shortest_path(self, a: str, b: str) -> "list[str]":
        """Shortest route by summed link length."""
        self.pop(a)
        self.pop(b)
        try:
            return nx.shortest_path(self._graph, a, b, weight="length")
        except nx.NetworkXNoPath as exc:
            raise TopologyError(
                f"no route between {a!r} and {b!r} in {self.name}"
            ) from exc

    def routed_distance(self, a: str, b: str) -> float:
        """Summed link length along the shortest route (Internet2 heuristic)."""
        self.pop(a)
        self.pop(b)
        try:
            return float(nx.shortest_path_length(self._graph, a, b, weight="length"))
        except nx.NetworkXNoPath as exc:
            raise TopologyError(
                f"no route between {a!r} and {b!r} in {self.name}"
            ) from exc

    def path_links(self, path: Iterable[str]) -> "list[Link]":
        """The link objects along a node path."""
        path = list(path)
        links = []
        for a, b in zip(path, path[1:]):
            data = self._graph.get_edge_data(a, b)
            if data is None:
                raise TopologyError(f"{a!r}-{b!r} is not a link in {self.name}")
            links.append(data["link"])
        return links

    def diameter_miles(self) -> float:
        """Longest shortest-route distance between any PoP pair."""
        if not self.is_connected():
            raise TopologyError(f"{self.name} is not connected")
        return float(
            max(
                max(lengths.values())
                for _, lengths in nx.all_pairs_dijkstra_path_length(
                    self._graph, weight="length"
                )
            )
        )
