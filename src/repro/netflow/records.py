"""NetFlow-style flow export records (paper §4.1.1).

The paper's demand data is 24 hours of sampled NetFlow from each network's
core routers.  :class:`NetFlowRecord` models the v5-style export record the
pipeline consumes: a 5-tuple key, byte/packet counters, a time range, the
exporting router, and the sampling interval needed to scale counters back
to true volumes.
"""

from __future__ import annotations

import dataclasses

from repro.errors import DataError

#: IANA protocol numbers used by the trace generator.
PROTO_TCP = 6
PROTO_UDP = 17


@dataclasses.dataclass(frozen=True)
class FlowKey:
    """The 5-tuple identifying a flow."""

    src_addr: str
    dst_addr: str
    src_port: int
    dst_port: int
    protocol: int

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 65535:
                raise DataError(f"port out of range: {port}")
        if not 0 <= self.protocol <= 255:
            raise DataError(f"protocol out of range: {self.protocol}")


@dataclasses.dataclass(frozen=True)
class NetFlowRecord:
    """One exported flow record.

    Attributes:
        key: The flow 5-tuple.
        octets: Bytes observed *after* sampling (multiply by
            ``sampling_interval`` to estimate the true volume).
        packets: Packets observed after sampling.
        first_ms: Flow start (ms since trace epoch).
        last_ms: Flow end (ms since trace epoch, inclusive).
        router: Code of the exporting router/PoP.
        input_if: SNMP index of the input interface.
        output_if: SNMP index of the output interface.
        sampling_interval: The router samples one packet in this many.
    """

    key: FlowKey
    octets: int
    packets: int
    first_ms: int
    last_ms: int
    router: str
    input_if: int = 0
    output_if: int = 0
    sampling_interval: int = 1

    def __post_init__(self) -> None:
        if self.octets < 0 or self.packets < 0:
            raise DataError("octets and packets must be non-negative")
        if self.packets > 0 and self.octets == 0:
            raise DataError("a record with packets must carry octets")
        if self.last_ms < self.first_ms:
            raise DataError(
                f"record ends ({self.last_ms}) before it starts ({self.first_ms})"
            )
        if self.sampling_interval < 1:
            raise DataError(
                f"sampling_interval must be >= 1, got {self.sampling_interval}"
            )
        if not self.router:
            raise DataError("router must be non-empty")

    @property
    def estimated_octets(self) -> int:
        """Estimated true bytes: observed bytes times the sampling interval."""
        return self.octets * self.sampling_interval

    @property
    def duration_ms(self) -> int:
        return self.last_ms - self.first_ms

    def mean_rate_mbps(self, window_ms: int) -> float:
        """Estimated average rate over an accounting window, in Mbit/s."""
        if window_ms <= 0:
            raise DataError(f"window must be positive, got {window_ms}")
        return self.estimated_octets * 8.0 / (window_ms / 1000.0) / 1e6
