"""Binary NetFlow v5 export encoding/decoding.

The rest of :mod:`repro.netflow` works with parsed
:class:`~repro.netflow.records.NetFlowRecord` objects; this module speaks
the actual wire format, so traces can be written to and read from real
``.nf5`` capture files and the pipeline can ingest exports produced by
other tools.

Layout (all fields big-endian, per Cisco's NetFlow v5 specification):

* 24-byte header: version, count, sysuptime, unix_secs, unix_nsecs,
  flow_sequence, engine_type, engine_id, sampling (2-bit mode + 14-bit
  interval);
* 48-byte records: srcaddr, dstaddr, nexthop, input, output, dPkts,
  dOctets, first, last, srcport, dstport, pad, tcp_flags, prot, tos,
  src_as, dst_as, src_mask, dst_mask, pad.

A v5 packet carries at most 30 records; :func:`encode_packets` splits
larger batches, and :func:`decode_packets` reassembles a stream.

The abstract record's free-form ``router`` string does not exist on the
wire; exporters are identified by the engine fields, so the codec takes
a router <-> engine mapping.  ``engine_id`` alone is one byte; to serve
fleets past 256 exporters the codec spreads the engine number across
``(engine_type << 8) | engine_id`` — 65536 routers — which decodes
identically for classic single-byte exporters (engine_type 0).
"""

from __future__ import annotations

import ipaddress
import struct
from collections.abc import Iterable, Sequence

from repro.errors import DataError
from repro.netflow.records import FlowKey, NetFlowRecord

#: Wire version implemented here.
VERSION = 5
#: Maximum records per v5 packet.
MAX_RECORDS_PER_PACKET = 30

_HEADER = struct.Struct(">HHIIIIBBH")
_RECORD = struct.Struct(">IIIHHIIIIHHBBBBHHBBH")

#: Sampling mode bits for "packet interval sampling".
_SAMPLING_MODE_PACKET_INTERVAL = 0x1


def _ip_to_int(address: str) -> int:
    try:
        return int(ipaddress.IPv4Address(address))
    except (ipaddress.AddressValueError, ValueError) as exc:
        raise DataError(f"invalid IPv4 address {address!r}") from exc


def _int_to_ip(value: int) -> str:
    return str(ipaddress.IPv4Address(value))


#: Engine numbers span engine_type + engine_id, one byte each.
MAX_ENGINES = 1 << 16


class EngineMap:
    """Bidirectional router-name <-> engine-number mapping.

    Engine numbers 0..255 occupy ``engine_id`` alone (byte-compatible
    with single-byte exporters); 256 and up spill into ``engine_type``
    as the high byte.
    """

    def __init__(self, routers: Sequence[str]) -> None:
        routers = list(routers)
        if len(routers) != len(set(routers)):
            raise DataError("router names must be unique")
        if len(routers) > MAX_ENGINES:
            raise DataError(
                "NetFlow v5 engine fields are two bytes combined "
                f"(max {MAX_ENGINES} routers, got {len(routers)})"
            )
        self._to_id = {router: i for i, router in enumerate(routers)}
        self._to_router = dict(enumerate(routers))

    def engine_id(self, router: str) -> int:
        try:
            return self._to_id[router]
        except KeyError as exc:
            raise DataError(f"unknown router {router!r}") from exc

    def router(self, engine_id: int) -> str:
        try:
            return self._to_router[engine_id]
        except KeyError as exc:
            raise DataError(f"unknown engine id {engine_id}") from exc

    @property
    def routers(self) -> "list[str]":
        return [self._to_router[i] for i in sorted(self._to_router)]


def encode_packet(
    records: Sequence[NetFlowRecord],
    engines: EngineMap,
    flow_sequence: int = 0,
    unix_secs: int = 0,
) -> bytes:
    """Encode up to 30 records from a single router into one v5 packet."""
    if not records:
        raise DataError("cannot encode an empty packet")
    if len(records) > MAX_RECORDS_PER_PACKET:
        raise DataError(
            f"v5 packets carry at most {MAX_RECORDS_PER_PACKET} records, "
            f"got {len(records)}; use encode_packets"
        )
    routers = {record.router for record in records}
    if len(routers) != 1:
        raise DataError(
            "one packet has one exporter; records span routers "
            f"{sorted(routers)}"
        )
    intervals = {record.sampling_interval for record in records}
    if len(intervals) != 1:
        raise DataError("records in one packet must share a sampling interval")
    interval = intervals.pop()
    if interval >= 1 << 14:
        raise DataError("sampling interval exceeds the 14-bit wire field")

    sampling = 0
    if interval > 1:
        sampling = (_SAMPLING_MODE_PACKET_INTERVAL << 14) | interval
    engine = engines.engine_id(records[0].router)
    header = _HEADER.pack(
        VERSION,
        len(records),
        0,  # sysuptime: the trace epoch is ms 0
        unix_secs,
        0,
        flow_sequence,
        (engine >> 8) & 0xFF,  # engine_type: high byte of the engine number
        engine & 0xFF,
        sampling,
    )
    body = bytearray()
    for record in records:
        if record.octets >= 1 << 32 or record.packets >= 1 << 32:
            raise DataError("counter exceeds the 32-bit wire field")
        if record.last_ms >= 1 << 32:
            raise DataError("timestamp exceeds the 32-bit wire field")
        body += _RECORD.pack(
            _ip_to_int(record.key.src_addr),
            _ip_to_int(record.key.dst_addr),
            0,  # nexthop
            record.input_if & 0xFFFF,
            record.output_if & 0xFFFF,
            record.packets,
            record.octets,
            record.first_ms,
            record.last_ms,
            record.key.src_port,
            record.key.dst_port,
            0,  # pad1
            0,  # tcp_flags
            record.key.protocol,
            0,  # tos
            0,  # src_as
            0,  # dst_as
            0,  # src_mask
            0,  # dst_mask
            0,  # pad2
        )
    return header + bytes(body)


def decode_packet(data: bytes, engines: EngineMap) -> "list[NetFlowRecord]":
    """Decode one v5 packet back into records."""
    if len(data) < _HEADER.size:
        raise DataError(f"packet too short for a v5 header ({len(data)} bytes)")
    (
        version,
        count,
        _sysuptime,
        _unix_secs,
        _unix_nsecs,
        _flow_sequence,
        engine_type,
        engine_id,
        sampling,
    ) = _HEADER.unpack_from(data, 0)
    if version != VERSION:
        raise DataError(f"not a NetFlow v5 packet (version {version})")
    expected = _HEADER.size + count * _RECORD.size
    if len(data) != expected:
        raise DataError(
            f"packet length {len(data)} does not match header count {count} "
            f"(expected {expected})"
        )
    interval = sampling & 0x3FFF
    if interval == 0:
        interval = 1
    router = engines.router((engine_type << 8) | engine_id)

    records = []
    offset = _HEADER.size
    for _ in range(count):
        (
            src,
            dst,
            _nexthop,
            input_if,
            output_if,
            packets,
            octets,
            first_ms,
            last_ms,
            src_port,
            dst_port,
            _pad1,
            _tcp_flags,
            protocol,
            _tos,
            _src_as,
            _dst_as,
            _src_mask,
            _dst_mask,
            _pad2,
        ) = _RECORD.unpack_from(data, offset)
        offset += _RECORD.size
        records.append(
            NetFlowRecord(
                key=FlowKey(
                    src_addr=_int_to_ip(src),
                    dst_addr=_int_to_ip(dst),
                    src_port=src_port,
                    dst_port=dst_port,
                    protocol=protocol,
                ),
                octets=octets,
                packets=packets,
                first_ms=first_ms,
                last_ms=last_ms,
                router=router,
                input_if=input_if,
                output_if=output_if,
                sampling_interval=interval,
            )
        )
    return records


def encode_packets(
    records: Iterable[NetFlowRecord], engines: EngineMap
) -> "list[bytes]":
    """Encode an arbitrary record stream as a sequence of v5 packets.

    Records are grouped by (router, sampling interval) — each group is an
    export stream with its own flow-sequence counter — and split into
    30-record packets.
    """
    groups: dict = {}
    for record in records:
        groups.setdefault((record.router, record.sampling_interval), []).append(
            record
        )
    packets = []
    for (_, _), group in sorted(groups.items()):
        sequence = 0
        for start in range(0, len(group), MAX_RECORDS_PER_PACKET):
            chunk = group[start : start + MAX_RECORDS_PER_PACKET]
            packets.append(
                encode_packet(chunk, engines, flow_sequence=sequence)
            )
            sequence += len(chunk)
    return packets


def decode_packets(
    packets: Iterable[bytes], engines: EngineMap
) -> "list[NetFlowRecord]":
    """Decode a sequence of v5 packets into a flat record list."""
    records = []
    for packet in packets:
        records.extend(decode_packet(packet, engines))
    return records
