"""Turning deduplicated records into the model's flow set (§4.1.1).

The demand model consumes per-destination *rates*; this module converts a
collector's byte volumes over a capture window into Mbps demands and
attaches the per-network distance heuristic supplied by the caller.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Optional

import numpy as np

from repro.core.flow import NO_LABEL, FlowSet, encode_regions
from repro.errors import DataError
from repro.netflow.collector import FlowCollector
from repro.netflow.records import FlowKey

#: Signature of a distance heuristic: flow key -> miles.
DistanceFn = Callable[[FlowKey], float]
#: Signature of an optional region classifier: flow key -> region label.
RegionFn = Callable[[FlowKey], Optional[str]]


def aggregate_to_flowset(
    collector: FlowCollector,
    window_seconds: float,
    distance_fn: DistanceFn,
    region_fn: Optional[RegionFn] = None,
    min_demand_mbps: float = 0.0,
) -> FlowSet:
    """Build a :class:`FlowSet` from collected records.

    Args:
        collector: Records from all routers, already ingested.
        window_seconds: Length of the capture (24 h in the paper).
        distance_fn: The per-network distance heuristic (entry/exit
            geographic distance, GeoIP endpoint distance, or routed path
            length — see §4.1.1).
        region_fn: Optional region classifier for the regional cost model.
        min_demand_mbps: Flows whose mean rate falls below this are
            dropped (sampling can leave dust entries).

    Raises:
        DataError: If the window is non-positive or no flow survives.
    """
    if window_seconds <= 0:
        raise DataError(f"window_seconds must be positive, got {window_seconds}")
    volumes = collector.deduplicated_octets()
    if not volumes:
        raise DataError("collector holds no records")

    # One pass over the deduplicated keys (the distance/region callbacks
    # force per-key Python), interning endpoint labels on the way so the
    # result assembles straight into code columns — no Flow objects, no
    # label tuples, and the numeric columns are validated exactly once by
    # the columnar constructor.
    demands = []
    distances = []
    regions = []
    src_codes = []
    dst_codes = []
    src_index: "dict[str, int]" = {}
    dst_index: "dict[str, int]" = {}
    for key in sorted(volumes, key=_key_sort):
        octets = volumes[key]
        mbps = octets * 8.0 / window_seconds / 1e6
        if mbps <= min_demand_mbps:
            continue
        demands.append(mbps)
        distances.append(float(distance_fn(key)))
        regions.append(region_fn(key) if region_fn is not None else None)
        src_codes.append(_intern(key.src_addr, src_index))
        dst_codes.append(_intern(key.dst_addr, dst_index))
    if not demands:
        raise DataError(
            "no flows above the demand threshold "
            f"({min_demand_mbps} Mbps) in a {window_seconds:.0f}s window"
        )
    n = len(demands)
    return FlowSet.from_columns(
        np.asarray(demands, dtype=float),
        np.asarray(distances, dtype=float),
        region_codes=encode_regions(regions, n),
        src_codes=np.asarray(src_codes, dtype=np.int32),
        src_table=tuple(src_index),
        dst_codes=np.asarray(dst_codes, dtype=np.int32),
        dst_table=tuple(dst_index),
    )


def _intern(label: Optional[str], index: "dict[str, int]") -> int:
    if label is None:
        return NO_LABEL
    code = index.get(label)
    if code is None:
        code = len(index)
        index[label] = code
    return code


def _key_sort(key: FlowKey) -> tuple:
    return (key.src_addr, key.dst_addr, key.src_port, key.dst_port, key.protocol)
