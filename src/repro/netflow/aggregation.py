"""Turning deduplicated records into the model's flow set (§4.1.1).

The demand model consumes per-destination *rates*; this module converts a
collector's byte volumes over a capture window into Mbps demands and
attaches the per-network distance heuristic supplied by the caller.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Optional

from repro.core.flow import FlowSet
from repro.errors import DataError
from repro.netflow.collector import FlowCollector
from repro.netflow.records import FlowKey

#: Signature of a distance heuristic: flow key -> miles.
DistanceFn = Callable[[FlowKey], float]
#: Signature of an optional region classifier: flow key -> region label.
RegionFn = Callable[[FlowKey], Optional[str]]


def aggregate_to_flowset(
    collector: FlowCollector,
    window_seconds: float,
    distance_fn: DistanceFn,
    region_fn: Optional[RegionFn] = None,
    min_demand_mbps: float = 0.0,
) -> FlowSet:
    """Build a :class:`FlowSet` from collected records.

    Args:
        collector: Records from all routers, already ingested.
        window_seconds: Length of the capture (24 h in the paper).
        distance_fn: The per-network distance heuristic (entry/exit
            geographic distance, GeoIP endpoint distance, or routed path
            length — see §4.1.1).
        region_fn: Optional region classifier for the regional cost model.
        min_demand_mbps: Flows whose mean rate falls below this are
            dropped (sampling can leave dust entries).

    Raises:
        DataError: If the window is non-positive or no flow survives.
    """
    if window_seconds <= 0:
        raise DataError(f"window_seconds must be positive, got {window_seconds}")
    volumes = collector.deduplicated_octets()
    if not volumes:
        raise DataError("collector holds no records")

    demands = []
    distances = []
    regions = []
    srcs = []
    dsts = []
    for key in sorted(volumes, key=_key_sort):
        octets = volumes[key]
        mbps = octets * 8.0 / window_seconds / 1e6
        if mbps <= min_demand_mbps:
            continue
        demands.append(mbps)
        distances.append(float(distance_fn(key)))
        regions.append(region_fn(key) if region_fn is not None else None)
        srcs.append(key.src_addr)
        dsts.append(key.dst_addr)
    if not demands:
        raise DataError(
            "no flows above the demand threshold "
            f"({min_demand_mbps} Mbps) in a {window_seconds:.0f}s window"
        )
    return FlowSet(
        demands_mbps=demands,
        distances_miles=distances,
        regions=regions if any(r is not None for r in regions) else None,
        srcs=srcs,
        dsts=dsts,
    )


def _key_sort(key: FlowKey) -> tuple:
    return (key.src_addr, key.dst_addr, key.src_port, key.dst_port, key.protocol)
