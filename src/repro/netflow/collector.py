"""Multi-router flow collection with duplicate suppression (§4.1.1).

A flow crossing ``k`` core routers is exported ``k`` times.  The paper
"ensure[s] that we do not double-count records that are duplicated on
different routers"; the collector reproduces that: records are grouped by
flow key, and within a group each *router's* contribution is summed, but
the flow's volume is taken from the single router that saw the most of it
(its entry router) rather than from the sum over routers.
"""

from __future__ import annotations

import collections
from collections.abc import Iterable

from repro.errors import DataError
from repro.netflow.records import FlowKey, NetFlowRecord


class FlowCollector:
    """Accumulates NetFlow exports from many routers and deduplicates."""

    def __init__(self) -> None:
        # key -> router -> [records]
        self._records: dict = collections.defaultdict(
            lambda: collections.defaultdict(list)
        )
        self.records_seen = 0

    def ingest(self, record: NetFlowRecord) -> None:
        """Accept one exported record."""
        self._records[record.key][record.router].append(record)
        self.records_seen += 1

    def ingest_many(self, records: Iterable[NetFlowRecord]) -> None:
        for record in records:
            self.ingest(record)

    def __len__(self) -> int:
        """Number of distinct flow keys seen."""
        return len(self._records)

    def routers_for(self, key: FlowKey) -> "list[str]":
        """Routers that exported records for a flow key."""
        if key not in self._records:
            raise DataError(f"no records for flow key {key}")
        return sorted(self._records[key])

    def deduplicated_octets(self) -> dict:
        """Estimated true bytes per flow key, duplicates suppressed.

        For each key, per-router totals are computed from the sampled
        counters (scaled by each record's sampling interval); the flow's
        volume is the **maximum** per-router total, so a flow exported by
        every router on its path is counted once.
        """
        volumes = {}
        for key, by_router in self._records.items():
            per_router = {
                router: sum(r.estimated_octets for r in records)
                for router, records in by_router.items()
            }
            volumes[key] = max(per_router.values())
        return volumes

    def total_octets(self) -> dict:
        """Estimated true bytes per flow key, summed across all routers.

        No duplicate suppression — use when every record comes from a
        single export point (e.g. one customer-facing edge router).
        """
        return {
            key: sum(
                r.estimated_octets
                for records in by_router.values()
                for r in records
            )
            for key, by_router in self._records.items()
        }

    def entry_router(self, key: FlowKey) -> str:
        """The router credited with the flow (the one that saw the most)."""
        if key not in self._records:
            raise DataError(f"no records for flow key {key}")
        per_router = {
            router: sum(r.estimated_octets for r in records)
            for router, records in self._records[key].items()
        }
        return max(per_router, key=lambda router: (per_router[router], router))

    def iter_records(self) -> "Iterable[NetFlowRecord]":
        """All buffered records, in deterministic (time, key, router) order."""
        records = [
            record
            for by_router in self._records.values()
            for group in by_router.values()
            for record in group
        ]
        records.sort(key=_record_sort)
        return records

    def drain(self, older_than_ms: "int | None" = None) -> "list[NetFlowRecord]":
        """Remove and return buffered records, oldest first.

        Args:
            older_than_ms: Only records whose ``last_ms`` is strictly below
                this cutoff are evicted; ``None`` drains everything.

        The streaming windower calls this after closing a window so the
        collector does not grow without bound over an unbounded record
        stream.  Dedup semantics are untouched: records that remain keep
        their (key, router) grouping, and :attr:`records_seen` stays a
        cumulative ingest count.  Returned records are sorted by
        ``(last_ms, first_ms, key, router)`` so replays are deterministic.
        """
        drained = []
        for key in list(self._records):
            by_router = self._records[key]
            for router in list(by_router):
                group = by_router[router]
                if older_than_ms is None:
                    keep: "list[NetFlowRecord]" = []
                    drained.extend(group)
                else:
                    keep = [r for r in group if r.last_ms >= older_than_ms]
                    drained.extend(
                        r for r in group if r.last_ms < older_than_ms
                    )
                if keep:
                    by_router[router] = keep
                else:
                    del by_router[router]
            if not by_router:
                del self._records[key]
        drained.sort(key=_record_sort)
        return drained

    def time_span_ms(self) -> "tuple[int, int]":
        """(earliest first_ms, latest last_ms) across all records."""
        if not self._records:
            raise DataError("collector is empty")
        first = min(
            r.first_ms
            for by_router in self._records.values()
            for records in by_router.values()
            for r in records
        )
        last = max(
            r.last_ms
            for by_router in self._records.values()
            for records in by_router.values()
            for r in records
        )
        return first, last


def _record_sort(record: NetFlowRecord) -> tuple:
    key = record.key
    return (
        record.last_ms,
        record.first_ms,
        key.src_addr,
        key.dst_addr,
        key.src_port,
        key.dst_port,
        key.protocol,
        record.router,
    )
