"""NetFlow substrate: export records, sampling, collection, aggregation,
and the binary v5 wire codec."""

from repro.netflow.aggregation import aggregate_to_flowset
from repro.netflow.codec import (
    EngineMap,
    MAX_ENGINES,
    MAX_RECORDS_PER_PACKET,
    decode_packet,
    decode_packets,
    encode_packet,
    encode_packets,
)
from repro.netflow.collector import FlowCollector
from repro.netflow.records import (
    FlowKey,
    NetFlowRecord,
    PROTO_TCP,
    PROTO_UDP,
)
from repro.netflow.sampling import PacketSampler, SampledCounters
from repro.netflow.v9 import V9Decoder, V9Encoder

__all__ = [
    "EngineMap",
    "FlowCollector",
    "FlowKey",
    "MAX_ENGINES",
    "MAX_RECORDS_PER_PACKET",
    "NetFlowRecord",
    "PROTO_TCP",
    "PROTO_UDP",
    "PacketSampler",
    "SampledCounters",
    "V9Decoder",
    "V9Encoder",
    "aggregate_to_flowset",
    "decode_packet",
    "decode_packets",
    "encode_packet",
    "encode_packets",
]
