"""Template-based NetFlow v9 export (RFC 3954-style).

Where v5 (:mod:`repro.netflow.codec`) has a fixed record layout, v9 is
self-describing: exporters first send **template FlowSets** declaring the
fields and lengths of their records, then **data FlowSets** that can only
be parsed with the matching template.  The consequences this module
models faithfully:

* decoding is **stateful** — a :class:`V9Decoder` caches templates per
  ``(source_id, template_id)`` and must buffer data FlowSets that arrive
  before their template (a real operational failure mode);
* data FlowSets are padded to 32-bit boundaries;
* unknown field types are skipped by length, so exporters can add fields
  without breaking old collectors.

The encoder emits the template for the standard 11-field record used by
this library, re-announcing it every ``template_refresh`` packets (as
real exporters do, since collectors may restart).
"""

from __future__ import annotations

import dataclasses
import ipaddress
import struct
from collections.abc import Iterable, Sequence

from repro.errors import DataError
from repro.netflow.records import FlowKey, NetFlowRecord

#: Wire version.
VERSION = 9
#: FlowSet id carrying templates.
TEMPLATE_FLOWSET_ID = 0
#: Data FlowSet ids must be >= 256.
MIN_TEMPLATE_ID = 256

# IANA field types used by this library's standard template.
IN_BYTES = 1
IN_PKTS = 2
PROTOCOL = 4
L4_SRC_PORT = 7
IPV4_SRC_ADDR = 8
INPUT_SNMP = 10
L4_DST_PORT = 11
IPV4_DST_ADDR = 12
OUTPUT_SNMP = 14
LAST_SWITCHED = 21
FIRST_SWITCHED = 22
SAMPLING_INTERVAL = 34

#: The standard template: (field type, length in bytes).
STANDARD_FIELDS = (
    (IPV4_SRC_ADDR, 4),
    (IPV4_DST_ADDR, 4),
    (L4_SRC_PORT, 2),
    (L4_DST_PORT, 2),
    (PROTOCOL, 1),
    (IN_BYTES, 4),
    (IN_PKTS, 4),
    (FIRST_SWITCHED, 4),
    (LAST_SWITCHED, 4),
    (INPUT_SNMP, 2),
    (OUTPUT_SNMP, 2),
    (SAMPLING_INTERVAL, 4),
)
#: Template id the encoder announces.
STANDARD_TEMPLATE_ID = 260

_HEADER = struct.Struct(">HHIIII")  # version, count, uptime, secs, seq, source


@dataclasses.dataclass(frozen=True)
class Template:
    """A parsed v9 template."""

    template_id: int
    fields: tuple  # of (type, length)

    @property
    def record_length(self) -> int:
        return sum(length for _, length in self.fields)


class V9Encoder:
    """Encodes records from one exporter (``source_id``) into v9 packets."""

    def __init__(
        self,
        source_id: int,
        max_records_per_packet: int = 24,
        template_refresh: int = 20,
    ) -> None:
        if not 0 <= source_id < 2**32:
            raise DataError("source_id must fit in 32 bits")
        if max_records_per_packet < 1:
            raise DataError("max_records_per_packet must be >= 1")
        if template_refresh < 1:
            raise DataError("template_refresh must be >= 1")
        self.source_id = source_id
        self.max_records_per_packet = max_records_per_packet
        self.template_refresh = template_refresh
        self._sequence = 0
        self._packets_since_template = template_refresh  # announce first

    def _template_flowset(self) -> bytes:
        body = struct.pack(
            ">HH", STANDARD_TEMPLATE_ID, len(STANDARD_FIELDS)
        ) + b"".join(
            struct.pack(">HH", ftype, length)
            for ftype, length in STANDARD_FIELDS
        )
        return struct.pack(">HH", TEMPLATE_FLOWSET_ID, 4 + len(body)) + body

    @staticmethod
    def _encode_record(record: NetFlowRecord) -> bytes:
        try:
            src = int(ipaddress.IPv4Address(record.key.src_addr))
            dst = int(ipaddress.IPv4Address(record.key.dst_addr))
        except (ipaddress.AddressValueError, ValueError) as exc:
            raise DataError(f"invalid address in {record.key}") from exc
        for value, what in ((record.octets, "octets"), (record.packets, "packets")):
            if value >= 1 << 32:
                raise DataError(f"{what} exceeds the 32-bit field")
        return struct.pack(
            ">IIHHBIIIIHHI",
            src,
            dst,
            record.key.src_port,
            record.key.dst_port,
            record.key.protocol,
            record.octets,
            record.packets,
            record.first_ms,
            record.last_ms,
            record.input_if & 0xFFFF,
            record.output_if & 0xFFFF,
            record.sampling_interval,
        )

    def encode(self, records: Sequence[NetFlowRecord]) -> "list[bytes]":
        """Encode records into packets, refreshing the template as needed."""
        if not records:
            raise DataError("cannot encode zero records")
        packets = []
        for start in range(0, len(records), self.max_records_per_packet):
            chunk = records[start : start + self.max_records_per_packet]
            flowsets = b""
            count = 0
            if self._packets_since_template >= self.template_refresh:
                flowsets += self._template_flowset()
                count += 1  # the template counts as a record in v9 headers
                self._packets_since_template = 0
            body = b"".join(self._encode_record(r) for r in chunk)
            length = 4 + len(body)
            padding = (-length) % 4
            flowsets += (
                struct.pack(">HH", STANDARD_TEMPLATE_ID, length + padding)
                + body
                + b"\x00" * padding
            )
            count += len(chunk)
            header = _HEADER.pack(
                VERSION, count, 0, 0, self._sequence, self.source_id
            )
            self._sequence += 1
            self._packets_since_template += 1
            packets.append(header + flowsets)
        return packets


class V9Decoder:
    """Stateful v9 collector side: template cache + pending-data buffer.

    Data FlowSets whose template has not been seen yet are buffered and
    decoded as soon as the template arrives (check :meth:`pending_bytes`
    for data that never resolved — a sign the exporter restarted without
    re-announcing).
    """

    def __init__(self, router_of_source: "dict[int, str]") -> None:
        if not router_of_source:
            raise DataError("need at least one source_id -> router mapping")
        self._router_of_source = dict(router_of_source)
        self._templates: dict = {}
        self._pending: dict = {}

    def pending_bytes(self) -> int:
        return sum(len(chunk) for chunks in self._pending.values() for chunk in chunks)

    def decode(self, packet: bytes) -> "list[NetFlowRecord]":
        """Decode one packet; returns all records now decodable."""
        if len(packet) < _HEADER.size:
            raise DataError("packet too short for a v9 header")
        version, _count, _uptime, _secs, _seq, source_id = _HEADER.unpack_from(
            packet, 0
        )
        if version != VERSION:
            raise DataError(f"not a NetFlow v9 packet (version {version})")
        if source_id not in self._router_of_source:
            raise DataError(f"unknown exporter source_id {source_id}")

        produced = []
        offset = _HEADER.size
        while offset + 4 <= len(packet):
            flowset_id, flowset_len = struct.unpack_from(">HH", packet, offset)
            if flowset_len < 4 or offset + flowset_len > len(packet):
                raise DataError("malformed FlowSet length")
            body = packet[offset + 4 : offset + flowset_len]
            offset += flowset_len
            if flowset_id == TEMPLATE_FLOWSET_ID:
                produced.extend(self._ingest_templates(source_id, body))
            elif flowset_id >= MIN_TEMPLATE_ID:
                produced.extend(self._ingest_data(source_id, flowset_id, body))
            # FlowSet ids 1-255 are options/reserved: skipped by length.
        return produced

    def decode_all(self, packets: Iterable[bytes]) -> "list[NetFlowRecord]":
        records = []
        for packet in packets:
            records.extend(self.decode(packet))
        return records

    # ------------------------------------------------------------------

    def _ingest_templates(self, source_id: int, body: bytes) -> "list[NetFlowRecord]":
        produced = []
        offset = 0
        while offset + 4 <= len(body):
            template_id, field_count = struct.unpack_from(">HH", body, offset)
            offset += 4
            if template_id < MIN_TEMPLATE_ID:
                raise DataError(f"template id {template_id} below 256")
            if offset + 4 * field_count > len(body):
                raise DataError("truncated template definition")
            fields = []
            for _ in range(field_count):
                ftype, length = struct.unpack_from(">HH", body, offset)
                offset += 4
                if length == 0:
                    raise DataError("zero-length template field")
                fields.append((ftype, length))
            template = Template(template_id=template_id, fields=tuple(fields))
            self._templates[(source_id, template_id)] = template
            # Drain any data that was waiting for this template.
            for chunk in self._pending.pop((source_id, template_id), []):
                produced.extend(self._decode_data(source_id, template, chunk))
        return produced

    def _ingest_data(
        self, source_id: int, template_id: int, body: bytes
    ) -> "list[NetFlowRecord]":
        template = self._templates.get((source_id, template_id))
        if template is None:
            self._pending.setdefault((source_id, template_id), []).append(body)
            return []
        return self._decode_data(source_id, template, body)

    def _decode_data(
        self, source_id: int, template: Template, body: bytes
    ) -> "list[NetFlowRecord]":
        router = self._router_of_source[source_id]
        records = []
        offset = 0
        record_length = template.record_length
        while offset + record_length <= len(body):
            values: dict = {}
            for ftype, length in template.fields:
                raw = body[offset : offset + length]
                offset += length
                values[ftype] = int.from_bytes(raw, "big")
            records.append(self._record_from_values(values, router))
        # Remaining bytes are the 32-bit padding; all-zero by construction.
        return records

    @staticmethod
    def _record_from_values(values: dict, router: str) -> NetFlowRecord:
        required = (IPV4_SRC_ADDR, IPV4_DST_ADDR, IN_BYTES)
        for ftype in required:
            if ftype not in values:
                raise DataError(f"template lacks required field type {ftype}")
        octets = values[IN_BYTES]
        return NetFlowRecord(
            key=FlowKey(
                src_addr=str(ipaddress.IPv4Address(values[IPV4_SRC_ADDR])),
                dst_addr=str(ipaddress.IPv4Address(values[IPV4_DST_ADDR])),
                src_port=values.get(L4_SRC_PORT, 0),
                dst_port=values.get(L4_DST_PORT, 0),
                protocol=values.get(PROTOCOL, 0),
            ),
            octets=octets,
            packets=values.get(IN_PKTS, 1 if octets else 0),
            first_ms=values.get(FIRST_SWITCHED, 0),
            last_ms=max(
                values.get(LAST_SWITCHED, 0), values.get(FIRST_SWITCHED, 0)
            ),
            router=router,
            input_if=values.get(INPUT_SNMP, 0),
            output_if=values.get(OUTPUT_SNMP, 0),
            sampling_interval=max(1, values.get(SAMPLING_INTERVAL, 1)),
        )
