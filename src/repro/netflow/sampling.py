"""Packet-sampling simulation.

Routers export *sampled* NetFlow: only one packet in ``N`` is inspected,
and counters are scaled back up by ``N`` at analysis time.  The sampler
here turns a true (packets, octets) volume into the counters a sampling
router would have exported, using binomial packet selection, so the rest
of the pipeline can be exercised end-to-end with realistic estimator
noise.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import DataError


@dataclasses.dataclass(frozen=True)
class SampledCounters:
    """Counters as exported by a sampling router."""

    packets: int
    octets: int
    sampling_interval: int


class PacketSampler:
    """Simulates 1-in-N packet sampling.

    Args:
        interval: The sampling interval ``N`` (1 = unsampled).
        rng: Source of randomness; pass a seeded generator for
            reproducible traces.
    """

    def __init__(self, interval: int, rng: np.random.Generator) -> None:
        if interval < 1:
            raise DataError(f"sampling interval must be >= 1, got {interval}")
        self.interval = int(interval)
        self._rng = rng

    def sample(self, packets: int, octets: int) -> SampledCounters:
        """Sample a true volume down to exported counters.

        Packets are selected binomially with probability ``1/N``; octets
        scale with the selected packet fraction (uniform packet sizes are
        assumed within one flow, which is what per-flow mean packet size
        gives us anyway).
        """
        if packets < 0 or octets < 0:
            raise DataError("packets and octets must be non-negative")
        if packets == 0:
            return SampledCounters(packets=0, octets=0, sampling_interval=self.interval)
        if self.interval == 1:
            return SampledCounters(
                packets=packets, octets=octets, sampling_interval=1
            )
        selected = int(self._rng.binomial(packets, 1.0 / self.interval))
        mean_size = octets / packets
        return SampledCounters(
            packets=selected,
            octets=int(round(selected * mean_size)),
            sampling_interval=self.interval,
        )

    def estimate(self, counters: SampledCounters) -> "tuple[int, int]":
        """Invert sampling: estimated (packets, octets)."""
        return (
            counters.packets * counters.sampling_interval,
            counters.octets * counters.sampling_interval,
        )
