"""Customer/provider and peering edges between the generated ASes.

The relationship fabric follows the standard transit hierarchy:

* tier-1 ASes form a full settlement-free peering clique (the connected
  core that guarantees global reachability);
* tier-2 ASes buy transit from one or more tier-1s, preferring
  geographically close providers;
* content ASes buy transit from tier-1/tier-2 providers and peer
  aggressively at IXPs;
* stub ASes buy transit from one or two nearby tier-2s.

Edges within one kind never point "up", so the customer→provider graph
is acyclic by construction — the routing layer still topologically sorts
it rather than assuming so.
"""

from __future__ import annotations

import numpy as np

from repro.ecosystem.base import (
    CONTENT,
    Ecosystem,
    Layer,
    STUB,
    TIER1,
    TIER2,
)
from repro.errors import DataError
from repro.geo.coords import city_distance_miles
from repro.obs import METRICS

#: An AS can join an IXP when one of its cities is within this radius.
IXP_REACH_MILES = 500.0

#: Probability an in-reach AS joins an IXP, by kind.
IXP_JOIN_PROB = {TIER1: 1.0, TIER2: 0.7, CONTENT: 0.9, STUB: 0.15}

#: Peering propensity between two co-located IXP members, by kind pair
#: (scaled by the layer's ``peering_density``).
def _peer_propensity(kind_a: str, kind_b: str) -> float:
    if CONTENT in (kind_a, kind_b):
        return 0.9 if kind_a == kind_b else 0.6
    return 0.3


class Relationships(Layer):
    """The customer/provider/peer edge fabric.

    Args:
        peering_density: Scales the probability of IXP peer edges
            (0 disables IXP peering entirely; the tier-1 clique always
            exists).
        max_providers: Upper bound on transit providers per multihomed
            AS.
    """

    name = "relationships"
    requires = ("base",)

    def __init__(
        self, peering_density: float = 0.5, max_providers: int = 3
    ) -> None:
        if not 0.0 <= peering_density <= 1.0:
            raise DataError(
                f"peering_density must be in [0, 1], got {peering_density}"
            )
        if max_providers < 1:
            raise DataError(f"max_providers must be >= 1, got {max_providers}")
        self.peering_density = float(peering_density)
        self.max_providers = int(max_providers)

    # ------------------------------------------------------------------

    def render(self, eco: Ecosystem, rng: np.random.Generator) -> None:
        tier1 = [a.index for a in eco.ases_of_kind(TIER1)]
        tier2 = [a.index for a in eco.ases_of_kind(TIER2)]
        content = [a.index for a in eco.ases_of_kind(CONTENT)]
        stubs = [a.index for a in eco.ases_of_kind(STUB)]
        if tier2 == [] and (stubs or content):
            # Stubs/content then home directly onto tier-1s.
            tier2_pool = tier1
        else:
            tier2_pool = tier2

        up: "list[tuple[int, int]]" = []
        peer: "set[tuple[int, int]]" = set()

        # 1. The tier-1 clique.
        for i, a in enumerate(tier1):
            for b in tier1[i + 1 :]:
                peer.add((a, b))

        # 2. Transit: every non-tier-1 AS picks providers above it,
        #    proximity-weighted so the hierarchy is geographically
        #    coherent.
        for customer in tier2:
            up.extend(
                (customer, p)
                for p in self._pick_providers(eco, rng, customer, tier1)
            )
        for customer in content:
            pool = sorted(set(tier1) | set(tier2))
            up.extend(
                (customer, p)
                for p in self._pick_providers(eco, rng, customer, pool)
            )
        for customer in stubs:
            up.extend(
                (customer, p)
                for p in self._pick_providers(
                    eco, rng, customer, tier2_pool, cap=2
                )
            )

        up_pairs = set(up)

        # 3. IXP membership and the peering meshes.  Loop order is fixed
        #    (IXPs then AS index) so the draw sequence is deterministic.
        ixps = []
        for ixp in eco.ixps:
            members = []
            for a in eco.ases:
                reach = min(
                    city_distance_miles(city, ixp.city) for city in a.cities
                )
                if reach > IXP_REACH_MILES:
                    continue
                if rng.random() < IXP_JOIN_PROB[a.kind]:
                    members.append(a)
            for m in members:
                ixp = ixp.with_member(m.name)
            ixps.append(ixp)
            mesh = [m for m in members if m.kind != TIER1]
            for i, a in enumerate(mesh):
                for b in mesh[i + 1 :]:
                    lo, hi = min(a.index, b.index), max(a.index, b.index)
                    if (lo, hi) in peer:
                        continue
                    if (lo, hi) in up_pairs or (hi, lo) in up_pairs:
                        continue
                    propensity = self.peering_density * _peer_propensity(
                        a.kind, b.kind
                    )
                    if rng.random() < propensity:
                        peer.add((lo, hi))
        eco.ixps = tuple(ixps)

        up_edges = np.array(sorted(set(up)), dtype=np.int32).reshape(-1, 2)
        peer_edges = np.array(sorted(peer), dtype=np.int32).reshape(-1, 2)
        eco._adopt_edges(up_edges, peer_edges)
        METRICS.incr("ecosystem.up_edges", int(up_edges.shape[0]))
        METRICS.incr("ecosystem.peer_edges", int(peer_edges.shape[0]))

    # ------------------------------------------------------------------

    def _pick_providers(
        self,
        eco: Ecosystem,
        rng: np.random.Generator,
        customer: int,
        pool: "list[int]",
        cap: "int | None" = None,
    ) -> "list[int]":
        """1..max proximity-weighted providers, sampled without replacement."""
        pool = [p for p in pool if p != customer]
        if not pool:
            return []
        limit = min(cap or self.max_providers, self.max_providers, len(pool))
        count = 1 + int(rng.integers(0, limit)) if limit > 1 else 1
        count = min(count, len(pool))
        home = eco.ases[customer].home
        weights = np.array(
            [
                1.0 / (1.0 + city_distance_miles(home, eco.ases[p].home))
                for p in pool
            ]
        )
        weights /= weights.sum()
        picks = rng.choice(len(pool), size=count, replace=False, p=weights)
        return sorted(pool[int(i)] for i in picks)
