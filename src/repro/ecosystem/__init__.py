"""AS-level internet ecosystem generator (multi-AS worlds, end to end).

The package grows seeded miniature internets — tier-1 transit cliques,
regional tier-2s, content networks, stub edge ASes, IXP meshes — routes
them with Gao–Rexford valley-free path selection, and emits per-AS
traffic as flow tables and sampled NetFlow v5, so *every* AS in the
world can run the paper's measure → model → design chain against
emergent (not hand-drawn) demand.

Layered builder idiom::

    from repro.ecosystem import EcosystemSpec, build_ecosystem

    eco = build_ecosystem(EcosystemSpec.from_counts(ases=50, ixps=3))
    eco.tables.summary()            # valley-free routing statistics
    eco.flow_table_for(64512)       # any AS's emergent traffic
"""

from repro.ecosystem.base import (
    AS_KINDS,
    AutonomousSystem,
    BASE_ASN,
    Base,
    CONTENT,
    Ecosystem,
    EcosystemBuilder,
    Layer,
    MAX_ASES,
    STUB,
    TIER1,
    TIER2,
    as_address,
    index_for_address,
)
from repro.ecosystem.pricing import (
    backbone_for,
    composite_key,
    exit_selector_for,
    published_snapshot_for,
    snapshot_tier_price,
    transit_flows_for,
)
from repro.ecosystem.relationships import Relationships
from repro.ecosystem.routing import (
    CLASS_CUSTOMER,
    CLASS_LOCAL,
    CLASS_PEER,
    CLASS_PROVIDER,
    Routing,
    RoutingTables,
    UNREACHABLE,
    compute_routes,
    verify_path_valley_free,
    verify_valley_free,
)
from repro.ecosystem.spec import (
    EcosystemSpec,
    build_ecosystem,
    render_ecosystem,
)
from repro.ecosystem.traffic import (
    Traffic,
    TrafficModel,
    as_table1_row,
    design_for_as,
    measured_flowset_for,
)

__all__ = [
    "AS_KINDS",
    "AutonomousSystem",
    "BASE_ASN",
    "Base",
    "CLASS_CUSTOMER",
    "CLASS_LOCAL",
    "CLASS_PEER",
    "CLASS_PROVIDER",
    "CONTENT",
    "Ecosystem",
    "EcosystemBuilder",
    "EcosystemSpec",
    "Layer",
    "MAX_ASES",
    "Relationships",
    "Routing",
    "RoutingTables",
    "STUB",
    "TIER1",
    "TIER2",
    "Traffic",
    "TrafficModel",
    "UNREACHABLE",
    "as_address",
    "as_table1_row",
    "backbone_for",
    "build_ecosystem",
    "composite_key",
    "compute_routes",
    "design_for_as",
    "exit_selector_for",
    "index_for_address",
    "measured_flowset_for",
    "published_snapshot_for",
    "render_ecosystem",
    "snapshot_tier_price",
    "transit_flows_for",
    "verify_path_valley_free",
    "verify_valley_free",
]
