"""AS taxonomy, the ecosystem container, and the layer-builder API.

The ecosystem generator follows the seed-emulator idiom: a world is
composed by stacking *layers* onto a builder —

* :class:`Base` — the AS population (tier-1/tier-2/stub/content) with
  geographic placement over the :mod:`repro.geo` gazetteer, plus IXP
  sites;
* :class:`~repro.ecosystem.relationships.Relationships` — customer/
  provider and peering edges (tier-1 clique, proximity-weighted transit,
  IXP peering meshes);
* :class:`~repro.ecosystem.routing.Routing` — Gao–Rexford valley-free
  best paths as dense int32 matrices;
* :class:`~repro.ecosystem.traffic.Traffic` — the gravity traffic model
  every AS's :class:`~repro.core.flow.FlowTable` and NetFlow export is
  drawn from.

``EcosystemBuilder(seed).add_layer(...)....render()`` applies the layers
in order (dependencies checked by name) and returns the finished
:class:`Ecosystem`.  Every layer draws from its own seeded RNG stream, so
one seed determines the whole world byte-for-byte.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import DataError, TopologyError
from repro.geo.coords import (
    City,
    EUROPEAN_CITIES,
    US_RESEARCH_CITIES,
    WORLD_CITIES,
)
from repro.obs import METRICS

#: AS kinds, in index-assignment order.
TIER1 = "tier1"
TIER2 = "tier2"
CONTENT = "content"
STUB = "stub"
AS_KINDS = (TIER1, TIER2, CONTENT, STUB)

#: Routers each AS kind exports NetFlow from.
ROUTERS_PER_KIND = {TIER1: 4, TIER2: 2, CONTENT: 1, STUB: 1}

#: First ASN assigned (the 16-bit private range).
BASE_ASN = 64512

#: Largest AS index representable in the ``10.hi.lo.host`` address plan.
MAX_ASES = 65536


def as_address(index: int, host: int) -> str:
    """The deterministic ``10.x.y.z`` address of a host inside one AS.

    Each AS index owns the ``10.(index >> 8).(index & 255).0/24`` prefix,
    so an address maps back to its AS with :func:`index_for_address` —
    the distance/region heuristics the measure chain needs.
    """
    if not 0 <= index < MAX_ASES:
        raise DataError(f"AS index {index} outside the /24 address plan")
    if not 0 <= host <= 255:
        raise DataError(f"host byte {host} out of range")
    return f"10.{(index >> 8) & 0xFF}.{index & 0xFF}.{host}"


def index_for_address(address: str) -> int:
    """Recover the AS index an :func:`as_address` belongs to."""
    parts = address.split(".")
    if len(parts) != 4 or parts[0] != "10":
        raise DataError(f"{address!r} is not an ecosystem 10.x.y.z address")
    try:
        hi, lo = int(parts[1]), int(parts[2])
    except ValueError:
        raise DataError(f"{address!r} is not an ecosystem address") from None
    return (hi << 8) | lo


@dataclasses.dataclass(frozen=True)
class AutonomousSystem:
    """One AS: number, kind, and its geographic footprint.

    Attributes:
        index: Dense 0-based index (row/column in the routing matrices).
        asn: AS number (``BASE_ASN + index``).
        kind: One of :data:`AS_KINDS`.
        cities: Presence cities, home city first.
    """

    index: int
    asn: int
    kind: str
    cities: "tuple[City, ...]"

    def __post_init__(self) -> None:
        if self.kind not in AS_KINDS:
            raise DataError(
                f"unknown AS kind {self.kind!r}; expected one of {AS_KINDS}"
            )
        if not self.cities:
            raise DataError(f"AS {self.asn} needs at least one city")

    @property
    def name(self) -> str:
        return f"as{self.asn}"

    @property
    def home(self) -> City:
        return self.cities[0]

    @property
    def routers(self) -> "tuple[str, ...]":
        return tuple(
            f"{self.name}-r{i}" for i in range(ROUTERS_PER_KIND[self.kind])
        )

    def address(self, host: int) -> str:
        return as_address(self.index, host)


class Ecosystem:
    """A rendered multi-AS world.

    Populated layer by layer: :class:`Base` fills ``ases``/``ixps``,
    ``Relationships`` the edge arrays, ``Routing`` the ``tables``, and
    ``Traffic`` the ``traffic`` model.  After ``render()`` returns the
    object is treated as immutable.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.spec = None  # set by spec.build_ecosystem
        self.ases: "tuple[AutonomousSystem, ...]" = ()
        self.ixps: tuple = ()
        #: (E, 2) int32 rows of (customer index, provider index).
        self.up_edges = np.empty((0, 2), dtype=np.int32)
        #: (P, 2) int32 rows of (a, b) with a < b.
        self.peer_edges = np.empty((0, 2), dtype=np.int32)
        self.tables = None  # RoutingTables, set by the Routing layer
        self.traffic = None  # TrafficModel, set by the Traffic layer
        self._by_asn: dict = {}
        self._up_set: set = set()
        self._peer_set: set = set()

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------

    def _adopt_ases(self, ases: "list[AutonomousSystem]") -> None:
        self.ases = tuple(ases)
        self._by_asn = {a.asn: a for a in self.ases}

    def _adopt_edges(
        self, up_edges: np.ndarray, peer_edges: np.ndarray
    ) -> None:
        self.up_edges = up_edges
        self.peer_edges = peer_edges
        self._up_set = {(int(c), int(p)) for c, p in up_edges}
        self._peer_set = set()
        for a, b in peer_edges:
            self._peer_set.add((int(a), int(b)))
            self._peer_set.add((int(b), int(a)))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @property
    def n_ases(self) -> int:
        return len(self.ases)

    def as_by_asn(self, asn: int) -> AutonomousSystem:
        try:
            return self._by_asn[asn]
        except KeyError as exc:
            raise TopologyError(f"no AS {asn} in this ecosystem") from exc

    def ases_of_kind(self, kind: str) -> "list[AutonomousSystem]":
        if kind not in AS_KINDS:
            raise DataError(
                f"unknown AS kind {kind!r}; expected one of {AS_KINDS}"
            )
        return [a for a in self.ases if a.kind == kind]

    def relationship(self, a: int, b: int) -> "str | None":
        """Edge class between two AS indices: up/down/peer, or ``None``.

        ``"up"`` means ``a`` is a customer of ``b`` (traffic from ``a``
        to ``b`` climbs the hierarchy); ``"down"`` the reverse.
        """
        if (a, b) in self._up_set:
            return "up"
        if (b, a) in self._up_set:
            return "down"
        if (a, b) in self._peer_set:
            return "peer"
        return None

    def router_names(self) -> "list[str]":
        """Every router in the world, in deterministic AS-index order."""
        return [r for a in self.ases for r in a.routers]

    def engine_map(self):
        """The NetFlow engine mapping covering every router."""
        from repro.netflow.codec import EngineMap

        return EngineMap(self.router_names())

    # ------------------------------------------------------------------
    # Traffic delegation (filled in by the Traffic layer)
    # ------------------------------------------------------------------

    def _traffic_model(self):
        if self.traffic is None:
            raise TopologyError(
                "ecosystem has no traffic model; add a Traffic layer"
            )
        return self.traffic

    def flow_table_for(self, asn: int):
        """The AS's deterministic per-destination :class:`FlowTable`."""
        return self._traffic_model().flow_table(self, self.as_by_asn(asn).index)

    def netflow_records_for(self, asn: int) -> list:
        """The AS's NetFlow v5 export of its flow table."""
        return self._traffic_model().netflow_records(
            self, self.as_by_asn(asn).index
        )

    # ------------------------------------------------------------------

    def summary(self) -> dict:
        """Deterministic shape/route statistics (the CLI report)."""
        counts = {kind: len(self.ases_of_kind(kind)) for kind in AS_KINDS}
        out = {
            "ases": self.n_ases,
            "kinds": counts,
            "ixps": len(self.ixps),
            "up_edges": int(self.up_edges.shape[0]),
            "peer_edges": int(self.peer_edges.shape[0]),
            "routers": len(self.router_names()),
        }
        if self.tables is not None:
            out["routing"] = self.tables.summary()
        return out


# ----------------------------------------------------------------------
# Layers
# ----------------------------------------------------------------------


class Layer:
    """One composable build step; subclasses fill in a slice of the world."""

    #: Unique layer name (dependency vocabulary).
    name = "layer"
    #: Names of layers that must render before this one.
    requires: "tuple[str, ...]" = ()

    def render(self, eco: Ecosystem, rng: np.random.Generator) -> None:
        raise NotImplementedError


def _layer_seed(seed: int, position: int, name: str) -> np.random.SeedSequence:
    """Each layer draws from its own stream: one world seed, no coupling."""
    name_code = sum(ord(ch) * (31**i) for i, ch in enumerate(name)) % (2**31)
    return np.random.SeedSequence(entropy=(seed, position, name_code))


def _city_pool() -> "tuple[City, ...]":
    """The full gazetteer, deduplicated by key, in stable order."""
    pool: "dict[str, City]" = {}
    for table in (WORLD_CITIES, EUROPEAN_CITIES, US_RESEARCH_CITIES):
        for city in table:
            pool.setdefault(city.key, city)
    return tuple(pool.values())


#: Presence-city count by kind: (minimum, maximum) inclusive.
_CITIES_PER_KIND = {TIER1: (4, 7), TIER2: (2, 4), CONTENT: (2, 4), STUB: (1, 1)}


class Base(Layer):
    """The AS population and IXP sites.

    Args:
        n_tier1: Transit-free backbone ASes (full peering clique).
        n_tier2: Regional transit ASes.
        n_stub: Single-homed or dual-homed edge ASes.
        n_content: Content/CDN ASes (traffic-heavy, peer aggressively).
        n_ixps: Internet-exchange sites, placed in the most popular
            presence cities.
    """

    name = "base"

    def __init__(
        self,
        n_tier1: int = 4,
        n_tier2: int = 12,
        n_stub: int = 30,
        n_content: int = 4,
        n_ixps: int = 3,
    ) -> None:
        for label, value in (
            ("n_tier1", n_tier1),
            ("n_tier2", n_tier2),
            ("n_stub", n_stub),
            ("n_content", n_content),
            ("n_ixps", n_ixps),
        ):
            if value < 0:
                raise DataError(f"{label} must be >= 0, got {value}")
        if n_tier1 < 1:
            raise DataError("need at least one tier-1 AS")
        total = n_tier1 + n_tier2 + n_stub + n_content
        if total > MAX_ASES:
            raise DataError(
                f"{total} ASes exceed the address plan's {MAX_ASES}"
            )
        self.n_tier1 = n_tier1
        self.n_tier2 = n_tier2
        self.n_stub = n_stub
        self.n_content = n_content
        self.n_ixps = n_ixps

    def render(self, eco: Ecosystem, rng: np.random.Generator) -> None:
        pool = _city_pool()
        counts = (
            (TIER1, self.n_tier1),
            (TIER2, self.n_tier2),
            (CONTENT, self.n_content),
            (STUB, self.n_stub),
        )
        ases: "list[AutonomousSystem]" = []
        index = 0
        for kind, count in counts:
            lo, hi = _CITIES_PER_KIND[kind]
            for _ in range(count):
                n_cities = min(len(pool), int(rng.integers(lo, hi + 1)))
                picks = rng.choice(len(pool), size=n_cities, replace=False)
                cities = tuple(pool[int(i)] for i in picks)
                ases.append(
                    AutonomousSystem(
                        index=index,
                        asn=BASE_ASN + index,
                        kind=kind,
                        cities=cities,
                    )
                )
                index += 1
        eco._adopt_ases(ases)

        # IXPs go where the presence mass is: rank cities by how many
        # ASes touch them (ties broken by key for determinism).
        from repro.topology.ixp import IXP

        popularity: "dict[str, int]" = {}
        by_key = {c.key: c for c in pool}
        for a in ases:
            for city in a.cities:
                popularity[city.key] = popularity.get(city.key, 0) + 1
        ranked = sorted(popularity, key=lambda k: (-popularity[k], k))
        sites = ranked[: self.n_ixps]
        eco.ixps = tuple(
            IXP(name=f"ix{i}-{key}", city=by_key[key])
            for i, key in enumerate(sites)
        )
        METRICS.incr("ecosystem.ases", len(ases))


class EcosystemBuilder:
    """Composes layers into a world (the seed-emulator builder idiom)."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._layers: "list[Layer]" = []

    def add_layer(self, layer: Layer) -> "EcosystemBuilder":
        """Append a layer; names must be unique.  Returns ``self``."""
        if any(existing.name == layer.name for existing in self._layers):
            raise DataError(f"duplicate layer {layer.name!r}")
        self._layers.append(layer)
        return self

    @property
    def layer_names(self) -> "tuple[str, ...]":
        return tuple(layer.name for layer in self._layers)

    def render(self) -> Ecosystem:
        """Apply the layers in order; dependencies are checked by name."""
        from repro import obs

        if not self._layers:
            raise DataError("no layers to render")
        eco = Ecosystem(seed=self.seed)
        seen: "set[str]" = set()
        for position, layer in enumerate(self._layers):
            missing = [req for req in layer.requires if req not in seen]
            if missing:
                raise DataError(
                    f"layer {layer.name!r} requires {missing} to render "
                    f"first; have {sorted(seen)}"
                )
            rng = np.random.default_rng(
                _layer_seed(self.seed, position, layer.name)
            )
            with obs.span(f"ecosystem.{layer.name}", seed=self.seed):
                layer.render(eco, rng)
            seen.add(layer.name)
        return eco
