"""Gao–Rexford valley-free interdomain routing over the relationship graph.

Route selection follows the classic export rules:

* a route learned from a **customer** is exported to everyone;
* a route learned from a **peer** or **provider** is exported only to
  customers;

so every best path is *valley-free*: zero or more customer→provider
("up") edges, at most one peer edge, then zero or more provider→customer
("down") edges.  Preference is by route class — customer > peer >
provider, regardless of length — then shortest AS-path, then lowest
next-hop index (the deterministic tie-break).

The computation is columnar: three dense ``int32`` length matrices
(customer-learned, peer-learned, provider-learned) built with per-node
vector row updates over the topologically sorted customer→provider DAG —
``O(edges)`` numpy operations of length N, no per-pair Python.  The
result is a :class:`RoutingTables` of ``path_len``/``next_hop``/
``route_class`` matrices, which is all the traffic and pricing layers
ever touch.
"""

from __future__ import annotations

import dataclasses
import heapq

import numpy as np

from repro.ecosystem.base import Ecosystem, Layer
from repro.errors import TopologyError
from repro.obs import METRICS

#: Route-class codes in the ``route_class`` matrix.
CLASS_LOCAL = 0
CLASS_CUSTOMER = 1
CLASS_PEER = 2
CLASS_PROVIDER = 3
#: ``path_len``/``next_hop``/``route_class`` value for "no route".
UNREACHABLE = -1

#: Internal infinity; small enough that +1 hops never overflow int32.
_INF = np.int32(2**30)


@dataclasses.dataclass(frozen=True)
class RoutingTables:
    """Dense all-pairs valley-free routing state.

    Attributes:
        path_len: ``int32 (N, N)`` AS-path hop count;
            :data:`UNREACHABLE` where no valley-free route exists.
        next_hop: ``int32 (N, N)`` first hop of the selected route (the
            diagonal points at itself); :data:`UNREACHABLE` for no route.
        route_class: ``int8 (N, N)`` class of the selected route
            (:data:`CLASS_LOCAL`/:data:`CLASS_CUSTOMER`/
            :data:`CLASS_PEER`/:data:`CLASS_PROVIDER`), or
            :data:`UNREACHABLE`.
    """

    path_len: np.ndarray
    next_hop: np.ndarray
    route_class: np.ndarray

    @property
    def n_ases(self) -> int:
        return int(self.path_len.shape[0])

    def path(self, src: int, dst: int) -> "list[int]":
        """The selected AS-level path, reconstructed hop by hop."""
        n = self.n_ases
        if not (0 <= src < n and 0 <= dst < n):
            raise TopologyError(f"AS index out of range: {src}->{dst}")
        if src != dst and self.path_len[src, dst] == UNREACHABLE:
            raise TopologyError(f"no valley-free route {src}->{dst}")
        node = src
        hops = [src]
        while node != dst:
            node = int(self.next_hop[node, dst])
            hops.append(node)
            if len(hops) > n:
                raise TopologyError(
                    f"routing loop reconstructing {src}->{dst}"
                )
        return hops

    def reachable_fraction(self) -> float:
        """Fraction of ordered off-diagonal pairs with a route."""
        n = self.n_ases
        if n < 2:
            return 1.0
        reachable = int(np.count_nonzero(self.path_len >= 0)) - n
        return reachable / (n * (n - 1))

    def summary(self) -> dict:
        """Deterministic route statistics for reports and the CLI."""
        off = ~np.eye(self.n_ases, dtype=bool)
        routed = off & (self.path_len >= 0)
        lens = self.path_len[routed]
        classes = self.route_class[routed]
        return {
            "reachable_fraction": round(self.reachable_fraction(), 6),
            "mean_path_len": round(float(lens.mean()), 4) if lens.size else 0.0,
            "max_path_len": int(lens.max()) if lens.size else 0,
            "class_mix": {
                "customer": int(np.count_nonzero(classes == CLASS_CUSTOMER)),
                "peer": int(np.count_nonzero(classes == CLASS_PEER)),
                "provider": int(np.count_nonzero(classes == CLASS_PROVIDER)),
            },
        }


def _topological_order(n: int, up_edges: np.ndarray) -> "list[int]":
    """Kahn's algorithm over customer→provider edges, lowest index first.

    Returns an order where every customer appears before each of its
    providers; raises if the up-edge graph has a cycle (the generator
    never builds one, but hand-built worlds might).
    """
    providers_of: "list[list[int]]" = [[] for _ in range(n)]
    indegree = [0] * n
    for c, p in up_edges:
        providers_of[int(c)].append(int(p))
        indegree[int(p)] += 1
    ready = [v for v in range(n) if indegree[v] == 0]
    heapq.heapify(ready)
    order = []
    while ready:
        v = heapq.heappop(ready)
        order.append(v)
        for p in providers_of[v]:
            indegree[p] -= 1
            if indegree[p] == 0:
                heapq.heappush(ready, p)
    if len(order) != n:
        raise TopologyError(
            "customer->provider relationships contain a cycle"
        )
    return order


def compute_routes(
    n: int, up_edges: np.ndarray, peer_edges: np.ndarray
) -> RoutingTables:
    """All-pairs valley-free best routes for one relationship graph.

    Three sweeps, each a sequence of length-``n`` vector row updates:

    1. **customer-learned** routes propagate up the hierarchy (nodes in
       topological order, every customer finalized before its provider);
    2. **peer-learned** routes are one exchange of customer routes
       across each peer edge;
    3. **provider-learned** routes propagate back down (reverse order),
       where each node inherits its provider's *selected* route — which
       is exactly what providers export to customers.
    """
    customers_of: "list[list[int]]" = [[] for _ in range(n)]
    providers_of: "list[list[int]]" = [[] for _ in range(n)]
    peers_of: "list[list[int]]" = [[] for _ in range(n)]
    for c, p in up_edges:
        customers_of[int(p)].append(int(c))
        providers_of[int(c)].append(int(p))
    for a, b in peer_edges:
        peers_of[int(a)].append(int(b))
        peers_of[int(b)].append(int(a))
    for adjacency in (customers_of, providers_of, peers_of):
        for neighbors in adjacency:
            neighbors.sort()

    order = _topological_order(n, up_edges)
    one = np.int32(1)

    # Sweep 1: customer-learned routes, leaves -> roots.
    cust_len = np.full((n, n), _INF, dtype=np.int32)
    np.fill_diagonal(cust_len, 0)
    cust_nh = np.full((n, n), UNREACHABLE, dtype=np.int32)
    np.fill_diagonal(cust_nh, np.arange(n, dtype=np.int32))
    for v in order:
        row_len = cust_len[v]
        row_nh = cust_nh[v]
        for c in customers_of[v]:
            candidate = cust_len[c] + one
            better = candidate < row_len
            if better.any():
                row_len[better] = candidate[better]
                row_nh[better] = c

    # Sweep 2: peers exchange customer routes only.
    peer_len = np.full((n, n), _INF, dtype=np.int32)
    peer_nh = np.full((n, n), UNREACHABLE, dtype=np.int32)
    for v in range(n):
        row_len = peer_len[v]
        row_nh = peer_nh[v]
        for u in peers_of[v]:
            candidate = cust_len[u] + one
            better = candidate < row_len
            if better.any():
                row_len[better] = candidate[better]
                row_nh[better] = u

    # Sweep 3: selection + provider-learned routes, roots -> leaves.
    # A node's selected route (customer > peer > provider, then length,
    # then the update order's lowest-index tie-break) is what it exports
    # to customers, so providers must select before their customers can
    # inherit.
    sel_len = np.empty((n, n), dtype=np.int32)
    sel_nh = np.empty((n, n), dtype=np.int32)
    sel_cls = np.empty((n, n), dtype=np.int8)
    prov_len = np.full((n, n), _INF, dtype=np.int32)
    prov_nh = np.full((n, n), UNREACHABLE, dtype=np.int32)
    for v in reversed(order):
        p_len = prov_len[v]
        p_nh = prov_nh[v]
        for p in providers_of[v]:
            candidate = sel_len[p] + one
            better = candidate < p_len
            if better.any():
                p_len[better] = candidate[better]
                p_nh[better] = p
        row_len = cust_len[v].copy()
        row_nh = cust_nh[v].copy()
        row_cls = np.where(
            row_len < _INF, CLASS_CUSTOMER, UNREACHABLE
        ).astype(np.int8)
        use = (row_len >= _INF) & (peer_len[v] < _INF)
        row_len[use] = peer_len[v][use]
        row_nh[use] = peer_nh[v][use]
        row_cls[use] = CLASS_PEER
        use = (row_cls == UNREACHABLE) & (p_len < _INF)
        row_len[use] = p_len[use]
        row_nh[use] = p_nh[use]
        row_cls[use] = CLASS_PROVIDER
        row_cls[v] = CLASS_LOCAL
        sel_len[v] = row_len
        sel_nh[v] = row_nh
        sel_cls[v] = row_cls

    path_len = np.where(sel_len >= _INF, UNREACHABLE, sel_len).astype(np.int32)
    for matrix in (path_len, sel_nh, sel_cls):
        matrix.setflags(write=False)
    return RoutingTables(
        path_len=path_len, next_hop=sel_nh, route_class=sel_cls
    )


class Routing(Layer):
    """The layer wrapper around :func:`compute_routes`."""

    name = "routing"
    requires = ("base", "relationships")

    def render(self, eco: Ecosystem, rng: np.random.Generator) -> None:
        del rng  # routing is a pure function of the relationship graph
        eco.tables = compute_routes(
            eco.n_ases, eco.up_edges, eco.peer_edges
        )
        METRICS.incr(
            "ecosystem.routed_pairs",
            int(np.count_nonzero(eco.tables.path_len >= 0)),
        )


# ----------------------------------------------------------------------
# Verification
# ----------------------------------------------------------------------


def verify_path_valley_free(eco: Ecosystem, hops: "list[int]") -> None:
    """Assert one AS path has the up* peer? down* Gao–Rexford shape.

    Raises :class:`~repro.errors.TopologyError` naming the offending edge
    if a route climbs to a provider after a peer or provider edge, or
    crosses a second peering link.
    """
    phase = "up"  # up -> peered -> down
    for a, b in zip(hops, hops[1:]):
        kind = eco.relationship(a, b)
        if kind is None:
            raise TopologyError(f"{a}->{b} is not an edge of the ecosystem")
        if kind == "up":
            if phase != "up":
                raise TopologyError(
                    f"valley: {a}->{b} climbs to a provider after a "
                    f"peer/provider edge in {hops}"
                )
        elif kind == "peer":
            if phase != "up":
                raise TopologyError(
                    f"second peering edge {a}->{b} in {hops}"
                )
            phase = "peered"
        else:  # down
            phase = "down"


def verify_valley_free(eco: Ecosystem, max_pairs: int = 1000) -> int:
    """Reconstruct and check a deterministic sample of routed pairs.

    Returns the number of paths checked.  Worlds small enough are checked
    exhaustively; larger ones sample ``max_pairs`` pairs from a seeded
    RNG so the same world always checks the same pairs.
    """
    if eco.tables is None:
        raise TopologyError("ecosystem has no routes; add a Routing layer")
    n = eco.n_ases
    tables = eco.tables
    pairs: "list[tuple[int, int]]" = []
    if n * (n - 1) <= max_pairs:
        pairs = [(s, d) for s in range(n) for d in range(n) if s != d]
    else:
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=(eco.seed, 0x76657269))
        )
        while len(pairs) < max_pairs:
            s, d = (int(x) for x in rng.integers(0, n, size=2))
            if s != d:
                pairs.append((s, d))
    checked = 0
    for s, d in pairs:
        if tables.path_len[s, d] == UNREACHABLE:
            continue
        hops = tables.path(s, d)
        if len(hops) - 1 != int(tables.path_len[s, d]):
            raise TopologyError(
                f"path {s}->{d} reconstructs to {len(hops) - 1} hops but "
                f"path_len says {int(tables.path_len[s, d])}"
            )
        verify_path_valley_free(eco, hops)
        checked += 1
    return checked
