"""Per-AS traffic: gravity-model FlowTables and NetFlow v5 emission.

Every AS sources a gravity-shaped traffic matrix toward every other AS:
its total egress scales with its kind (content ASes are heavy sources)
and a per-AS lognormal size factor; per-destination demand splits by the
destinations' attraction weights with seeded jitter.  Distances are the
routing layer's valley-free hop counts times a per-region hop length
(metro/national/international classified from the endpoint home cities),
so demand *and* cost structure both emerge from the generated ecosystem.

The same flows export as NetFlow v5: each AS's routers emit sampled
records over its ``10.x.y.0/24`` address plan, which round-trip through
the binary codec, the deduplicating collector, and
:func:`~repro.netflow.aggregation.aggregate_to_flowset` — the full
measure chain — before :func:`design_for_as` calibrates a market and
designs tiers on the result.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.flow import FlowTable, REGION_CODE
from repro.ecosystem.base import (
    CONTENT,
    Ecosystem,
    Layer,
    STUB,
    TIER1,
    TIER2,
    index_for_address,
)
from repro.errors import DataError, TopologyError
from repro.geo.regions import classify_by_endpoints
from repro.obs import METRICS
from repro import obs

#: Base egress per AS kind, Mbps (scaled by the per-AS size factor).
BASE_MBPS = {TIER1: 8000.0, TIER2: 3000.0, CONTENT: 20000.0, STUB: 500.0}

#: Gravity attraction per destination kind.
ATTRACTION = {TIER1: 2.0, TIER2: 1.5, CONTENT: 4.0, STUB: 1.0}

#: Miles one valley-free AS hop represents, by endpoint region class.
HOP_MILES = {"metro": 40.0, "national": 250.0, "international": 1200.0}

#: Mean packet size for deriving packet counts from octets.
_MEAN_PACKET_BYTES = 800

_TCP = 6
_HTTPS_PORT = 443


@dataclasses.dataclass(frozen=True)
class TrafficModel:
    """Frozen per-AS traffic parameters; tables generate on demand.

    Flow tables are *derived*, not stored: ``flow_table(eco, index)``
    redraws AS ``index``'s rows from a stream seeded by (world seed, AS
    index), so any of a million ASes' tables materializes independently
    and two renders of the same world are byte-identical.
    """

    seed: int
    window_seconds: float
    sampling_interval: int
    scale: float
    size_factor: np.ndarray  # per-AS lognormal egress multiplier
    attraction: np.ndarray  # per-AS gravity weight (kind x size factor)

    # ------------------------------------------------------------------

    def _hop_distances(
        self, eco: Ecosystem, src: int, dests: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """(distance miles, region codes) for one source's destinations."""
        lens = eco.tables.path_len[src, dests].astype(float)
        if lens.min() < 0:
            unreachable = int(dests[int(np.argmin(lens))])
            raise TopologyError(
                f"AS index {src} has no valley-free route to {unreachable}"
            )
        home = eco.ases[src].home
        regions = np.array(
            [
                REGION_CODE[classify_by_endpoints(home, eco.ases[int(d)].home)]
                for d in dests
            ],
            dtype=np.int32,
        )
        hop_miles = np.array(
            [HOP_MILES[label] for label in REGION_CODE], dtype=float
        )[regions]
        return lens * hop_miles, regions

    def distance_between(self, eco: Ecosystem, src: int, dst: int) -> float:
        """The hop-count x region-hop-miles distance for one pair."""
        miles, _ = self._hop_distances(eco, src, np.array([dst]))
        return float(miles[0])

    def flow_table(self, eco: Ecosystem, index: int) -> FlowTable:
        """AS ``index``'s per-destination demand table (deterministic)."""
        n = eco.n_ases
        if n < 2:
            raise DataError("traffic needs at least two ASes")
        source = eco.ases[index]
        dests = np.array(
            [d for d in range(n) if d != index], dtype=np.int64
        )
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=(self.seed, 0x7472, index))
        )
        weights = self.attraction[dests] * np.exp(
            rng.normal(0.0, 0.35, size=dests.size)
        )
        total_mbps = (
            BASE_MBPS[source.kind] * float(self.size_factor[index]) * self.scale
        )
        demands = total_mbps * weights / weights.sum()
        distances, region_codes = self._hop_distances(eco, index, dests)
        names = tuple(eco.ases[int(d)].name for d in dests)
        demands.setflags(write=False)
        distances.setflags(write=False)
        return FlowTable.from_columns(
            demands,
            distances,
            region_codes=region_codes,
            src_codes=np.zeros(dests.size, dtype=np.int32),
            src_table=(source.name,),
            dst_codes=np.arange(dests.size, dtype=np.int32),
            dst_table=names,
            validate=False,
        )

    # ------------------------------------------------------------------
    # NetFlow emission
    # ------------------------------------------------------------------

    def netflow_records(self, eco: Ecosystem, index: int) -> list:
        """Sampled NetFlow v5 records for AS ``index``'s flow table.

        Each flow becomes one record on one of the AS's routers
        (round-robin), with endpoint addresses drawn from the source and
        destination ASes' ``10.x.y.0/24`` plans, deterministic 1-in-N
        thinning, and counters kept under the 32-bit wire fields.
        """
        from repro.netflow.records import FlowKey, NetFlowRecord

        table = self.flow_table(eco, index)
        source = eco.ases[index]
        routers = source.routers
        dests = [d for d in range(eco.n_ases) if d != index]
        window_ms = int(self.window_seconds * 1000)
        records = []
        for i, (demand, d) in enumerate(zip(table.demands, dests)):
            true_octets = int(float(demand) * 1e6 / 8.0 * self.window_seconds)
            octets = max(1, true_octets // self.sampling_interval)
            packets = max(1, octets // _MEAN_PACKET_BYTES)
            records.append(
                NetFlowRecord(
                    key=FlowKey(
                        src_addr=source.address(2 + (i % 250)),
                        dst_addr=eco.ases[d].address(1),
                        src_port=1024 + (i % 50000),
                        dst_port=_HTTPS_PORT,
                        protocol=_TCP,
                    ),
                    octets=octets,
                    packets=packets,
                    first_ms=0,
                    last_ms=window_ms - 1,
                    router=routers[i % len(routers)],
                    input_if=0,
                    output_if=1,
                    sampling_interval=self.sampling_interval,
                )
            )
        METRICS.incr("ecosystem.netflow_records", len(records))
        return records


class Traffic(Layer):
    """The layer that fits the world's :class:`TrafficModel`.

    Args:
        window_seconds: Capture-window length the NetFlow export covers.
        sampling_interval: Routers export 1-in-N (keeps big content
            flows' sampled counters under the 32-bit wire field).
        scale: Global multiplier on every AS's egress.
    """

    name = "traffic"
    requires = ("base", "relationships", "routing")

    def __init__(
        self,
        window_seconds: float = 120.0,
        sampling_interval: int = 500,
        scale: float = 1.0,
    ) -> None:
        if window_seconds <= 0:
            raise DataError(
                f"window_seconds must be positive, got {window_seconds}"
            )
        if sampling_interval < 1:
            raise DataError(
                f"sampling_interval must be >= 1, got {sampling_interval}"
            )
        if scale <= 0:
            raise DataError(f"scale must be positive, got {scale}")
        self.window_seconds = float(window_seconds)
        self.sampling_interval = int(sampling_interval)
        self.scale = float(scale)

    def render(self, eco: Ecosystem, rng: np.random.Generator) -> None:
        n = eco.n_ases
        size_factor = np.exp(rng.normal(0.0, 0.5, size=n))
        attraction = np.array(
            [ATTRACTION[a.kind] for a in eco.ases]
        ) * size_factor
        size_factor.setflags(write=False)
        attraction.setflags(write=False)
        eco.traffic = TrafficModel(
            seed=eco.seed,
            window_seconds=self.window_seconds,
            sampling_interval=self.sampling_interval,
            scale=self.scale,
            size_factor=size_factor,
            attraction=attraction,
        )


# ----------------------------------------------------------------------
# The measure -> model -> design chain for one AS
# ----------------------------------------------------------------------


def measured_flowset_for(
    eco: Ecosystem, asn: int, through_wire: bool = True
) -> FlowTable:
    """Re-measure one AS's traffic the way an operator would.

    Export the AS's NetFlow, optionally round-trip it through the binary
    v5 codec (``through_wire``), ingest into the deduplicating collector,
    and aggregate back to a flow set with the ecosystem's own
    distance/region heuristics (destination address → AS index → hop
    distance).  Sampling means recovered demands differ from the ground
    truth by quantization only.
    """
    from repro.netflow.aggregation import aggregate_to_flowset
    from repro.netflow.codec import decode_packets, encode_packets
    from repro.netflow.collector import FlowCollector

    model = eco._traffic_model()
    eco.as_by_asn(asn)  # fail fast on unknown ASNs
    with obs.span("ecosystem.emit", asn=asn, wire=through_wire):
        records = eco.netflow_records_for(asn)
        if through_wire:
            engines = eco.engine_map()
            records = decode_packets(encode_packets(records, engines), engines)
        collector = FlowCollector()
        collector.ingest_many(records)

        def distance_fn(key) -> float:
            return model.distance_between(
                eco, index_for_address(key.src_addr), index_for_address(key.dst_addr)
            )

        def region_fn(key) -> str:
            src = eco.ases[index_for_address(key.src_addr)]
            dst = eco.ases[index_for_address(key.dst_addr)]
            return classify_by_endpoints(src.home, dst.home)

        flows = aggregate_to_flowset(
            collector,
            window_seconds=model.window_seconds,
            distance_fn=distance_fn,
            region_fn=region_fn,
        )
    return flows


def design_for_as(
    eco: Ecosystem,
    asn: int,
    n_tiers: int = 3,
    family: str = "ced",
    alpha: float = 1.1,
    theta: float = 0.2,
    blended_rate: float = 20.0,
    through_wire: bool = True,
    mechanism=None,
) -> dict:
    """Measure -> model -> design for one AS of the ecosystem.

    Returns a plain-data summary (floats/ints/strings only)::

        {"asn", "kind", "n_flows", "aggregate_gbps", "profit_capture",
         "tier_prices", "tier_flows"}

    ``mechanism`` selects a :mod:`repro.mechanisms` pricing mechanism —
    a :class:`~repro.mechanisms.Mechanism` instance or registry name.
    The default (``None`` / posted-tiers) keeps the summary byte-
    identical to the pre-mechanism output; any other mechanism prices
    the AS's traffic through the seam and adds a ``"mechanism"`` key.
    """
    from repro.core.bundling import ProfitWeightedBundling
    from repro.core.ced import CEDDemand
    from repro.core.cost import LinearDistanceCost
    from repro.core.logit import LogitDemand
    from repro.core.market import Market

    if isinstance(mechanism, str):
        from repro.mechanisms import mechanism_by_name

        mechanism = mechanism_by_name(mechanism, n_tiers=n_tiers)
    if mechanism is not None and mechanism.name == "posted-tiers":
        mechanism = None  # the default path *is* posted tiers

    source = eco.as_by_asn(asn)
    flows = measured_flowset_for(eco, asn, through_wire=through_wire)
    if family == "ced":
        demand = CEDDemand(alpha=alpha)
    elif family == "logit":
        demand = LogitDemand(alpha=alpha, s0=0.2)
    else:
        raise DataError(
            f"unknown demand family {family!r}; use 'ced' or 'logit'"
        )
    with obs.span("ecosystem.design", asn=asn, n_tiers=n_tiers):
        market = Market(
            flows,
            demand,
            LinearDistanceCost(theta=theta),
            blended_rate=blended_rate,
        )
        if mechanism is None:
            outcome = market.tiered_outcome(ProfitWeightedBundling(), n_tiers)
        else:
            outcome = mechanism.design_on(market)
    summary = {
        "asn": int(asn),
        "kind": source.kind,
        "n_flows": len(flows),
        "aggregate_gbps": round(flows.aggregate_gbps(), 4),
        "profit_capture": round(outcome.profit_capture, 6),
        "tier_prices": [round(t.price, 4) for t in outcome.tiers],
        "tier_flows": [int(t.n_flows) for t in outcome.tiers],
    }
    if mechanism is not None:
        summary["mechanism"] = mechanism.name
    return summary


def as_table1_row(eco: Ecosystem, asn: int) -> dict:
    """The paper's Table 1 statistics for one AS's emergent traffic."""
    source = eco.as_by_asn(asn)
    measured = eco.flow_table_for(asn).table1_row()
    return {"as": source.name, "kind": source.kind, "measured": measured}
