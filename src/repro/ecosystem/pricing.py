"""Tier pricing over ecosystem paths: snapshots, backbones, exit choice.

This is the paper's deployment loop closed over a generated world.  A
provider AS publishes a :class:`~repro.serve.snapshot.PricingSnapshot`
whose destinations are composite ``"<exit city>|<destination AS>"`` keys
— the provider's price depends on *where* the customer hands traffic
off, which is exactly the signal §5.1's tier-tagged routes carry.  A
customer AS turns its own city footprint into a
:class:`~repro.topology.network.Topology` backbone, wraps the provider's
snapshot into a :class:`~repro.topology.routing.TierPriceFn`, and lets
:class:`~repro.topology.routing.ExitSelector` trade backbone miles
against tier prices per flow.  Tier-aware exit selection beats
hot-potato whenever the provider's rate card actually varies by exit —
which these distance-quantile tiers guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.accounting.tier_designer import TierDesign
from repro.ecosystem.base import Ecosystem
from repro.errors import DataError, TopologyError
from repro.geo.coords import city_distance_miles
from repro.runtime.cache import config_hash
from repro.serve.snapshot import PricingSnapshot
from repro.topology.network import Topology
from repro.topology.routing import ExitSelector, FlowSpec, TierPriceFn

#: Separator between the exit city key and destination AS name in the
#: snapshot's composite destination keys.
KEY_SEP = "|"


def composite_key(exit_pop: str, destination: str) -> str:
    """The snapshot destination key for one (exit, destination) pair."""
    return f"{exit_pop}{KEY_SEP}{destination}"


def published_snapshot_for(
    eco: Ecosystem,
    provider_asn: int,
    n_tiers: int = 3,
    blended_rate: float = 20.0,
    version: int = 1,
) -> PricingSnapshot:
    """The tier rate card a provider AS publishes to its customers.

    For every (exit city, destination AS) pair in the world the provider
    measures its own haul — great-circle miles from the hand-off city to
    the destination's home — buckets the hauls into ``n_tiers`` distance
    quantiles, and prices tiers on a spread around ``blended_rate``
    (tier 1 ≈ 0.4x blended for the shortest hauls, the top tier ≈ 1.6x).
    The result freezes into a versioned, digest-carrying
    :class:`PricingSnapshot` exactly like the serving path's.
    """
    provider = eco.as_by_asn(provider_asn)
    if n_tiers < 1:
        raise DataError(f"n_tiers must be >= 1, got {n_tiers}")
    exits = sorted({city.key for a in eco.ases for city in a.cities})
    dests = [a for a in eco.ases if a.asn != provider_asn]
    if not dests:
        raise TopologyError("provider has no possible destinations")
    keys = []
    miles = []
    for exit_pop in exits:
        exit_city = next(
            city
            for a in eco.ases
            for city in a.cities
            if city.key == exit_pop
        )
        for dst in dests:
            keys.append(composite_key(exit_pop, dst.name))
            miles.append(city_distance_miles(exit_city, dst.home))
    hauls = np.array(miles)
    # Inner quantile edges; searchsorted maps each haul to its tier.
    edges = np.quantile(hauls, [t / n_tiers for t in range(1, n_tiers)])
    tiers = 1 + np.searchsorted(edges, hauls, side="left")
    if n_tiers == 1:
        rates = {1: float(blended_rate)}
    else:
        rates = {
            t: float(blended_rate) * (0.4 + 1.2 * (t - 1) / (n_tiers - 1))
            for t in range(1, n_tiers + 1)
        }
    design = TierDesign(
        provider_asn=int(provider_asn),
        rates=rates,
        tier_of_destination={
            key: int(tier) for key, tier in zip(keys, tiers)
        },
    )
    reference = float(hauls.max()) if hauls.size else None
    config_digest = (
        eco.spec.digest()
        if eco.spec is not None
        else config_hash({"ecosystem_seed": eco.seed})
    )
    return PricingSnapshot.build(
        design,
        version=version,
        config_digest=config_digest,
        blended_rate=blended_rate,
        gamma=blended_rate / max(1.0, reference or 1.0),
        reference_distance_miles=reference,
        published_at_ms=0,
    )


def snapshot_tier_price(snapshot: PricingSnapshot) -> TierPriceFn:
    """Adapt a composite-key snapshot to ``ExitSelector``'s price hook.

    Unknown (exit, destination) pairs fall back to the snapshot's
    blended rate — the same safe default the quote path uses.
    """

    def price(exit_pop: str, destination: str) -> float:
        tiers = snapshot.tiers_for([composite_key(exit_pop, destination)])
        return float(snapshot.prices_for_tiers(tiers)[0])

    return price


def backbone_for(eco: Ecosystem, asn: int) -> Topology:
    """A customer AS's own backbone: its cities, chained plus a ring.

    One PoP per distinct city (code = the city key), links along the
    city draw order, and a closing link for three or more PoPs so routed
    distances stay sane for any exit pair.
    """
    source = eco.as_by_asn(asn)
    backbone = Topology(f"{source.name}-backbone")
    seen = []
    for city in source.cities:
        if city.key in backbone:
            continue
        backbone.add_pop(city.key, city)
        seen.append(city.key)
    for a, b in zip(seen, seen[1:]):
        backbone.add_link(a, b)
    if len(seen) >= 3:
        backbone.add_link(seen[-1], seen[0])
    return backbone


def transit_flows_for(eco: Ecosystem, asn: int) -> "list[FlowSpec]":
    """The AS's flow table as backbone flows, sources spread over PoPs."""
    source = eco.as_by_asn(asn)
    pops = list(dict.fromkeys(city.key for city in source.cities))
    table = eco.flow_table_for(asn)
    if table.dsts is None:
        raise DataError("ecosystem flow table lost its destination column")
    return [
        FlowSpec(
            source_pop=pops[i % len(pops)],
            destination=str(dst),
            demand_mbps=float(demand),
        )
        for i, (demand, dst) in enumerate(zip(table.demands, table.dsts))
    ]


def exit_selector_for(
    eco: Ecosystem,
    customer_asn: int,
    snapshot: PricingSnapshot,
    backbone_cost_per_mile_mbps: float = 0.004,
) -> ExitSelector:
    """Wire one customer AS to one provider's published rate card.

    Every backbone PoP doubles as a hand-off (transit providers
    interconnect wherever the customer has presence), so the selector's
    hot-potato/tier-aware comparison runs directly on ecosystem data.
    """
    backbone = backbone_for(eco, customer_asn)
    return ExitSelector(
        backbone=backbone,
        handoff_pops=backbone.pop_codes,
        tier_price=snapshot_tier_price(snapshot),
        backbone_cost_per_mile_mbps=backbone_cost_per_mile_mbps,
    )
