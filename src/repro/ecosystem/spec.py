"""Seeded, cacheable ecosystem specifications.

:class:`EcosystemSpec` plays the same role for generated worlds that
:class:`~repro.runtime.spec.ExperimentSpec` plays for experiments: a
frozen, hashable value naming everything that determines the world, with
a :meth:`key`/:meth:`digest` identity that plugs into the runtime
content-addressed cache.  ``build_ecosystem(spec)`` memoizes rendered
worlds per process, and ``render_ecosystem(spec)`` is the uncached path
(determinism checks rebuild through it and compare byte-for-byte).
"""

from __future__ import annotations

import dataclasses

from repro import obs
from repro.ecosystem.base import Ecosystem, EcosystemBuilder, MAX_ASES
from repro.ecosystem.relationships import Relationships
from repro.ecosystem.routing import Routing
from repro.ecosystem.base import Base
from repro.ecosystem.traffic import Traffic
from repro.errors import ConfigurationError
from repro.runtime.cache import cached, config_hash


@dataclasses.dataclass(frozen=True)
class EcosystemSpec:
    """One fully-determined ecosystem.

    Attributes:
        n_tier1 / n_tier2 / n_content / n_stub: AS population by kind.
        n_ixps: Internet-exchange sites.
        seed: World RNG seed (drives every layer's stream).
        peering_density: IXP peering propensity scale in [0, 1].
        window_seconds: NetFlow capture-window length.
        sampling_interval: NetFlow 1-in-N packet sampling.
        traffic_scale: Global multiplier on per-AS egress.
    """

    n_tier1: int = 4
    n_tier2: int = 12
    n_content: int = 4
    n_stub: int = 30
    n_ixps: int = 3
    seed: int = 0
    peering_density: float = 0.5
    window_seconds: float = 120.0
    sampling_interval: int = 500
    traffic_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.n_tier1 < 1:
            raise ConfigurationError(
                f"n_tier1 must be >= 1, got {self.n_tier1}"
            )
        for label in ("n_tier2", "n_content", "n_stub", "n_ixps"):
            if getattr(self, label) < 0:
                raise ConfigurationError(
                    f"{label} must be >= 0, got {getattr(self, label)}"
                )
        if self.n_ases < 2:
            raise ConfigurationError("an ecosystem needs at least two ASes")
        if self.n_ases > MAX_ASES:
            raise ConfigurationError(
                f"{self.n_ases} ASes exceed the address plan's {MAX_ASES}"
            )
        if not 0.0 <= self.peering_density <= 1.0:
            raise ConfigurationError(
                f"peering_density must be in [0, 1], got {self.peering_density}"
            )
        if self.window_seconds <= 0:
            raise ConfigurationError(
                f"window_seconds must be positive, got {self.window_seconds}"
            )
        if self.sampling_interval < 1:
            raise ConfigurationError(
                f"sampling_interval must be >= 1, got {self.sampling_interval}"
            )
        if self.traffic_scale <= 0:
            raise ConfigurationError(
                f"traffic_scale must be positive, got {self.traffic_scale}"
            )

    # ------------------------------------------------------------------

    @classmethod
    def from_counts(
        cls, ases: int = 50, ixps: int = 3, seed: int = 0, **overrides
    ) -> "EcosystemSpec":
        """Split a total AS count into the default kind mix.

        Roughly 6% tier-1, 22% tier-2, 8% content, the rest stubs — the
        CLI's ``--ases/--ixps/--seed`` surface.
        """
        if ases < 5:
            raise ConfigurationError(
                f"need at least 5 ASes for a tiered world, got {ases}"
            )
        n_tier1 = max(2, round(ases * 0.06))
        n_tier2 = max(2, round(ases * 0.22))
        n_content = max(1, round(ases * 0.08))
        n_stub = ases - n_tier1 - n_tier2 - n_content
        if n_stub < 0:
            n_tier2 += n_stub
            n_stub = 0
        fields = dict(
            n_tier1=n_tier1,
            n_tier2=n_tier2,
            n_content=n_content,
            n_stub=n_stub,
            n_ixps=ixps,
            seed=seed,
        )
        fields.update(overrides)
        return cls(**fields)

    @property
    def n_ases(self) -> int:
        return self.n_tier1 + self.n_tier2 + self.n_content + self.n_stub

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def key(self) -> dict:
        """The full configuration that determines the world."""
        return dataclasses.asdict(self)

    def digest(self) -> str:
        """Content hash naming this world in the runtime cache."""
        return config_hash(self.key())

    # ------------------------------------------------------------------

    def build(self) -> Ecosystem:
        """The memoized build (see :func:`build_ecosystem`)."""
        return build_ecosystem(self)


def render_ecosystem(spec: EcosystemSpec) -> Ecosystem:
    """Generate, relate, route, and fit traffic — uncached."""
    with obs.span(
        "ecosystem.build", ases=spec.n_ases, ixps=spec.n_ixps, seed=spec.seed
    ):
        builder = (
            EcosystemBuilder(seed=spec.seed)
            .add_layer(
                Base(
                    n_tier1=spec.n_tier1,
                    n_tier2=spec.n_tier2,
                    n_stub=spec.n_stub,
                    n_content=spec.n_content,
                    n_ixps=spec.n_ixps,
                )
            )
            .add_layer(Relationships(peering_density=spec.peering_density))
            .add_layer(Routing())
            .add_layer(
                Traffic(
                    window_seconds=spec.window_seconds,
                    sampling_interval=spec.sampling_interval,
                    scale=spec.traffic_scale,
                )
            )
        )
        eco = builder.render()
        eco.spec = spec
        return eco


def build_ecosystem(spec: EcosystemSpec) -> Ecosystem:
    """Memoized :func:`render_ecosystem` under the spec's cache key.

    Worlds are memory-only cache entries, like markets: cheap to rebuild
    relative to their pickled size, valuable to share within a process
    across the CLI, sweeps, and tests.
    """
    return cached(
        "ecosystem", spec.key(), lambda: render_ecosystem(spec), disk=False
    )
