"""Tier-design drift: when should an ISP re-derive its tiers?

A tier design is computed from one traffic snapshot, but traffic drifts —
destinations grow, shrink, appear.  This module quantifies how much
profit a *stale* design leaves on the table against fresh measurements
and recommends re-tiering when the gap crosses a threshold.

The comparison holds the market model fixed (same demand family, cost
model, blended reference) and re-calibrates it on the **new** flows; the
stale design is then replayed as a price vector on the new market:

* destinations still in the design keep their tier's price;
* new destinations — which the stale design has no tier for — are
  assumed to be quoted the blended rate (the operator's safe default).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.accounting.tier_designer import TierDesign
from repro.core.bundling import BundlingStrategy, ProfitWeightedBundling
from repro.core.cost import CostModel
from repro.core.demand import DemandModel
from repro.core.flow import FlowSet
from repro.core.market import Market
from repro.errors import AccountingError


@dataclasses.dataclass(frozen=True)
class DriftReport:
    """How a stale design performs on fresh traffic.

    Attributes:
        stale_profit: Profit of replaying the old prices on new traffic.
        refreshed_profit: Profit of re-deriving the tiers on new traffic.
        blended_profit: The blended-rate floor on the new market.
        max_profit: The per-flow ceiling on the new market.
        stale_capture / refreshed_capture: The two designs' capture of
            the new market's blended-to-max gap.
        unknown_destinations: New destinations absent from the design.
        missing_destinations: Designed destinations absent from the new
            traffic (churned away).
    """

    stale_profit: float
    refreshed_profit: float
    blended_profit: float
    max_profit: float
    stale_capture: float
    refreshed_capture: float
    unknown_destinations: int
    missing_destinations: int

    @property
    def regret(self) -> float:
        """Profit given up by keeping the stale design, $/month."""
        return self.refreshed_profit - self.stale_profit

    @property
    def capture_drop(self) -> float:
        return self.refreshed_capture - self.stale_capture

    def should_retier(self, capture_drop_threshold: float = 0.1) -> bool:
        """Recommend re-tiering when the capture gap crosses a threshold."""
        return self.capture_drop > capture_drop_threshold


def replay_design_prices(
    design: TierDesign, market: Market
) -> "tuple[np.ndarray, int, int]":
    """Replay a design as a price vector on a (re)calibrated market.

    Returns ``(prices, unknown, missing)``: per-flow prices where designed
    destinations keep their tier's rate and unknown destinations fall back
    to the market's blended rate; the count of destinations the design has
    no tier for; and the count of designed destinations absent from the
    market's traffic.

    Raises:
        AccountingError: If the market's flows carry no destination
            addresses to join against the design.
    """
    codes = market.flows.dst_codes
    if codes is None:
        raise AccountingError(
            "market flows carry no destination addresses; cannot replay "
            "a tier design against them"
        )
    # Join by destination *label table*, not per flow: the design lookup
    # runs once per distinct destination, then rates fan out to the flows
    # with one code-array gather.
    table = market.flows.dst_table
    rate_by_code = np.full(len(table) + 1, float(market.blended_rate))
    known = np.zeros(len(table) + 1, dtype=bool)
    seen = set()
    present = np.unique(codes)
    for code in (int(c) for c in present if c >= 0):
        dst = table[code]
        tier = design.tier_of_destination.get(dst)
        if tier is not None:
            rate_by_code[code] = design.rates[tier]
            known[code] = True
            seen.add(dst)
    # NO_LABEL (-1) indexes the trailing unknown slot.
    prices = rate_by_code[codes]
    unknown = int(np.count_nonzero(~known[codes]))
    missing = len(set(design.tier_of_destination) - seen)
    return prices, unknown, missing


def evaluate_drift(
    design: TierDesign,
    new_flows: FlowSet,
    demand_model: DemandModel,
    cost_model: CostModel,
    blended_rate: float,
    strategy: "BundlingStrategy | None" = None,
) -> DriftReport:
    """Score a stale design against fresh traffic.

    Args:
        design: The design in production (rates + destination tiers).
        new_flows: The fresh traffic matrix; must carry destination
            addresses (``dsts``) to join against the design.
        demand_model / cost_model / blended_rate: The market model to
            recalibrate on the new flows (use the same settings the
            design was derived with).
        strategy: Bundling used for the refreshed design (defaults to
            profit-weighted at the stale design's tier count).
    """
    if new_flows.dst_codes is None:
        raise AccountingError(
            "new flows carry no destination addresses; cannot join them "
            "against the design"
        )
    market = Market(new_flows, demand_model, cost_model, blended_rate)
    if market.flows.dst_codes is None:
        raise AccountingError(
            "the cost model dropped destination addresses; drift evaluation "
            "needs a non-splitting cost model"
        )

    stale_prices, unknown, missing = replay_design_prices(design, market)
    stale_profit = market.profit_at(stale_prices)
    strategy = strategy or ProfitWeightedBundling()
    refreshed = market.tiered_outcome(strategy, max(1, design.n_tiers))
    return DriftReport(
        stale_profit=stale_profit,
        refreshed_profit=refreshed.profit,
        blended_profit=market.blended_profit(),
        max_profit=market.max_profit(),
        stale_capture=market.profit_capture(stale_profit),
        refreshed_capture=refreshed.profit_capture,
        unknown_destinations=unknown,
        missing_destinations=missing,
    )
