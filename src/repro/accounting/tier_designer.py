"""From a bundling counterfactual to an operable tier configuration (§5).

:class:`TierDesign` is the bridge between the economics (a
:class:`~repro.core.market.Market` counterfactual) and the operations (BGP
tagging, accounting, billing): it freezes a tiered outcome into

* per-destination tier assignments,
* per-tier rates ($/Mbps/month),
* a tier-tagged :class:`~repro.accounting.bgp.RoutingTable`, and
* ready-to-use link- or flow-based accounting instances.

This is the "re-factor pricing without touching the network" workflow the
paper describes: recompute the bundling offline, re-tag the routes, keep
collecting the same NetFlow.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.accounting.bgp import (
    RoutingTable,
    make_route,
    tag_routes_with_tiers,
)
from repro.accounting.flow_based import FlowBasedAccounting
from repro.accounting.link_based import LinkBasedAccounting
from repro.core.market import Market, TieredOutcome
from repro.errors import AccountingError


@dataclasses.dataclass(frozen=True)
class TierDesign:
    """An operable tiered-pricing configuration.

    Attributes:
        provider_asn: AS number used in the tier communities.
        rates: Tier index (1-based) -> price in $/Mbps/month.
        tier_of_destination: Destination address/prefix host -> tier.
    """

    provider_asn: int
    rates: dict
    tier_of_destination: dict

    @classmethod
    def from_outcome(
        cls,
        market: Market,
        outcome: TieredOutcome,
        provider_asn: int = 64500,
        destinations: Optional[list] = None,
    ) -> "TierDesign":
        """Freeze a counterfactual into a design.

        Args:
            market: The calibrated market the outcome came from.
            outcome: A :meth:`Market.tiered_outcome` result.
            provider_asn: ASN for the route communities.
            destinations: Per-flow destination addresses; defaults to the
                market flows' ``dsts`` column.

        Raises:
            AccountingError: When destinations are missing or collide
                across tiers (the same address cannot bill at two rates).
        """
        return cls.from_bundles(
            market,
            outcome.bundles,
            outcome.prices,
            provider_asn=provider_asn,
            destinations=destinations,
        )

    @classmethod
    def from_bundles(
        cls,
        market: Market,
        bundles: list,
        prices,
        provider_asn: int = 64500,
        destinations: Optional[list] = None,
    ) -> "TierDesign":
        """Freeze an explicit partition + price vector into a design.

        The generalized form of :meth:`from_outcome` used by the pricing
        mechanisms (:mod:`repro.mechanisms`), whose partitions — spot
        lots, peering splits, hybrid books — do not come from a
        :class:`~repro.core.bundling.BundlingStrategy`.  Bundle order
        defines the 1-based tier ids.
        """
        if destinations is None:
            if market.flows.dsts is None:
                raise AccountingError(
                    "market flows carry no destination addresses; pass "
                    "destinations= explicitly"
                )
            destinations = list(market.flows.dsts)
        if len(destinations) != market.n_flows:
            raise AccountingError(
                f"got {len(destinations)} destinations for "
                f"{market.n_flows} flows"
            )
        rates = {}
        tier_of_destination: dict = {}
        for tier_index, members in enumerate(bundles, start=1):
            rates[tier_index] = float(prices[members[0]])
            for i in members:
                dst = destinations[int(i)]
                if dst is None:
                    raise AccountingError(f"flow {int(i)} has no destination")
                existing = tier_of_destination.get(dst)
                if existing is not None and existing != tier_index:
                    raise AccountingError(
                        f"destination {dst} appears in tiers {existing} "
                        f"and {tier_index}; tiers must partition destinations"
                    )
                tier_of_destination[dst] = tier_index
        return cls(
            provider_asn=provider_asn,
            rates=rates,
            tier_of_destination=tier_of_destination,
        )

    # ------------------------------------------------------------------

    @property
    def n_tiers(self) -> int:
        return len(self.rates)

    def tier_for(self, destination: str) -> int:
        try:
            return self.tier_of_destination[destination]
        except KeyError as exc:
            raise AccountingError(
                f"destination {destination!r} is not part of this design"
            ) from exc

    def rate_for(self, tier: int) -> float:
        try:
            return self.rates[tier]
        except KeyError as exc:
            raise AccountingError(f"no tier {tier} in this design") from exc

    # ------------------------------------------------------------------
    # Operational artifacts
    # ------------------------------------------------------------------

    def routing_table(
        self, prefix_length: int = 32, aggregate: bool = False
    ) -> RoutingTable:
        """A RIB announcing tagged routes for every destination (§5.1).

        Args:
            prefix_length: Host-route length when not aggregating.
            aggregate: Summarize same-tier destinations into covering
                prefixes (see
                :mod:`repro.accounting.prefix_aggregation`) — far fewer
                routes, same longest-prefix-match tier for every
                designed destination.
        """
        if aggregate:
            from repro.accounting.prefix_aggregation import (
                aggregate_tier_prefixes,
            )

            prefix_tiers = aggregate_tier_prefixes(self.tier_of_destination)
            routes = [
                make_route(str(network), next_hop="upstream")
                for network in sorted(
                    prefix_tiers, key=lambda n: (int(n.network_address), n.prefixlen)
                )
            ]
            tagged = tag_routes_with_tiers(
                routes,
                lambda route: prefix_tiers[route.prefix],
                self.provider_asn,
            )
            rib = RoutingTable()
            rib.insert_many(tagged)
            return rib
        if not 0 < prefix_length <= 32:
            raise AccountingError(f"bad prefix length {prefix_length}")
        routes = [
            make_route(f"{dst}/{prefix_length}", next_hop="upstream")
            for dst in sorted(self.tier_of_destination)
        ]
        tagged = tag_routes_with_tiers(
            routes,
            lambda route: self.tier_of_destination[
                str(route.prefix.network_address)
            ],
            self.provider_asn,
        )
        rib = RoutingTable()
        rib.insert_many(tagged)
        return rib

    def link_accounting(self) -> LinkBasedAccounting:
        """Per-tier links + SNMP accounting wired to this design (§5.2a)."""
        return LinkBasedAccounting(
            tiers=sorted(self.rates),
            rib=self.routing_table(),
            provider_asn=self.provider_asn,
        )

    def flow_accounting(self, window_seconds: float) -> FlowBasedAccounting:
        """NetFlow + RIB accounting wired to this design (§5.2b)."""
        return FlowBasedAccounting(
            rib=self.routing_table(),
            window_seconds=window_seconds,
            provider_asn=self.provider_asn,
        )

    def describe(self) -> str:
        lines = [
            f"TierDesign(asn={self.provider_asn}, tiers={self.n_tiers}, "
            f"destinations={len(self.tier_of_destination)})"
        ]
        counts: dict = {}
        for tier in self.tier_of_destination.values():
            counts[tier] = counts.get(tier, 0) + 1
        for tier in sorted(self.rates):
            lines.append(
                f"  tier {tier}: ${self.rates[tier]:.2f}/Mbps, "
                f"{counts.get(tier, 0)} destinations"
            )
        return "\n".join(lines)
