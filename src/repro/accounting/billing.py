"""Billing primitives shared by both accounting schemes (paper §5.2).

Transit is billed per tier in $/Mbps/month on a *billable rate* derived
from usage samples.  Two industry-standard rating methods are provided:

* **95th percentile** — usage is sampled per interval (5 minutes is the
  norm), the top 5 % of samples are discarded, and the highest remaining
  sample is the billable Mbps.
* **average** — total bytes over the billing window divided by its length.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Mapping, Sequence

from repro.errors import AccountingError


def percentile_mbps(samples: Sequence[float], percentile: float = 95.0) -> float:
    """The billable rate at the given percentile of per-interval samples.

    Uses the conventional "discard the top (100-p)%" rule: with ``n``
    samples, the ``ceil(n * p / 100)``-th smallest is billed.
    """
    if not samples:
        raise AccountingError("cannot bill on zero usage samples")
    if not 0.0 < percentile <= 100.0:
        raise AccountingError(f"percentile must be in (0, 100], got {percentile}")
    ordered = sorted(float(s) for s in samples)
    if any(s < 0 or not math.isfinite(s) for s in ordered):
        raise AccountingError("usage samples must be finite and non-negative")
    rank = max(1, math.ceil(len(ordered) * percentile / 100.0))
    return ordered[rank - 1]


def average_mbps(total_octets: int, window_seconds: float) -> float:
    """Mean rate over the billing window in Mbit/s."""
    if window_seconds <= 0:
        raise AccountingError(f"window must be positive, got {window_seconds}")
    if total_octets < 0:
        raise AccountingError("octet volume must be non-negative")
    return total_octets * 8.0 / window_seconds / 1e6


@dataclasses.dataclass(frozen=True)
class LineItem:
    """One tier's line on the invoice."""

    tier: int
    billable_mbps: float
    rate_per_mbps: float

    @property
    def amount(self) -> float:
        return self.billable_mbps * self.rate_per_mbps


@dataclasses.dataclass(frozen=True)
class Invoice:
    """A tiered transit invoice."""

    customer: str
    line_items: tuple

    @property
    def total(self) -> float:
        return sum(item.amount for item in self.line_items)

    def item_for(self, tier: int) -> LineItem:
        for item in self.line_items:
            if item.tier == tier:
                return item
        raise AccountingError(f"invoice has no line item for tier {tier}")

    def render(self) -> str:
        """Human-readable invoice text."""
        lines = [f"Invoice for {self.customer}"]
        for item in sorted(self.line_items, key=lambda li: li.tier):
            lines.append(
                f"  tier {item.tier}: {item.billable_mbps:10.2f} Mbps "
                f"x ${item.rate_per_mbps:.2f}/Mbps = ${item.amount:,.2f}"
            )
        lines.append(f"  total: ${self.total:,.2f}")
        return "\n".join(lines)


def build_invoice(
    customer: str,
    billable_by_tier: Mapping[int, float],
    rates_by_tier: Mapping[int, float],
) -> Invoice:
    """Assemble an invoice, validating that every tier has a rate."""
    items = []
    for tier in sorted(billable_by_tier):
        if tier not in rates_by_tier:
            raise AccountingError(f"no rate configured for tier {tier}")
        rate = float(rates_by_tier[tier])
        if rate < 0:
            raise AccountingError(f"rate for tier {tier} is negative")
        items.append(
            LineItem(
                tier=int(tier),
                billable_mbps=float(billable_by_tier[tier]),
                rate_per_mbps=rate,
            )
        )
    return Invoice(customer=customer, line_items=tuple(items))
