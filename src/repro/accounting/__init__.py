"""Tiered-pricing accounting substrate (paper §5).

* :mod:`repro.accounting.bgp` — tier tagging with BGP communities and a
  longest-prefix-match RIB;
* :mod:`repro.accounting.link_based` — one link + session per tier with
  SNMP counter polling (Figure 17a);
* :mod:`repro.accounting.flow_based` — single session, NetFlow + RIB join
  (Figure 17b);
* :mod:`repro.accounting.billing` — 95th-percentile and average rating,
  invoices.
"""

from repro.accounting.bgp import (
    Community,
    Route,
    RoutingTable,
    TIER_COMMUNITY_NAMESPACE,
    make_route,
    tag_routes_with_tiers,
)
from repro.accounting.billing import (
    Invoice,
    LineItem,
    average_mbps,
    build_invoice,
    percentile_mbps,
)
from repro.accounting.drift import (
    DriftReport,
    evaluate_drift,
    replay_design_prices,
)
from repro.accounting.flow_based import FlowBasedAccounting, TierUsage
from repro.accounting.link_based import (
    CounterSample,
    LinkBasedAccounting,
    VirtualLink,
)
from repro.accounting.prefix_aggregation import (
    aggregate_tier_prefixes,
    compression_ratio,
)
from repro.accounting.tier_designer import TierDesign

__all__ = [
    "Community",
    "CounterSample",
    "DriftReport",
    "FlowBasedAccounting",
    "Invoice",
    "LineItem",
    "LinkBasedAccounting",
    "Route",
    "RoutingTable",
    "TIER_COMMUNITY_NAMESPACE",
    "TierDesign",
    "TierUsage",
    "VirtualLink",
    "aggregate_tier_prefixes",
    "average_mbps",
    "compression_ratio",
    "build_invoice",
    "evaluate_drift",
    "make_route",
    "percentile_mbps",
    "replay_design_prices",
    "tag_routes_with_tiers",
]
