"""Tier-preserving prefix aggregation.

A tier design naively announces one host route per destination; real BGP
configurations summarize.  :func:`aggregate_tier_prefixes` collapses a
host-to-tier mapping into covering prefixes such that a longest-prefix
match still resolves **every original destination to its original tier**.

Two modes:

* ``strict=True`` (default) — a prefix is emitted only where both halves
  of the address sub-tree contain assigned destinations of the same tier
  (or at a host route).  Aggregates never swallow address space outside
  the "gaps" between same-tier destinations.
* ``strict=False`` — maximal aggregation: any sub-tree whose assigned
  destinations all share one tier becomes a single prefix, even if most
  of the covered space is unassigned (e.g. a design where *everything* is
  tier 2 collapses to ``0.0.0.0/0``).  Correct for the assigned
  destinations, generous for everything else — the usual trade-off of a
  catch-all route.
"""

from __future__ import annotations

import ipaddress
from collections.abc import Mapping

from repro.errors import AccountingError


def aggregate_tier_prefixes(
    tier_of_destination: Mapping[str, int],
    strict: bool = True,
) -> "dict[ipaddress.IPv4Network, int]":
    """Collapse host->tier assignments into covering prefix->tier routes.

    Args:
        tier_of_destination: IPv4 host address -> tier index.
        strict: See module docstring.

    Returns:
        Mapping of networks to tiers.  Longest-prefix match over these
        networks reproduces the input assignment exactly (asserted by the
        test suite).
    """
    if not tier_of_destination:
        raise AccountingError("cannot aggregate an empty assignment")
    entries = []
    for address, tier in tier_of_destination.items():
        try:
            entries.append((int(ipaddress.IPv4Address(address)), int(tier)))
        except (ipaddress.AddressValueError, ValueError) as exc:
            raise AccountingError(f"invalid IPv4 address {address!r}") from exc
    entries.sort()
    for (addr_a, tier_a), (addr_b, tier_b) in zip(entries, entries[1:]):
        if addr_a == addr_b and tier_a != tier_b:
            raise AccountingError(
                f"{ipaddress.IPv4Address(addr_a)} assigned to tiers "
                f"{tier_a} and {tier_b}"
            )

    prefixes: dict = {}

    def emit(start: int, prefix_len: int, tier: int) -> None:
        network = ipaddress.IPv4Network((start, prefix_len))
        prefixes[network] = tier

    def walk(lo: int, hi: int, start: int, prefix_len: int) -> None:
        """Aggregate entries[lo:hi], all inside (start, prefix_len)."""
        if lo >= hi:
            return
        tiers = {tier for _, tier in entries[lo:hi]}
        if len(tiers) == 1:
            tier = tiers.pop()
            if not strict or prefix_len == 32:
                emit(start, prefix_len, tier)
                return
            # Strict: only cover this subtree if both halves are occupied
            # (recursively); otherwise descend into the occupied side.
            mid_addr = start + (1 << (32 - prefix_len - 1))
            split = _bisect(entries, lo, hi, mid_addr)
            if split > lo and split < hi:
                emit(start, prefix_len, tier)
                return
            if split > lo:
                walk(lo, split, start, prefix_len + 1)
            else:
                walk(split, hi, mid_addr, prefix_len + 1)
            return
        mid_addr = start + (1 << (32 - prefix_len - 1))
        split = _bisect(entries, lo, hi, mid_addr)
        walk(lo, split, start, prefix_len + 1)
        walk(split, hi, mid_addr, prefix_len + 1)

    walk(0, len(entries), 0, 0)
    return prefixes


def _bisect(entries: list, lo: int, hi: int, threshold: int) -> int:
    """First index in [lo, hi) whose address is >= threshold."""
    while lo < hi:
        mid = (lo + hi) // 2
        if entries[mid][0] < threshold:
            lo = mid + 1
        else:
            hi = mid
    return lo


def compression_ratio(
    tier_of_destination: Mapping[str, int],
    prefixes: Mapping[ipaddress.IPv4Network, int],
) -> float:
    """Host routes per aggregated route (higher is better)."""
    if not prefixes:
        raise AccountingError("no prefixes to compare")
    return len(tier_of_destination) / len(prefixes)
