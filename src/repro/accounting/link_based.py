"""Link-based (SNMP) accounting (paper §5.2, Figure 17a).

The provider terminates one physical or virtual link — and one BGP
session — **per pricing tier**.  Each session only announces the routes of
its tier, so traffic self-sorts onto the right link, and billing reduces
to polling each link's octet counter over SNMP and rating the usage at the
tier's price.  Simple and unambiguous, but the provisioning overhead grows
with the number of tiers, which is exactly why the paper cares that a few
tiers suffice.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping
from typing import Optional

from repro.accounting.bgp import RoutingTable
from repro.accounting.billing import Invoice, build_invoice, percentile_mbps
from repro.errors import AccountingError


@dataclasses.dataclass
class VirtualLink:
    """One per-tier link with a monotonically increasing octet counter."""

    tier: int
    octets: int = 0

    def carry(self, octets: int) -> None:
        if octets < 0:
            raise AccountingError("cannot carry a negative volume")
        self.octets += octets


@dataclasses.dataclass(frozen=True)
class CounterSample:
    """One SNMP poll of one link's octet counter."""

    time_s: float
    tier: int
    octets: int


class LinkBasedAccounting:
    """Per-tier links, an SNMP poller, and percentile billing.

    Args:
        tiers: The tier indices sold to this customer (one link each).
        rib: The customer-facing RIB with tier-tagged routes; traffic is
            steered onto the link of its destination's tier, exactly as
            per-session announcements would make it.
        provider_asn: Restrict tier tags to this provider's communities.
    """

    def __init__(
        self,
        tiers: "list[int]",
        rib: RoutingTable,
        provider_asn: Optional[int] = None,
    ) -> None:
        if not tiers:
            raise AccountingError("need at least one tier/link")
        if len(set(tiers)) != len(tiers):
            raise AccountingError("tier indices must be unique")
        self._links = {tier: VirtualLink(tier=tier) for tier in tiers}
        self._rib = rib
        self._provider_asn = provider_asn
        self._samples: list = []
        self._last_poll_s: Optional[float] = None

    @property
    def links(self) -> "dict[int, VirtualLink]":
        return dict(self._links)

    def send(self, dst_address: str, octets: int) -> int:
        """Route traffic onto its tier's link; returns the tier used."""
        tier = self._rib.tier_for(dst_address, self._provider_asn)
        if tier not in self._links:
            raise AccountingError(
                f"destination {dst_address} maps to tier {tier}, but no link "
                f"is provisioned for it (links: {sorted(self._links)})"
            )
        self._links[tier].carry(octets)
        return tier

    def poll(self, time_s: float) -> "list[CounterSample]":
        """One SNMP poll: snapshot every link's counter."""
        if self._last_poll_s is not None and time_s <= self._last_poll_s:
            raise AccountingError(
                f"polls must move forward in time ({time_s} <= {self._last_poll_s})"
            )
        self._last_poll_s = time_s
        samples = [
            CounterSample(time_s=time_s, tier=tier, octets=link.octets)
            for tier, link in sorted(self._links.items())
        ]
        self._samples.extend(samples)
        return samples

    def usage_samples_mbps(self) -> "dict[int, list[float]]":
        """Per-tier Mbps per polling interval, from counter deltas."""
        by_tier: dict = {tier: [] for tier in self._links}
        previous: dict = {}
        for sample in self._samples:
            if sample.tier in previous:
                prev = previous[sample.tier]
                dt = sample.time_s - prev.time_s
                if dt > 0:
                    delta = sample.octets - prev.octets
                    by_tier[sample.tier].append(delta * 8.0 / dt / 1e6)
            previous[sample.tier] = sample
        return by_tier

    def invoice(
        self,
        customer: str,
        rates_by_tier: Mapping[int, float],
        percentile: float = 95.0,
    ) -> Invoice:
        """Rate each link's polled usage at its tier price."""
        usage = self.usage_samples_mbps()
        billable = {}
        for tier, samples in usage.items():
            if not samples:
                billable[tier] = 0.0
                continue
            billable[tier] = percentile_mbps(samples, percentile)
        return build_invoice(customer, billable, rates_by_tier)
