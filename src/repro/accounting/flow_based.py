"""Flow-based accounting (paper §5.2, Figure 17b).

A single link and routing session carry all traffic; the provider's flow
collector joins sampled NetFlow records with the routing table to assign
each flow to a pricing tier *after the fact*.  This is exactly how the
paper's own evaluation maps flows to tiers, and it lets the provider
re-bundle (e.g. move to profit-weighted tiers) without touching the
network — only the accounting policy changes.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Mapping
from typing import Optional

from repro.accounting.bgp import RoutingTable
from repro.accounting.billing import Invoice, average_mbps, build_invoice
from repro.errors import AccountingError
from repro.netflow.collector import FlowCollector
from repro.netflow.records import NetFlowRecord


@dataclasses.dataclass(frozen=True)
class TierUsage:
    """Aggregated usage of one tier over the billing window."""

    tier: int
    octets: int
    n_flows: int

    def mean_mbps(self, window_seconds: float) -> float:
        return average_mbps(self.octets, window_seconds)


class FlowBasedAccounting:
    """NetFlow + RIB join producing per-tier usage and invoices.

    Args:
        rib: Tier-tagged routing table (see :mod:`repro.accounting.bgp`).
        window_seconds: Billing window covered by the ingested records.
        provider_asn: Restrict tier tags to this provider's communities.
        deduplicate: Suppress multi-router duplicates through a
            :class:`~repro.netflow.collector.FlowCollector` (on by
            default; switch off when records come from a single export
            point).
    """

    def __init__(
        self,
        rib: RoutingTable,
        window_seconds: float,
        provider_asn: Optional[int] = None,
        deduplicate: bool = True,
    ) -> None:
        if window_seconds <= 0:
            raise AccountingError("window_seconds must be positive")
        self._rib = rib
        self._window_seconds = float(window_seconds)
        self._provider_asn = provider_asn
        self._deduplicate = deduplicate
        self._collector = FlowCollector()

    @property
    def window_seconds(self) -> float:
        return self._window_seconds

    def ingest(self, record: NetFlowRecord) -> None:
        self._collector.ingest(record)

    def ingest_many(self, records: Iterable[NetFlowRecord]) -> None:
        self._collector.ingest_many(records)

    def usage_by_tier(self) -> "dict[int, TierUsage]":
        """Join flows with the RIB and aggregate volumes per tier."""
        if self._deduplicate:
            volumes = self._collector.deduplicated_octets()
        else:
            volumes = self._collector.total_octets()
        octets: dict = {}
        counts: dict = {}
        for key, volume in volumes.items():
            tier = self._rib.tier_for(key.dst_addr, self._provider_asn)
            octets[tier] = octets.get(tier, 0) + volume
            counts[tier] = counts.get(tier, 0) + 1
        return {
            tier: TierUsage(tier=tier, octets=octets[tier], n_flows=counts[tier])
            for tier in octets
        }

    def invoice(self, customer: str, rates_by_tier: Mapping[int, float]) -> Invoice:
        """Bill each tier's mean rate over the window at its price."""
        usage = self.usage_by_tier()
        billable = {
            tier: u.mean_mbps(self._window_seconds) for tier, u in usage.items()
        }
        return build_invoice(customer, billable, rates_by_tier)
