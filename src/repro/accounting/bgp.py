"""BGP route tagging for tiered pricing (paper §5.1).

The upstream ISP announces routes to its customer with a BGP extended
community encoding the pricing tier the destination belongs to ("this
route is trans-Atlantic, it bills at tier 3").  The community travels with
the route, so the customer can build routing policy on it anywhere in its
network — e.g. carry expensive-tier traffic on its own backbone instead of
hot-potato offloading.

This module provides the route/RIB machinery both accounting schemes use:
routes with communities, tier tagging, and longest-prefix-match lookup.
"""

from __future__ import annotations

import dataclasses
import ipaddress
from collections.abc import Callable, Iterable
from typing import Optional

from repro.errors import AccountingError, DataError

#: Namespace used for tier communities, mirroring "ASN:value" notation.
TIER_COMMUNITY_NAMESPACE = "tier"


@dataclasses.dataclass(frozen=True)
class Community:
    """A BGP (extended) community, e.g. ``tier:64500:2``."""

    namespace: str
    asn: int
    value: int

    def __str__(self) -> str:
        return f"{self.namespace}:{self.asn}:{self.value}"

    @classmethod
    def parse(cls, text: str) -> "Community":
        parts = text.split(":")
        if len(parts) != 3:
            raise DataError(f"malformed community {text!r}")
        namespace, asn, value = parts
        try:
            return cls(namespace=namespace, asn=int(asn), value=int(value))
        except ValueError as exc:
            raise DataError(f"malformed community {text!r}") from exc


@dataclasses.dataclass(frozen=True)
class Route:
    """A BGP route announcement.

    Attributes:
        prefix: The announced destination prefix.
        next_hop: Next-hop identifier (PoP code or address).
        as_path: AS path as announced.
        communities: Attached communities (tier tags live here).
    """

    prefix: ipaddress.IPv4Network
    next_hop: str
    as_path: tuple = ()
    communities: tuple = ()

    def with_community(self, community: Community) -> "Route":
        """A copy with one more community attached (idempotent)."""
        if community in self.communities:
            return self
        return dataclasses.replace(
            self, communities=self.communities + (community,)
        )

    def tier(self, asn: Optional[int] = None) -> Optional[int]:
        """The pricing tier tagged on this route, or ``None`` if untagged.

        Args:
            asn: Restrict to tags from one provider ASN (a customer of
                several tiered providers sees multiple tags).
        """
        for community in self.communities:
            if community.namespace != TIER_COMMUNITY_NAMESPACE:
                continue
            if asn is not None and community.asn != asn:
                continue
            return community.value
        return None


def make_route(prefix: str, next_hop: str, as_path: Iterable[int] = ()) -> Route:
    """Build a route from a prefix string (validates the prefix)."""
    try:
        network = ipaddress.IPv4Network(prefix)
    except (ipaddress.AddressValueError, ValueError) as exc:
        raise DataError(f"invalid prefix {prefix!r}") from exc
    return Route(prefix=network, next_hop=next_hop, as_path=tuple(as_path))


def tag_routes_with_tiers(
    routes: Iterable[Route],
    tier_of: Callable[[Route], int],
    provider_asn: int,
) -> "list[Route]":
    """Attach a tier community to every route, as the upstream ISP does.

    Args:
        routes: The provider's announcements to this customer.
        tier_of: Policy mapping each route to its tier index (>= 1) —
            in practice derived from the bundling of §4.
        provider_asn: The tagging provider's AS number.
    """
    tagged = []
    for route in routes:
        tier = int(tier_of(route))
        if tier < 1:
            raise AccountingError(f"tier must be >= 1, got {tier} for {route.prefix}")
        community = Community(
            namespace=TIER_COMMUNITY_NAMESPACE, asn=provider_asn, value=tier
        )
        tagged.append(route.with_community(community))
    return tagged


class RoutingTable:
    """A longest-prefix-match RIB."""

    def __init__(self) -> None:
        # prefix length -> {int network address -> Route}
        self._by_length: dict = {}

    def insert(self, route: Route) -> None:
        """Install a route; a later insert for the same prefix wins."""
        bucket = self._by_length.setdefault(route.prefix.prefixlen, {})
        bucket[int(route.prefix.network_address)] = route

    def insert_many(self, routes: Iterable[Route]) -> None:
        for route in routes:
            self.insert(route)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._by_length.values())

    def lookup(self, address: str) -> Optional[Route]:
        """Longest-prefix match, or ``None`` when no route covers it."""
        try:
            addr = int(ipaddress.IPv4Address(address))
        except (ipaddress.AddressValueError, ValueError) as exc:
            raise DataError(f"invalid IPv4 address {address!r}") from exc
        for length in sorted(self._by_length, reverse=True):
            mask = ((1 << length) - 1) << (32 - length) if length else 0
            route = self._by_length[length].get(addr & mask)
            if route is not None:
                return route
        return None

    def tier_for(self, address: str, provider_asn: Optional[int] = None) -> int:
        """The pricing tier of the best route to an address.

        Raises:
            AccountingError: No route, or the best route carries no tier
                tag — both are billing faults the operator must see.
        """
        route = self.lookup(address)
        if route is None:
            raise AccountingError(f"no route for {address}")
        tier = route.tier(provider_asn)
        if tier is None:
            raise AccountingError(
                f"route {route.prefix} for {address} carries no tier tag"
            )
        return tier
