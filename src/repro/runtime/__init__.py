"""The experiment-execution engine: executors, caching, metrics.

Every sweep, figure, and benchmark in this repo reduces to evaluating a
list of independent, fully-determined work units — "calibrate *this*
dataset under *this* demand family and cost model, bundle it *these*
ways, and score the outcomes".  This package owns that execution, in
three pillars:

* :mod:`repro.runtime.executor` — the pluggable :class:`Executor`
  protocol (``submit(specs) -> (digest, result) as they complete``) and
  its three backends: :class:`SerialExecutor` (inline),
  :class:`PoolExecutor` (the process pool from
  :mod:`repro.runtime.parallel`, ``--jobs`` / ``REPRO_JOBS``), and
  :class:`SocketExecutor` (work-stealing coordinator + socket workers,
  ``repro workers --connect``).  Build them with :func:`get_executor`.
* :mod:`repro.runtime.cache` — content-addressed memoization of datasets,
  calibrated markets, and spec results: in-memory always, mirrored to
  disk under ``.repro_cache/`` when configured (``REPRO_CACHE_DIR``).
* :data:`METRICS` — the process-global registry of counters and stage
  timers every layer reports into.  It now lives in
  :mod:`repro.obs.metrics` (one observability package with the tracer);
  ``repro.runtime.metrics`` remains a compatible alias.

The declarative tie-in is :class:`~repro.runtime.spec.ExperimentSpec` +
:func:`~repro.runtime.spec.run_specs`: drivers build spec lists and the
runtime decides what is cached, what fans out, and what gets counted.
"""

# Exports resolve lazily (PEP 562): the model layer imports
# ``repro.runtime.metrics`` for instrumentation, and an eager package
# init would close an import cycle back through ``repro.runtime.spec``
# (which imports the model layer).
_EXPORTS = {
    "CacheStore": "repro.runtime.cache",
    "cache_enabled": "repro.runtime.cache",
    "cached": "repro.runtime.cache",
    "config_hash": "repro.runtime.cache",
    "configure": "repro.runtime.cache",
    "METRICS": "repro.obs.metrics",
    "Metrics": "repro.obs.metrics",
    "collect": "repro.obs.metrics",
    "RuntimeConfig": "repro.config",
    "ExecutorConfig": "repro.config",
    "JOBS_ENV": "repro.runtime.parallel",
    "Executor": "repro.runtime.executor",
    "SerialExecutor": "repro.runtime.executor",
    "PoolExecutor": "repro.runtime.executor",
    "SocketExecutor": "repro.runtime.executor",
    "get_executor": "repro.runtime.executor",
    "worker_main": "repro.runtime.executor",
    "COST_FACTORIES": "repro.runtime.spec",
    "ExperimentSpec": "repro.runtime.spec",
    "evaluate_spec": "repro.runtime.spec",
    "run_specs": "repro.runtime.spec",
}


def __getattr__(name: str):
    if name in _EXPORTS:
        import importlib

        module = importlib.import_module(_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "CacheStore",
    "COST_FACTORIES",
    "Executor",
    "ExecutorConfig",
    "ExperimentSpec",
    "JOBS_ENV",
    "METRICS",
    "Metrics",
    "PoolExecutor",
    "RuntimeConfig",
    "SerialExecutor",
    "SocketExecutor",
    "cache_enabled",
    "cached",
    "collect",
    "config_hash",
    "configure",
    "evaluate_spec",
    "get_executor",
    "run_specs",
    "worker_main",
]
