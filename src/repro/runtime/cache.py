"""Content-addressed memoization for datasets, markets, and results.

Every cacheable artifact in the experiment pipeline is a deterministic
function of a small, JSON-serializable configuration — a dataset is
``(name, n_flows, seed)``, a calibrated market adds the demand family and
cost-model parameters, a sweep result adds strategies and bundle counts.
:func:`config_hash` canonicalizes such a payload (sorted keys, repr'd
floats) and hashes it, so the hash *is* the identity: same config, same
artifact, no staleness protocol needed.

:class:`CacheStore` keeps an in-memory table and, when given a directory,
mirrors entries to disk as pickles so warm starts survive process
boundaries.  The process-global store is controlled by :func:`configure`
(the CLI's ``--no-cache`` flag and the ``REPRO_CACHE_DIR`` /
``REPRO_NO_CACHE`` environment variables end up here).

Hits and misses are counted in :data:`~repro.obs.METRICS`
(``cache_hits`` / ``cache_misses``), which is how the benchmark harness
verifies that a warm rerun rebuilt nothing; each is also recorded as a
``cache.hit`` / ``cache.miss`` event on the current span, so a trace
shows exactly which stage's lookup went which way.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import pickle
import threading
from typing import Any, Callable, Optional

from repro import obs
from repro.obs import METRICS

#: Environment variable: directory for the on-disk cache mirror.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Environment variable: any non-empty value disables caching entirely.
NO_CACHE_ENV = "REPRO_NO_CACHE"
#: Default on-disk location when disk caching is requested without a path.
DEFAULT_CACHE_DIR = ".repro_cache"


def _canonical(payload: Any) -> Any:
    """Recursively normalize a payload for hashing.

    Dicts are key-sorted by json.dumps; tuples become lists; floats keep
    their full repr (so 0.1 and 0.1000001 hash differently).
    """
    if isinstance(payload, dict):
        return {str(k): _canonical(v) for k, v in payload.items()}
    if isinstance(payload, (list, tuple)):
        return [_canonical(v) for v in payload]
    if isinstance(payload, float):
        return repr(payload)
    return payload


def config_hash(payload: Any) -> str:
    """A deterministic hex digest of a JSON-serializable configuration."""
    text = json.dumps(_canonical(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class CacheStore:
    """In-memory key/value store with an optional on-disk mirror.

    Keys are ``kind:config-hash`` strings; values are arbitrary picklable
    objects.  Disk entries live at ``<directory>/<kind>/<hash>.pkl`` so a
    cache directory is self-describing and selectively clearable.
    """

    def __init__(self, directory: "Optional[str | pathlib.Path]" = None) -> None:
        self._lock = threading.Lock()
        self._memory: "dict[str, Any]" = {}
        self.directory = pathlib.Path(directory) if directory else None

    def _disk_path(self, kind: str, digest: str) -> "Optional[pathlib.Path]":
        if self.directory is None:
            return None
        return self.directory / kind / f"{digest}.pkl"

    def get(self, kind: str, digest: str, disk: bool = True) -> "tuple[bool, Any]":
        """``(hit, value)`` for the keyed entry, promoting disk to memory."""
        key = f"{kind}:{digest}"
        with self._lock:
            if key in self._memory:
                return True, self._memory[key]
        path = self._disk_path(kind, digest) if disk else None
        if path is not None and path.exists():
            try:
                value = pickle.loads(path.read_bytes())
            except Exception:  # corrupt entry: treat as a miss, recompute
                return False, None
            with self._lock:
                self._memory[key] = value
            return True, value
        return False, None

    def put(self, kind: str, digest: str, value: Any, disk: bool = True) -> None:
        key = f"{kind}:{digest}"
        with self._lock:
            self._memory[key] = value
        path = self._disk_path(kind, digest) if disk else None
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_bytes(pickle.dumps(value))
            tmp.replace(path)  # atomic: parallel writers race benignly

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)


# ----------------------------------------------------------------------
# Process-global store
# ----------------------------------------------------------------------

_enabled = True
_store = CacheStore(os.environ.get(CACHE_DIR_ENV) or None)
if os.environ.get(NO_CACHE_ENV):
    _enabled = False


def configure(
    enabled: "Optional[bool]" = None,
    directory: "Optional[str | pathlib.Path]" = None,
    fresh: bool = False,
) -> CacheStore:
    """Reconfigure the global cache; returns the active store.

    Args:
        enabled: Turn caching on/off (``None`` leaves it unchanged).
        directory: On-disk mirror location (``None`` leaves it unchanged;
            pass ``""`` to go memory-only).
        fresh: Drop all in-memory entries (disk files are kept).
    """
    global _enabled, _store
    if enabled is not None:
        _enabled = enabled
    if directory is not None:
        _store = CacheStore(directory or None)
    elif fresh:
        _store.clear()
    return _store


def cache_enabled() -> bool:
    return _enabled


def lookup(kind: str, digest: str) -> "tuple[bool, Any]":
    """Read-only probe of the global store (counts a hit or a miss).

    Returns ``(False, None)`` without counting anything when caching is
    disabled.
    """
    if not _enabled:
        return False, None
    hit, value = _store.get(kind, digest)
    if hit:
        METRICS.incr("cache_hits")
        METRICS.incr(f"cache_hits:{kind}")
        obs.event("cache.hit", kind=kind)
    else:
        METRICS.incr("cache_misses")
        METRICS.incr(f"cache_misses:{kind}")
        obs.event("cache.miss", kind=kind)
    return hit, value


def store(kind: str, digest: str, value: Any) -> None:
    """Write an entry to the global store (no-op when disabled)."""
    if _enabled:
        _store.put(kind, digest, value)


def cached(
    kind: str, payload: Any, compute: Callable[[], Any], disk: bool = True
) -> Any:
    """Memoize ``compute()`` under the global store, keyed by the payload.

    On a disabled cache this is a transparent pass-through (and counts
    neither a hit nor a miss, so metrics reflect only real cache traffic).
    ``disk=False`` keeps the entry memory-only even when a disk mirror is
    configured — used for values whose pickled form is bulky or fragile
    (calibrated :class:`~repro.core.market.Market` objects).
    """
    if not _enabled:
        return compute()
    digest = config_hash(payload)
    hit, value = _store.get(kind, digest, disk=disk)
    if hit:
        METRICS.incr("cache_hits")
        METRICS.incr(f"cache_hits:{kind}")
        obs.event("cache.hit", kind=kind)
        return value
    METRICS.incr("cache_misses")
    METRICS.incr(f"cache_misses:{kind}")
    obs.event("cache.miss", kind=kind)
    value = compute()
    _store.put(kind, digest, value, disk=disk)
    return value
