"""Declarative experiment specifications and their execution engine.

An :class:`ExperimentSpec` names everything that determines one
experiment work unit — dataset, demand family, cost model and its
``theta``, calibration parameters, bundling strategies, and tier budgets
— as a frozen, hashable, picklable value.  That one object is:

* the **unit of parallelism**: :func:`run_specs` fans a spec list
  across an :class:`~repro.runtime.executor.Executor` (serial, process
  pool, or socket-distributed workers);
* the **cache key**: results memoize under the spec's content hash, and
  markets memoize under the sub-key that excludes strategies/budgets;
* the **shared vocabulary**: the CLI, every sweep/figure driver, and the
  benchmark harnesses all build markets by constructing specs.

:func:`evaluate_spec` is the single worker: build (or reuse) the spec's
calibrated market, run its counterfactuals, and return a plain-data
result dict (floats and lists only, so results pickle across process
boundaries and serialize straight to JSON).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.bundling import (
    BundlingStrategy,
    ClassAwareBundling,
    strategy_by_name,
)
from repro.core.ced import CEDDemand
from repro.core.cost import (
    ConcaveDistanceCost,
    CostModel,
    DestinationTypeCost,
    LinearDistanceCost,
    RegionalCost,
)
from repro.core.demand import DemandModel
from repro.core.logit import LogitDemand
from repro.core.market import Market
from repro import obs
from repro.obs import METRICS, TraceContext
from repro.errors import ExecutorError
from repro.runtime.cache import cached, config_hash
from repro.runtime.cache import lookup as cache_lookup
from repro.runtime.cache import store as cache_store
from repro.runtime.executor import Executor, get_executor
from repro.synth.datasets import load_dataset

#: Cost-model name -> constructor, the §3.3 menu by CLI/driver name.
COST_FACTORIES = {
    "linear": LinearDistanceCost,
    "concave": ConcaveDistanceCost,
    "regional": RegionalCost,
    "destination-type": DestinationTypeCost,
}


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """One fully-determined experiment work unit.

    Defaults mirror the paper's §4.2.2 evaluation settings (see
    :mod:`repro.experiments.config`); :meth:`from_config` derives a spec
    from an ``ExperimentConfig`` so drivers never restate them.

    Attributes:
        dataset: Synthetic dataset key (``eu_isp``/``cdn``/``internet2``).
        family: Demand family, ``"ced"`` or ``"logit"``.
        cost_model: Cost-model name from :data:`COST_FACTORIES`.
        theta: Cost-model tuning parameter.
        alpha: Price sensitivity.
        blended_rate: The blended rate ``P0`` ($/Mbps/month).
        s0: Logit outside share (ignored by CED).
        n_flows: Destination aggregates in the synthetic dataset.
        seed: Dataset RNG seed.
        distance_model: How flow distances are drawn — ``"synthetic"``
            (Table 1 calibrated lognormals, the default) or
            ``"ecosystem"`` (valley-free path lengths over a generated
            AS-level world; see :mod:`repro.ecosystem`).
        strategies: Bundling-strategy names (figure-legend names).
        class_aware: Wrap each strategy in
            :class:`~repro.core.bundling.ClassAwareBundling` (the paper's
            fix for the destination-type cost model, §4.3.1).
        bundle_counts: Tier budgets to evaluate.
        mechanism: Pricing mechanism (:data:`repro.config.MECHANISMS`).
            The default ``"posted-tiers"`` evaluates the paper's posted
            pipeline and keeps the spec digest byte-identical to
            pre-mechanism specs (the warm cache survives); any other
            mechanism joins the cache key and adds a ``"mechanism"``
            block to the result.
        trace_context: The submitting span's context in wire form, so a
            spec evaluated in another process re-joins its caller's
            trace.  Excluded from equality, hashing, and the cache key —
            tracing must never change what a result is named.
    """

    dataset: str
    family: str = "ced"
    cost_model: str = "linear"
    theta: float = 0.2
    alpha: float = 1.1
    blended_rate: float = 20.0
    s0: float = 0.2
    n_flows: int = 120
    seed: int = 7
    distance_model: str = "synthetic"
    strategies: "tuple[str, ...]" = ("profit-weighted",)
    class_aware: bool = False
    bundle_counts: "tuple[int, ...]" = (1, 2, 3, 4, 5, 6)
    mechanism: str = "posted-tiers"
    trace_context: "Optional[tuple[str, str]]" = dataclasses.field(
        default=None, compare=False, repr=False
    )

    @classmethod
    def from_config(cls, config, dataset: str, **overrides) -> "ExperimentSpec":
        """Derive a spec from an ``ExperimentConfig``-shaped object.

        Any field can be overridden; the config supplies
        alpha/blended_rate/theta/s0/n_flows/seed/bundle_counts.
        """
        fields = dict(
            dataset=dataset,
            theta=config.theta,
            alpha=config.alpha,
            blended_rate=config.blended_rate,
            s0=config.s0,
            n_flows=config.n_flows,
            seed=config.seed,
            bundle_counts=tuple(config.bundle_counts),
        )
        fields.update(overrides)
        return cls(**fields)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def market_key(self) -> dict:
        """The sub-configuration that determines the calibrated market.

        ``distance_model`` joins the key only when it deviates from the
        default, so every pre-existing digest (and warm disk cache) stays
        valid.
        """
        key = {
            "dataset": self.dataset,
            "family": self.family,
            "cost_model": self.cost_model,
            "theta": self.theta,
            "alpha": self.alpha,
            "blended_rate": self.blended_rate,
            "s0": self.s0,
            "n_flows": self.n_flows,
            "seed": self.seed,
        }
        if self.distance_model != "synthetic":
            key["distance_model"] = self.distance_model
        return key

    def key(self) -> dict:
        """The full configuration that determines the result.

        ``mechanism`` joins the key only when it deviates from the
        posted-tiers default — same conditional-inclusion rule as
        ``distance_model`` in :meth:`market_key` — so every
        pre-mechanism digest (and warm result cache) stays valid.
        """
        full = self.market_key()
        full.update(
            strategies=list(self.strategies),
            class_aware=self.class_aware,
            bundle_counts=list(self.bundle_counts),
        )
        if self.mechanism != "posted-tiers":
            full["mechanism"] = self.mechanism
        return full

    def digest(self) -> str:
        """Content hash naming this spec's result in the cache."""
        return config_hash(self.key())

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    def demand_model(self) -> DemandModel:
        if self.family == "ced":
            return CEDDemand(alpha=self.alpha)
        if self.family == "logit":
            return LogitDemand(alpha=self.alpha, s0=self.s0)
        raise ValueError(
            f"unknown demand family {self.family!r}; use 'ced' or 'logit'"
        )

    def cost_model_instance(self) -> CostModel:
        try:
            factory = COST_FACTORIES[self.cost_model]
        except KeyError:
            raise ValueError(
                f"unknown cost model {self.cost_model!r}; "
                f"expected one of {sorted(COST_FACTORIES)}"
            ) from None
        return factory(theta=self.theta)

    def resolve_strategies(self) -> "list[BundlingStrategy]":
        strategies = [strategy_by_name(name) for name in self.strategies]
        if self.class_aware:
            strategies = [ClassAwareBundling(s) for s in strategies]
        return strategies

    def build_market(self) -> Market:
        """Calibrate this spec's market (memoized under the market key).

        Markets are memory-only cache entries: they are cheap to rebuild
        relative to their pickled size, and their value is in being
        shared *within* a process across strategies and sweeps.
        """
        return cached("market", self.market_key(), self._build_market, disk=False)

    def _build_market(self) -> Market:
        with METRICS.stage("build_market"):
            flows = load_dataset(
                self.dataset,
                n_flows=self.n_flows,
                seed=self.seed,
                distance_model=self.distance_model,
            )
            return Market(
                flows,
                self.demand_model(),
                self.cost_model_instance(),
                blended_rate=self.blended_rate,
            )


def evaluate_spec(spec: ExperimentSpec) -> dict:
    """Run one spec end to end: calibrate, bundle, price, score.

    Returns plain data only::

        {
          "spec": {...},              # the spec's full key
          "blended_profit": float,    # pi_original
          "max_profit": float,        # pi_max
          "capture": {strategy: [per bundle count]},
          "profit":  {strategy: [per bundle count]},
        }
    """
    context = TraceContext.from_wire(spec.trace_context)
    with obs.activate(context), obs.span(
        "runtime.evaluate_spec",
        dataset=spec.dataset,
        family=spec.family,
        cost_model=spec.cost_model,
    ):
        market = spec.build_market()
        result: dict = {
            "spec": spec.key(),
            "blended_profit": market.blended_profit(),
            "max_profit": market.max_profit(),
            "capture": {},
            "profit": {},
        }
        with METRICS.stage("counterfactuals"):
            for strategy in spec.resolve_strategies():
                outcomes = market.capture_curve(strategy, spec.bundle_counts)
                result["capture"][strategy.name] = [
                    o.profit_capture for o in outcomes
                ]
                result["profit"][strategy.name] = [o.profit for o in outcomes]
        if spec.mechanism != "posted-tiers":
            from repro.mechanisms import mechanism_by_name

            mech = mechanism_by_name(
                spec.mechanism, n_tiers=max(spec.bundle_counts)
            )
            design = mech.design_on(market)
            result["mechanism"] = {
                "name": mech.name,
                "profit": design.profit,
                "capture": design.profit_capture,
                "n_tiers": design.n_tiers,
                "posted_tiers": design.posted_tiers,
            }
        return result


def run_specs(
    specs: "list[ExperimentSpec]",
    jobs: "Optional[int]" = None,
    use_cache: bool = True,
    executor: "Optional[Executor | str]" = None,
) -> "list[dict]":
    """Evaluate many specs: cache-check, fan out the misses, memoize.

    The cache is consulted **before** the fan-out, in the parent
    process — a warm rerun touches no worker pool and builds zero
    markets — and populated **as each result arrives**, so a sweep
    killed mid-flight (driver, coordinator, or worker) resumes from the
    disk cache exactly where it stopped.

    Args:
        specs: The work units; results come back aligned with them and
            are byte-identical across backends (each spec is a pure
            function of its fields).
        jobs: Worker-count override threaded into the executor config.
        use_cache: Consult/populate the result cache.
        executor: An :class:`~repro.runtime.executor.Executor` instance
            (left open for the caller to reuse), a backend name
            (``"serial"``/``"pool"``/``"socket"``), or ``None`` —
            resolve from ``REPRO_EXECUTOR``/``REPRO_JOBS`` (default: a
            pool, which runs inline at width one).

    Raises:
        WorkerLostError: A distributed worker died holding a spec's
            lease and retries are exhausted.
        ExecutorError: The backend failed or returned an incomplete
            sweep.
    """
    results: "list[Optional[dict]]" = [None] * len(specs)
    missing: "list[tuple[int, ExperimentSpec]]" = []
    with METRICS.stage("run_specs"), obs.span(
        "runtime.run_specs", specs=len(specs)
    ) as span:
        for i, spec in enumerate(specs):
            if use_cache:
                hit_value = _cached_result(spec)
                if hit_value is not None:
                    results[i] = hit_value
                    continue
            missing.append((i, spec))
        span.set_attribute("misses", len(missing))
        if missing:
            # Stamp the submitting span's context into each shipped spec
            # so worker-side spans re-join this trace (wire-form tuples
            # travel with the spec; the cache key ignores them).
            context = obs.current_context()
            wire = None if context is None else context.to_wire()
            stamped = [
                dataclasses.replace(spec, trace_context=wire)
                for _, spec in missing
            ]
            # Specs may repeat in one sweep; every copy shares a digest,
            # so the first completion fills all of its slots.
            slots: "dict[str, list[int]]" = {}
            for (i, _spec), spec in zip(missing, stamped):
                slots.setdefault(spec.digest(), []).append(i)
            owned = not isinstance(executor, Executor)
            if owned:
                backend = executor if isinstance(executor, str) else None
                active = get_executor(backend=backend, jobs=jobs)
            else:
                active = executor
            try:
                for digest, result in active.submit(stamped):
                    for i in slots.get(digest, ()):
                        results[i] = result
                    slots[digest] = []
                    if use_cache:
                        cache_store("result", digest, result)
            finally:
                if owned:
                    active.close()
            unfilled = sum(1 for r in results if r is None)
            if unfilled:
                raise ExecutorError(
                    f"{active.name} executor returned an incomplete "
                    f"sweep: {unfilled} of {len(specs)} spec(s) have no "
                    f"result"
                )
    return results  # type: ignore[return-value]


def _cached_result(spec: ExperimentSpec) -> "Optional[dict]":
    """Cache lookup that only *reads* (misses don't compute)."""
    hit, value = cache_lookup("result", spec.digest())
    return value if hit else None


def _store_result(spec: ExperimentSpec, result: dict) -> None:
    cache_store("result", spec.digest(), result)
