"""Compatibility alias for :mod:`repro.obs.metrics`.

The metrics registry moved under :mod:`repro.obs` when the tracing layer
landed, so spans and counters share one observability package and one
export (:func:`repro.obs.to_json`).  Everything that used to live here —
:class:`Metrics`, the process-global :data:`METRICS`, :func:`collect`,
and the reservoir constants — is re-exported unchanged; existing imports
of ``repro.runtime.metrics`` keep working.
"""

from __future__ import annotations

from repro.obs.metrics import (
    LATENCY_QUANTILES,
    METRICS,
    Metrics,
    RESERVOIR_CAPACITY,
    collect,
)

__all__ = [
    "LATENCY_QUANTILES",
    "METRICS",
    "Metrics",
    "RESERVOIR_CAPACITY",
    "collect",
]
