"""Lightweight stage timers and counters for the experiment runtime.

Every driver (and the benchmark harness) funnels its bookkeeping through
the process-global :data:`METRICS` registry: how many markets were built,
how many datasets were generated, how often the result cache hit, how
many workers a fan-out used, and how long each named stage took.  The
registry serializes to structured JSON so benchmark runs leave a
machine-readable perf trail under ``benchmarks/output/``.

The registry is deliberately tiny — a dict of counters and a dict of
``{seconds, calls}`` stage timers behind one lock — so instrumenting a
hot path costs nanoseconds, not milliseconds.  Worker processes report
their own deltas back to the parent (see :mod:`repro.runtime.parallel`),
which merges them with :meth:`Metrics.merge`, so a parallel run's JSON
accounts for work done everywhere.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from collections.abc import Iterator, Mapping


class Metrics:
    """A thread-safe registry of counters and cumulative stage timers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: "dict[str, int]" = {}
        self._stages: "dict[str, dict]" = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named counter (creating it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe(self, name: str, seconds: float) -> None:
        """Record one timed call of the named stage."""
        with self._lock:
            stage = self._stages.setdefault(name, {"seconds": 0.0, "calls": 0})
            stage["seconds"] += seconds
            stage["calls"] += 1

    @contextlib.contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with``-block as one call of the named stage."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Reading / merging
    # ------------------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def stage_seconds(self, name: str) -> float:
        with self._lock:
            stage = self._stages.get(name)
            return float(stage["seconds"]) if stage else 0.0

    def snapshot(self) -> dict:
        """A deep copy of the current state (counters + stages)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "stages": {k: dict(v) for k, v in self._stages.items()},
            }

    def merge(self, other: Mapping) -> None:
        """Fold another snapshot's counters and stage times into this one.

        Used by the parallel backend to account for work done in worker
        processes, whose registries the parent cannot see directly.
        """
        for name, amount in other.get("counters", {}).items():
            self.incr(name, amount)
        for name, stage in other.get("stages", {}).items():
            with self._lock:
                mine = self._stages.setdefault(name, {"seconds": 0.0, "calls": 0})
                mine["seconds"] += stage.get("seconds", 0.0)
                mine["calls"] += stage.get("calls", 0)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._stages.clear()

    def to_json(self, **extra) -> str:
        """The snapshot (plus any extra key/values) as pretty JSON."""
        payload = self.snapshot()
        payload.update(extra)
        return json.dumps(payload, indent=2, sort_keys=True)


#: The process-global registry every runtime layer records into.
METRICS = Metrics()


@contextlib.contextmanager
def collect(label: str) -> Iterator[dict]:
    """Time a block and yield a report dict filled in on exit.

    >>> with collect("figure14") as report:
    ...     run_driver()
    >>> report["wall_time_s"]  # doctest: +SKIP

    The yielded dict is populated *after* the block exits with the wall
    time, the label, and a full metrics snapshot — handy for drivers that
    want to emit one structured-JSON record per run.
    """
    report: dict = {"label": label}
    start = time.perf_counter()
    try:
        yield report
    finally:
        report["wall_time_s"] = time.perf_counter() - start
        report.update(METRICS.snapshot())
