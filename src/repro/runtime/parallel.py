"""Parallel fan-out for independent experiment work units.

The sweeps and figure drivers all reduce to the same shape: a list of
independent (dataset, family, parameter-point) work units, each mapping
to one calibrated market and a handful of counterfactuals.
:class:`ParallelMap` runs such a list either serially (the default — the
work units are sub-second, so workers only pay off for real sweeps) or
across a :class:`concurrent.futures.ProcessPoolExecutor`.

Determinism is non-negotiable: results come back in submission order and
every work unit is a pure function of its (picklable) argument, so the
serial and parallel backends produce byte-identical driver output — the
test suite asserts this.

Worker-side metrics are not lost: each call runs inside a wrapper that
diffs the worker process's :data:`~repro.runtime.metrics.METRICS` around
the call and ships the delta back with the result, where the parent
merges it.  A parallel run's metrics JSON therefore still counts every
market built and every cache hit, wherever it happened.

Worker counts resolve, in priority order: explicit ``jobs`` argument >
``REPRO_JOBS`` environment variable > 1 (serial).  ``0`` or a negative
value means "all cores".
"""

from __future__ import annotations

import concurrent.futures
import os
from collections.abc import Callable, Sequence
from typing import Any, Optional

from repro.errors import ConfigurationError
from repro.runtime.metrics import METRICS

#: Environment variable consulted when no explicit job count is given.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: "Optional[int]" = None) -> int:
    """Resolve a worker count from the argument, environment, or default.

    ``None`` falls back to ``$REPRO_JOBS`` (then 1); zero or negative
    means one worker per CPU core.
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ConfigurationError(
                f"{JOBS_ENV} must be an integer worker count "
                f"(0 or negative = all cores), got {env!r}"
            ) from None
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _instrumented_call(fn: Callable, item: Any) -> "tuple[Any, dict]":
    """Run one work unit in a worker, returning (result, metrics delta).

    Pool workers are reused across calls, and under the fork start method
    they also inherit the parent's registry, so the delta is computed
    against a snapshot taken at call entry rather than against zero.
    """
    before = METRICS.snapshot()
    result = fn(item)
    after = METRICS.snapshot()
    delta = {
        "counters": {
            name: amount - before["counters"].get(name, 0)
            for name, amount in after["counters"].items()
            if amount - before["counters"].get(name, 0)
        },
        "stages": {
            name: {
                "seconds": stage["seconds"]
                - before["stages"].get(name, {}).get("seconds", 0.0),
                "calls": stage["calls"]
                - before["stages"].get(name, {}).get("calls", 0),
            }
            for name, stage in after["stages"].items()
            if stage["calls"] - before["stages"].get(name, {}).get("calls", 0)
        },
    }
    return result, delta


class ParallelMap:
    """Ordered map over independent work units, serial or multi-process.

    Args:
        jobs: Worker processes; see :func:`resolve_jobs` for resolution.
            One worker runs everything inline (no pool, no pickling).
    """

    def __init__(self, jobs: "Optional[int]" = None) -> None:
        self.jobs = resolve_jobs(jobs)

    def map(self, fn: Callable[[Any], Any], items: Sequence) -> list:
        """Apply ``fn`` to every item, preserving order.

        ``fn`` and the items must be picklable when more than one worker
        is in play (module-level functions and frozen dataclasses are).
        """
        items = list(items)
        workers = min(self.jobs, len(items)) or 1
        METRICS.incr("map_calls")
        if workers <= 1:
            with METRICS.stage("map.serial"):
                return [fn(item) for item in items]
        # "workers_used" reports the widest pool of the run (a max, not a sum).
        METRICS.incr("workers_used", max(0, workers - METRICS.counter("workers_used")))
        with METRICS.stage("map.parallel"):
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers
            ) as pool:
                futures = [
                    pool.submit(_instrumented_call, fn, item) for item in items
                ]
                results = []
                for future in futures:
                    result, delta = future.result()
                    METRICS.merge(delta)
                    results.append(result)
        return results
