"""The process-pool fan-out engine behind :class:`PoolExecutor`.

The sweeps and figure drivers all reduce to the same shape: a list of
independent (dataset, family, parameter-point) work units, each mapping
to one calibrated market and a handful of counterfactuals.
:class:`_ProcessMap` runs such a list either serially (the default — the
work units are sub-second, so workers only pay off for real sweeps) or
across a :class:`concurrent.futures.ProcessPoolExecutor`.

Determinism is non-negotiable: results come back in submission order and
every work unit is a pure function of its (picklable) argument, so the
serial and parallel backends produce byte-identical driver output — the
test suite asserts this.

Worker-side observability is not lost: each call runs inside
:func:`_instrumented_call`, which diffs the worker process's
:data:`~repro.obs.METRICS` around the call and ships the delta back with
the result, where the parent merges it.  When tracing is enabled the
wrapper also runs the call under a fresh buffering tracer seeded with
the submitting span's :class:`~repro.obs.TraceContext`, ships the
finished spans back, and the parent adopts them — so a parallel run's
trace file contains correctly re-parented spans from every worker
process, and its metrics JSON still counts every market built and every
cache hit, wherever it happened.  The socket-distributed backend reuses
the same wrapper, so a result means the same thing however it traveled.

Worker counts resolve through :class:`repro.config.ExecutorConfig`:
explicit ``jobs`` argument > ``REPRO_JOBS`` environment variable > 1
(serial).  ``0`` or a negative value means "all cores".
"""

from __future__ import annotations

import concurrent.futures
from collections.abc import Callable, Sequence
from typing import Any, Optional

from repro import obs
from repro.config import ExecutorConfig
from repro.obs import METRICS, TraceContext

#: Environment variable consulted when no explicit job count is given.
JOBS_ENV = "REPRO_JOBS"


def _instrumented_call(
    fn: Callable, item: Any, trace_wire=None
) -> "tuple[Any, dict, list]":
    """Run one work unit in a worker: (result, metrics delta, span dicts).

    Pool workers are reused across calls, and under the fork start method
    they also inherit the parent's registry, so the delta is computed
    against a snapshot taken at call entry rather than against zero.

    ``trace_wire`` is the submitting span's context in wire form (or
    ``None`` when tracing is off).  The call then runs under a fresh
    buffering tracer so worker spans ride home with the result instead of
    contending for the parent's trace file.
    """
    context = TraceContext.from_wire(trace_wire)
    before = METRICS.snapshot()
    with obs.capture(context) as tracer:
        if context is None:
            result = fn(item)
        else:
            with tracer.span("runtime.work_unit"):
                result = fn(item)
    after = METRICS.snapshot()
    delta = {
        "counters": {
            name: amount - before["counters"].get(name, 0)
            for name, amount in after["counters"].items()
            if amount - before["counters"].get(name, 0)
        },
        "stages": {
            name: {
                "seconds": stage["seconds"]
                - before["stages"].get(name, {}).get("seconds", 0.0),
                "calls": stage["calls"]
                - before["stages"].get(name, {}).get("calls", 0),
            }
            for name, stage in after["stages"].items()
            if stage["calls"] - before["stages"].get(name, {}).get("calls", 0)
        },
    }
    return result, delta, [span.to_dict() for span in tracer.drain()]


class _ProcessMap:
    """Ordered map over independent work units, serial or multi-process.

    Args:
        jobs: Worker processes; ``None`` falls back to ``$REPRO_JOBS``
            (then 1), zero or negative means one per CPU core.  One
            worker runs everything inline (no pool, no pickling).
        config: A config object with a ``worker_count()`` method
            (:class:`~repro.config.ExecutorConfig` or
            :class:`~repro.config.RuntimeConfig`) supplying the worker
            count when ``jobs`` is not given explicitly.
    """

    def __init__(
        self,
        jobs: "Optional[int]" = None,
        config=None,
    ) -> None:
        if jobs is None and config is not None:
            self.jobs = config.worker_count()
        else:
            self.jobs = ExecutorConfig.resolve(jobs=jobs).worker_count()

    def map(self, fn: Callable[[Any], Any], items: Sequence) -> list:
        """Apply ``fn`` to every item, preserving order.

        ``fn`` and the items must be picklable when more than one worker
        is in play (module-level functions and frozen dataclasses are).
        """
        items = list(items)
        workers = min(self.jobs, len(items)) or 1
        METRICS.incr("map_calls")
        if workers <= 1:
            with METRICS.stage("map.serial"), obs.span(
                "runtime.map", items=len(items), workers=1
            ):
                return [fn(item) for item in items]
        # "workers_used" reports the widest pool of the run (a max, not a sum).
        METRICS.incr("workers_used", max(0, workers - METRICS.counter("workers_used")))
        with METRICS.stage("map.parallel"), obs.span(
            "runtime.map", items=len(items), workers=workers
        ):
            context = obs.current_context()
            wire = None if context is None else context.to_wire()
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers
            ) as pool:
                futures = [
                    pool.submit(_instrumented_call, fn, item, wire)
                    for item in items
                ]
                results = []
                for future in futures:
                    result, delta, spans = future.result()
                    METRICS.merge(delta)
                    obs.adopt_spans(spans, context)
                    results.append(result)
        return results
