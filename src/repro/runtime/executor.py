"""Pluggable sweep executors: serial, process-pool, and socket-distributed.

The ROADMAP's result surface is a grid of ~10,000 independent
:class:`~repro.runtime.spec.ExperimentSpec` work units.  Each spec is a
frozen, content-addressed value and every completed result spills to the
disk cache, so the only thing that varies between "run it here" and
"run it on six machines" is the *executor* — captured by a small
protocol:

* :meth:`Executor.submit` — takes a spec list, yields
  ``(spec_digest, result)`` pairs **as they complete** (not necessarily
  in submission order);
* :attr:`Executor.max_inflight` — how many specs the backend usefully
  keeps in flight (a capability hint, e.g. for batching drivers);
* :meth:`Executor.map` — the generic ordered fan-out the ablation
  drivers use for non-spec callables;
* :meth:`Executor.close` — release workers/sockets (executors are
  context managers).

Three conforming backends ship:

* :class:`SerialExecutor` — inline, single-process;
* :class:`PoolExecutor` — the process pool that used to be spelled
  ``ParallelMap(...)``, byte-identical output preserved;
* :class:`SocketExecutor` — a work-stealing coordinator serving specs
  over length-prefixed JSON frames (the :mod:`repro.fleet.frontdoor`
  wire idiom) to worker processes that pull, execute, and stream results
  back.  Workers may be forked locally or joined from other machines via
  ``repro workers --connect HOST:PORT``.

The socket protocol is worker-driven (work stealing): a worker sends
``{"op": "pull"}`` and the coordinator answers with a *leased* spec,
``{"op": "wait"}``, or ``{"op": "done"}``.  Leases are kept alive by
heartbeats and reclaimed — spec re-queued, at-least-once — when the
connection drops or the lease times out; a spec whose lease is lost more
than ``max_retries`` times fails the sweep with a named
:class:`~repro.errors.WorkerLostError` instead of hanging.  Results
carry the worker's metrics delta and finished spans home, where the
coordinator merges and re-parents them (``obs.adopt_spans``) so ``repro
trace summarize`` rolls a distributed run into one report.

Construction goes through :func:`get_executor` +
:class:`~repro.config.ExecutorConfig` (``--executor`` /
``REPRO_EXECUTOR`` / ``REPRO_JOBS`` / ``REPRO_EXECUTOR_*``).
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import multiprocessing
import os
import queue
import socket
import struct
import threading
import time
from collections import deque
from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import Any, Optional

from repro import obs
from repro.config import ExecutorConfig
from repro.errors import DataError, ExecutorError, WorkerLostError
from repro.obs import METRICS
from repro.runtime.parallel import _instrumented_call, _ProcessMap

# ----------------------------------------------------------------------
# Wire format: 4-byte big-endian length prefix + UTF-8 JSON
# (the synchronous twin of repro.fleet.frontdoor's asyncio framing)
# ----------------------------------------------------------------------

_FRAME_LEN = struct.Struct(">I")

#: Upper bound on one frame; a 120-flow spec result is ~4 KB.
MAX_FRAME_BYTES = 8 * 1024 * 1024


def send_frame(sock: "socket.socket", payload: dict) -> None:
    """Serialize ``payload`` and write one length-prefixed frame."""
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise DataError(
            f"frame of {len(data)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    sock.sendall(_FRAME_LEN.pack(len(data)) + data)


def _recv_exact(sock: "socket.socket", n: int) -> "Optional[bytes]":
    chunks = []
    while n:
        try:
            chunk = sock.recv(n)
        except OSError:
            return None
        if not chunk:
            return None
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: "socket.socket") -> "Optional[dict]":
    """Read one frame; ``None`` means the peer went away (EOF/reset)."""
    header = _recv_exact(sock, _FRAME_LEN.size)
    if header is None:
        return None
    (length,) = _FRAME_LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise DataError(
            f"incoming frame of {length} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    body = _recv_exact(sock, length)
    if body is None:
        return None
    return json.loads(body.decode("utf-8"))


def spec_to_wire(spec) -> dict:
    """An :class:`ExperimentSpec` as plain JSON data (sans trace context)."""
    wire = dataclasses.asdict(spec)
    wire.pop("trace_context", None)
    wire["strategies"] = list(wire["strategies"])
    wire["bundle_counts"] = list(wire["bundle_counts"])
    return wire


def spec_from_wire(wire: dict, trace=None):
    """Rebuild an :class:`ExperimentSpec` from :func:`spec_to_wire` data."""
    from repro.runtime.spec import ExperimentSpec

    fields = dict(wire)
    fields["strategies"] = tuple(fields["strategies"])
    fields["bundle_counts"] = tuple(fields["bundle_counts"])
    if trace is not None:
        fields["trace_context"] = tuple(trace)
    return ExperimentSpec(**fields)


# ----------------------------------------------------------------------
# The protocol and the two local backends
# ----------------------------------------------------------------------


class Executor:
    """One sweep-execution backend (see the module docstring).

    Executors are context managers; exiting closes them.  ``submit`` is
    one-at-a-time per executor — drivers consume its iterator fully (or
    abandon it) before submitting again.
    """

    #: Backend name as spelled by ``--executor``.
    name: str = "base"
    #: How many specs this backend usefully keeps in flight.
    max_inflight: int = 1

    def submit(self, specs: "Sequence") -> "Iterator[tuple[str, dict]]":
        """Evaluate specs, yielding ``(spec_digest, result)`` as completed."""
        raise NotImplementedError

    def map(self, fn: "Callable[[Any], Any]", items: "Iterable") -> list:
        """Ordered generic fan-out for non-spec work units."""
        return [fn(item) for item in items]

    def close(self) -> None:
        """Release workers, sockets, and threads (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class SerialExecutor(Executor):
    """Inline execution in the submitting process — the ground truth.

    Every other backend's output is asserted byte-identical to this one.
    """

    name = "serial"
    max_inflight = 1

    def submit(self, specs):
        from repro.runtime.spec import evaluate_spec

        for spec in specs:
            yield spec.digest(), evaluate_spec(spec)

    def map(self, fn, items):
        return _ProcessMap(jobs=1).map(fn, items)


class PoolExecutor(Executor):
    """The single-machine process pool (née ``ParallelMap``).

    A width of one runs everything inline — no pool, no pickling — which
    is also the all-defaults behavior, so existing serial call sites are
    unchanged byte for byte.

    Args:
        jobs: Worker count override (``None`` defers to the config).
        config: An :class:`~repro.config.ExecutorConfig` (``None``
            resolves one from the environment).
    """

    name = "pool"

    def __init__(
        self,
        jobs: "Optional[int]" = None,
        config: "Optional[ExecutorConfig]" = None,
    ) -> None:
        if config is None:
            config = ExecutorConfig.resolve(jobs=jobs)
        elif jobs is not None:
            config = dataclasses.replace(config, jobs=jobs)
        self.config = config
        self.jobs = config.worker_count()
        self.max_inflight = self.jobs
        self._engine = _ProcessMap(jobs=self.jobs)

    def submit(self, specs):
        from repro.runtime.spec import evaluate_spec

        specs = list(specs)
        results = self._engine.map(evaluate_spec, specs)
        for spec, result in zip(specs, results):
            yield spec.digest(), result

    def map(self, fn, items):
        return self._engine.map(fn, items)


# ----------------------------------------------------------------------
# SocketExecutor: work-stealing coordinator + pull-based workers
# ----------------------------------------------------------------------

# fork (where available): workers inherit the already-imported
# numpy/scipy stack instead of re-importing it per process.
_MP_CONTEXT = multiprocessing.get_context(
    "fork" if "fork" in multiprocessing.get_all_start_methods() else None
)


class _SweepState:
    """Coordinator-side bookkeeping for one ``submit`` call."""

    def __init__(self, specs, max_retries: int) -> None:
        self.wires = [spec_to_wire(spec) for spec in specs]
        self.traces = [
            list(spec.trace_context) if spec.trace_context else None
            for spec in specs
        ]
        self.pending = deque(range(len(specs)))
        self.attempts = [0] * len(specs)  # lease losses, not grants
        self.leases: "dict[str, tuple[int, float, Any]]" = {}
        self.resolved = [False] * len(specs)
        self.max_retries = max_retries
        self.failed = False
        # ("ok", index, result, metrics_delta, span_dicts) | ("fatal", exc)
        self.outbox: "queue.Queue" = queue.Queue()

    def outstanding(self) -> int:
        return len(self.pending) + len(self.leases)


class SocketExecutor(Executor):
    """Work-stealing coordinator serving specs to socket workers.

    The constructor binds the listener, forks ``config.spawn_count()``
    local worker processes (``spawn=0`` forks none — attach remote
    workers with ``repro workers --connect``), and starts the accept and
    lease-monitor threads.  ``submit`` then streams results back in
    completion order; the caller is expected to spill each one to the
    disk cache immediately (``run_specs`` does), which is what makes a
    killed sweep — coordinator or worker — resumable.
    """

    name = "socket"

    def __init__(
        self,
        config: "Optional[ExecutorConfig]" = None,
        **overrides,
    ) -> None:
        if config is None:
            config = ExecutorConfig.resolve(**overrides)
        elif overrides:
            config = dataclasses.replace(config, **overrides)
        self.config = config
        self.max_inflight = max(1, config.worker_count())
        self._lock = threading.RLock()
        self._state: "Optional[_SweepState]" = None
        self._conns: "set[_WorkerConnection]" = set()
        self._closed = False
        self._lease_seq = itertools.count(1)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((config.host, config.port))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]
        # Fork local workers before starting any service thread — a fork
        # taken while coordinator threads run could clone held locks.
        # Their connects queue in the listener backlog until accept runs.
        self._procs = []
        for i in range(config.spawn_count()):
            proc = _MP_CONTEXT.Process(
                target=worker_main,
                args=(self.host, self.port),
                kwargs={"heartbeat_ms": config.heartbeat_ms},
                name=f"repro-exec-worker-{i}",
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-exec-accept", daemon=True
        )
        self._accept_thread.start()
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="repro-exec-monitor", daemon=True
        )
        self._monitor_thread.start()

    # -------------------------------------------------------------- API

    def worker_pids(self) -> "list[Optional[int]]":
        """PIDs of the locally forked worker processes."""
        return [proc.pid for proc in self._procs]

    def submit(self, specs):
        specs = list(specs)
        digests = [spec.digest() for spec in specs]
        with self._lock:
            if self._closed:
                raise ExecutorError("socket executor is closed")
            if self._state is not None:
                raise ExecutorError(
                    "socket executor already has a sweep in flight"
                )
            state = _SweepState(specs, self.config.max_retries)
            self._state = state
        context = obs.current_context()
        emitted = 0
        try:
            while emitted < len(specs):
                try:
                    event = state.outbox.get(timeout=0.2)
                except queue.Empty:
                    if self._closed:
                        raise ExecutorError(
                            "socket executor closed mid-sweep"
                        ) from None
                    continue
                if event[0] == "fatal":
                    raise event[1]
                _, index, result, delta, spans = event
                METRICS.merge(delta)
                obs.adopt_spans(spans, context)
                METRICS.incr("executor.specs_completed")
                emitted += 1
                yield digests[index], result
        finally:
            with self._lock:
                self._state = None

    def map(self, fn, items):
        # Arbitrary callables don't cross the JSON wire; run them in a
        # local pool of the same width instead.
        return _ProcessMap(jobs=self.max_inflight).map(fn, items)

    def close(self):
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._state is not None:
                self._state.outbox.put(
                    ("fatal", ExecutorError("socket executor closed mid-sweep"))
                )
            conns = list(self._conns)
        try:
            self._listener.close()
        except OSError:
            pass
        for conn in conns:
            conn.shutdown()
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
        self._monitor_thread.join(timeout=2.0)
        self._accept_thread.join(timeout=2.0)

    # ------------------------------------------------------- coordinator

    def _accept_loop(self):
        while True:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            conn = _WorkerConnection(sock)
            with self._lock:
                if self._closed:
                    conn.shutdown()
                    return
                self._conns.add(conn)
            METRICS.incr("executor.workers_connected")
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-exec-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: "_WorkerConnection"):
        sock = conn.sock
        try:
            while True:
                frame = recv_frame(sock)
                if frame is None:
                    return
                op = frame.get("op")
                if op == "hello":
                    conn.pid = frame.get("pid")
                elif op == "pull":
                    send_frame(sock, self._assignment_for(conn))
                elif op == "heartbeat":
                    self._record_heartbeat(frame.get("lease"))
                elif op == "result":
                    self._record_result(frame)
                elif op == "error":
                    self._record_error(frame)
                # unknown ops fall through (forward compatibility)
        except (OSError, DataError, ValueError):
            pass
        finally:
            self._drop_connection(conn)

    def _assignment_for(self, conn: "_WorkerConnection") -> dict:
        with self._lock:
            state = self._state
            if self._closed:
                return {"op": "done"}
            if state is None or state.failed:
                return {"op": "wait", "ms": 50}
            index = None
            while state.pending:
                candidate = state.pending.popleft()
                if not state.resolved[candidate]:
                    index = candidate
                    break
            if index is None:
                return {"op": "wait", "ms": 50}
            lease = str(next(self._lease_seq))
            deadline = (
                time.monotonic() + self.config.lease_timeout_ms / 1000.0
            )
            state.leases[lease] = (index, deadline, conn)
            METRICS.incr("executor.leases_granted")
            return {
                "op": "spec",
                "lease": lease,
                "index": index,
                "spec": state.wires[index],
                "trace": state.traces[index],
            }

    def _record_heartbeat(self, lease: "Optional[str]"):
        with self._lock:
            state = self._state
            if state is None or lease not in state.leases:
                return
            index, _deadline, conn = state.leases[lease]
            state.leases[lease] = (
                index,
                time.monotonic() + self.config.lease_timeout_ms / 1000.0,
                conn,
            )

    def _record_result(self, frame: dict):
        index = frame.get("index")
        with self._lock:
            state = self._state
            if state is None or not isinstance(index, int):
                return
            state.leases.pop(frame.get("lease"), None)
            if not 0 <= index < len(state.resolved) or state.resolved[index]:
                # A reclaimed lease's worker finished anyway — specs are
                # pure, so the late copy is identical; drop it.
                METRICS.incr("executor.duplicate_results")
                return
            state.resolved[index] = True
        state.outbox.put(
            (
                "ok",
                index,
                frame.get("result"),
                frame.get("metrics") or {},
                frame.get("spans") or [],
            )
        )

    def _record_error(self, frame: dict):
        # A real exception out of evaluate_spec is deterministic — a
        # retry would fail identically, so fail the sweep by name.
        with self._lock:
            state = self._state
            if state is None:
                return
            state.leases.pop(frame.get("lease"), None)
            state.failed = True
        state.outbox.put(
            (
                "fatal",
                ExecutorError(
                    f"worker {frame.get('pid')} failed executing spec "
                    f"{frame.get('index')}: "
                    f"{frame.get('error', 'unknown error')}"
                ),
            )
        )

    def _drop_connection(self, conn: "_WorkerConnection"):
        with self._lock:
            self._conns.discard(conn)
            state = self._state
            if state is not None:
                lost = [
                    lease
                    for lease, (_i, _d, c) in state.leases.items()
                    if c is conn
                ]
                for lease in lost:
                    self._reclaim_locked(state, lease, "connection lost")
        conn.shutdown()

    def _reclaim_locked(self, state: _SweepState, lease: str, reason: str):
        index, _deadline, _conn = state.leases.pop(lease)
        if state.resolved[index]:
            return
        state.attempts[index] += 1
        METRICS.incr("executor.leases_reclaimed")
        if state.attempts[index] > state.max_retries:
            state.failed = True
            state.outbox.put(
                (
                    "fatal",
                    WorkerLostError(
                        f"spec {index} lost its worker "
                        f"{state.attempts[index]} time(s) ({reason}); "
                        f"retries exhausted "
                        f"(max_retries={state.max_retries})"
                    ),
                )
            )
        else:
            state.pending.append(index)

    def _monitor_loop(self):
        interval = min(self.config.heartbeat_ms, 250.0) / 1000.0
        while not self._closed:
            time.sleep(interval)
            now = time.monotonic()
            with self._lock:
                state = self._state
                if state is None or state.failed:
                    continue
                expired = [
                    lease
                    for lease, (_i, deadline, _c) in state.leases.items()
                    if deadline < now
                ]
                for lease in expired:
                    self._reclaim_locked(state, lease, "lease timed out")
                # All locally forked workers are gone, nobody else is
                # connected, and work remains: nothing will ever pull it.
                if (
                    state.outstanding()
                    and not state.failed
                    and not self._conns
                    and self._procs
                    and all(not proc.is_alive() for proc in self._procs)
                ):
                    state.failed = True
                    state.outbox.put(
                        (
                            "fatal",
                            WorkerLostError(
                                f"all {len(self._procs)} local workers "
                                f"exited with {state.outstanding()} "
                                f"spec(s) outstanding"
                            ),
                        )
                    )


class _WorkerConnection:
    """One accepted worker socket (single serve thread writes to it)."""

    __slots__ = ("sock", "pid")

    def __init__(self, sock: "socket.socket") -> None:
        self.sock = sock
        self.pid: "Optional[int]" = None

    def shutdown(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def worker_main(
    host: str,
    port: int,
    heartbeat_ms: float = 1000.0,
    max_specs: "Optional[int]" = None,
) -> int:
    """Pull-execute-report against a coordinator until it goes away.

    This is both the target of the coordinator's locally forked
    processes and the entry point of ``repro workers --connect``.  Specs
    run through the same instrumented wrapper as pool workers, so the
    metrics delta and finished spans ride home with each result.

    Returns:
        The number of specs this worker evaluated.
    """
    from repro.runtime.spec import evaluate_spec

    sock = socket.create_connection((host, port))
    send_lock = threading.Lock()  # heartbeat thread shares the socket
    executed = 0
    try:
        with send_lock:
            send_frame(sock, {"op": "hello", "pid": os.getpid()})
        while max_specs is None or executed < max_specs:
            with send_lock:
                send_frame(sock, {"op": "pull"})
            frame = recv_frame(sock)
            if frame is None:
                break
            op = frame.get("op")
            if op == "done":
                break
            if op == "wait":
                time.sleep(float(frame.get("ms", 50)) / 1000.0)
                continue
            if op != "spec":
                continue
            lease, index = frame["lease"], frame["index"]
            trace = frame.get("trace")
            spec = spec_from_wire(frame["spec"], trace=trace)
            stop_beat = threading.Event()

            def _beat(lease=lease):
                while not stop_beat.wait(heartbeat_ms / 1000.0):
                    try:
                        with send_lock:
                            send_frame(
                                sock, {"op": "heartbeat", "lease": lease}
                            )
                    except OSError:
                        return

            beat = threading.Thread(
                target=_beat, name="repro-exec-heartbeat", daemon=True
            )
            beat.start()
            try:
                result, delta, spans = _instrumented_call(
                    evaluate_spec, spec, trace
                )
            except Exception as exc:  # ship the failure, keep serving
                stop_beat.set()
                beat.join()
                with send_lock:
                    send_frame(
                        sock,
                        {
                            "op": "error",
                            "lease": lease,
                            "index": index,
                            "pid": os.getpid(),
                            "error": f"{type(exc).__name__}: {exc}",
                        },
                    )
                continue
            stop_beat.set()
            beat.join()
            with send_lock:
                send_frame(
                    sock,
                    {
                        "op": "result",
                        "lease": lease,
                        "index": index,
                        "result": result,
                        "metrics": delta,
                        "spans": spans,
                    },
                )
            executed += 1
    except OSError:
        pass  # coordinator went away; whatever we shipped, we shipped
    finally:
        try:
            sock.close()
        except OSError:
            pass
    return executed


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------

_BACKEND_CLASSES = {
    "serial": SerialExecutor,
    "pool": PoolExecutor,
    "socket": SocketExecutor,
}


def get_executor(config=None, **overrides) -> Executor:
    """Build the configured executor — the supported construction path.

    Args:
        config: An :class:`~repro.config.ExecutorConfig`, a backend-name
            string (``"serial"``/``"pool"``/``"socket"``), or an object
            with ``jobs`` (and optionally ``executor``) attributes such
            as :class:`~repro.config.RuntimeConfig` or an
            ``ExperimentConfig``.  ``None`` resolves from the
            environment.
        **overrides: Explicit :class:`ExecutorConfig` fields (highest
            precedence).

    Raises:
        ConfigurationError: Unknown backend name or malformed knobs.
    """
    if isinstance(config, str):
        overrides = {"backend": config, **overrides}
        config = None
    if config is None:
        config = ExecutorConfig.resolve(**overrides)
    elif not isinstance(config, ExecutorConfig):
        config = ExecutorConfig.resolve(
            backend=getattr(config, "executor", None),
            jobs=getattr(config, "jobs", None),
            **overrides,
        )
    elif overrides:
        config = ExecutorConfig.resolve(
            cli=None,
            **{**dataclasses.asdict(config), **overrides},
        )
    if config.backend == "serial":
        return SerialExecutor()
    return _BACKEND_CLASSES[config.backend](config=config)


__all__ = [
    "Executor",
    "MAX_FRAME_BYTES",
    "PoolExecutor",
    "SerialExecutor",
    "SocketExecutor",
    "get_executor",
    "recv_frame",
    "send_frame",
    "spec_from_wire",
    "spec_to_wire",
    "worker_main",
]
