"""Experiment drivers: one function per paper table and figure.

The mapping from paper artifacts to drivers (see DESIGN.md for details):

========  =====================================================
Artifact  Driver
========  =====================================================
Table 1   :func:`repro.experiments.tables.table1_data`
Fig. 1    :func:`repro.experiments.figures.figure1_data`
Fig. 2    :func:`repro.experiments.figures.figure2_data`
Fig. 3    :func:`repro.experiments.figures.figure3_data`
Fig. 4    :func:`repro.experiments.figures.figure4_data`
Fig. 5    :func:`repro.experiments.figures.figure5_data`
Fig. 6    :func:`repro.experiments.figures.figure6_data`
Fig. 8    :func:`repro.experiments.figures.figure8_data`
Fig. 9    :func:`repro.experiments.figures.figure9_data`
Fig. 10   :func:`repro.experiments.sweeps.figure10_data`
Fig. 11   :func:`repro.experiments.sweeps.figure11_data`
Fig. 12   :func:`repro.experiments.sweeps.figure12_data`
Fig. 13   :func:`repro.experiments.sweeps.figure13_data`
Fig. 14   :func:`repro.experiments.sweeps.figure14_data`
Fig. 15   :func:`repro.experiments.sweeps.figure15_data`
Fig. 16   :func:`repro.experiments.sweeps.figure16_data`
========  =====================================================

(Figures 7 and 17 are architecture diagrams, not data plots; the pipeline
of Figure 7 is :mod:`repro.experiments.runner` itself and the accounting
schemes of Figure 17 live in :mod:`repro.accounting`.)
"""

from repro.experiments.config import (
    BUNDLE_COUNTS,
    DEFAULT_ALPHA,
    DEFAULT_BLENDED_RATE,
    DEFAULT_CONFIG,
    DEFAULT_N_FLOWS,
    DEFAULT_S0,
    DEFAULT_SEED,
    DEFAULT_THETA,
    ExperimentConfig,
)
from repro.experiments.figures import (
    DATASET_TITLES,
    figure1_data,
    figure2_data,
    figure3_data,
    figure4_data,
    figure5_data,
    figure6_data,
    figure8_data,
    figure9_data,
)
from repro.experiments.runner import (
    build_market,
    capture_by_strategy,
    demand_model,
    render_series_table,
    spec_for,
)
from repro.experiments.sweeps import (
    THETA_VALUES,
    figure10_data,
    figure11_data,
    figure12_data,
    figure13_data,
    figure14_data,
    figure15_data,
    figure16_data,
    robustness_summary,
    theta_sweep,
)
from repro.experiments.tables import render_table1, table1_data

__all__ = [
    "BUNDLE_COUNTS",
    "DATASET_TITLES",
    "DEFAULT_ALPHA",
    "DEFAULT_BLENDED_RATE",
    "DEFAULT_CONFIG",
    "DEFAULT_N_FLOWS",
    "DEFAULT_S0",
    "DEFAULT_SEED",
    "DEFAULT_THETA",
    "ExperimentConfig",
    "THETA_VALUES",
    "build_market",
    "capture_by_strategy",
    "demand_model",
    "figure1_data",
    "figure2_data",
    "figure3_data",
    "figure4_data",
    "figure5_data",
    "figure6_data",
    "figure8_data",
    "figure9_data",
    "figure10_data",
    "figure11_data",
    "figure12_data",
    "figure13_data",
    "figure14_data",
    "figure15_data",
    "figure16_data",
    "render_series_table",
    "render_table1",
    "robustness_summary",
    "spec_for",
    "table1_data",
    "theta_sweep",
]
