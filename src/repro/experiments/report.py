"""One-shot reproduction report: every table and figure as markdown.

:func:`generate_report` runs all the experiment drivers at a given
configuration and assembles a single markdown document — the quickest way
to eyeball the whole reproduction (``python -m repro report``) or to
archive a run alongside a dataset.
"""

from __future__ import annotations

import time

from repro.experiments import figures, render, sweeps, tables
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig

#: (section title, driver, renderer) in paper order.
_SECTIONS = (
    (
        "Table 1 — dataset statistics",
        lambda cfg: tables.table1_data(config=cfg),
        tables.render_table1,
    ),
    (
        "Figure 1 — blended vs tiered pricing",
        lambda cfg: figures.figure1_data(),
        render.render_figure1,
    ),
    (
        "Figure 2 — direct peering bypass",
        lambda cfg: figures.figure2_data(),
        render.render_figure2,
    ),
    (
        "Figure 3 — CED demand curves",
        lambda cfg: figures.figure3_data(),
        render.render_figure3,
    ),
    (
        "Figure 4 — profit vs price",
        lambda cfg: figures.figure4_data(),
        render.render_figure4,
    ),
    (
        "Figure 5 — logit demand curves",
        lambda cfg: figures.figure5_data(),
        render.render_figure5,
    ),
    (
        "Figure 6 — concave price fits",
        lambda cfg: figures.figure6_data(),
        render.render_figure6,
    ),
    (
        "Figure 8 — capture by strategy (CED)",
        figures.figure8_data,
        render.render_figure8,
    ),
    (
        "Figure 9 — capture by strategy (logit)",
        figures.figure9_data,
        render.render_figure9,
    ),
    (
        "Figure 10 — linear cost theta sweep",
        sweeps.figure10_data,
        lambda data: render.render_theta_sweep(data, "Figure 10"),
    ),
    (
        "Figure 11 — concave cost theta sweep",
        sweeps.figure11_data,
        lambda data: render.render_theta_sweep(data, "Figure 11"),
    ),
    (
        "Figure 12 — regional cost theta sweep",
        sweeps.figure12_data,
        lambda data: render.render_theta_sweep(data, "Figure 12"),
    ),
    (
        "Figure 13 — destination-type cost theta sweep",
        sweeps.figure13_data,
        lambda data: render.render_theta_sweep(data, "Figure 13"),
    ),
    (
        "Figure 14 — robustness to alpha",
        lambda cfg: sweeps.figure14_data(config=cfg),
        lambda data: render.render_envelope(
            data, "Figure 14", f"alpha in {data['alphas']}"
        ),
    ),
    (
        "Figure 15 — robustness to the blended rate",
        lambda cfg: sweeps.figure15_data(config=cfg),
        lambda data: render.render_envelope(
            data, "Figure 15", f"P0 in {data['blended_rates']}"
        ),
    ),
    (
        "Figure 16 — robustness to the outside share",
        lambda cfg: sweeps.figure16_data(config=cfg),
        lambda data: render.render_envelope(
            data, "Figure 16", f"s0 in {data['s0_values']}"
        ),
    ),
)


def generate_report(config: ExperimentConfig = DEFAULT_CONFIG) -> str:
    """Run every driver and return the full markdown report."""
    started = time.time()
    parts = [
        "# Reproduction report — How Many Tiers? (SIGCOMM 2011)",
        "",
        f"Configuration: {config.n_flows} flows/dataset, seed {config.seed}, "
        f"alpha={config.alpha}, P0=${config.blended_rate}, "
        f"theta={config.theta}, s0={config.s0}.",
        "",
    ]
    for title, driver, renderer in _SECTIONS:
        data = driver(config)
        parts.append(f"## {title}")
        parts.append("")
        parts.append("```")
        parts.append(renderer(data))
        parts.append("```")
        parts.append("")
    parts.append(f"_Generated in {time.time() - started:.1f}s._")
    parts.append("")
    return "\n".join(parts)
