"""Sensitivity-analysis drivers (paper §4.3, Figures 10-16).

Figures 10-13 vary the cost-model parameter ``theta`` on the EU ISP and
plot *normalized profit increase*: each curve's gain over the blended
profit, normalized by the largest max-profit gain across the theta values
in the figure (the paper: "pi_max in these figures is ... the maximum
profit of the plot with highest profit in the figure").

Figures 14-16 vary a model parameter over a range and plot, per bundle
count, the worst (Figs 14-15) or best (Fig 16) profit capture observed
across the whole range, using the profit-weighted strategy.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.core.bundling import (
    BundlingStrategy,
    ClassAwareBundling,
    ProfitWeightedBundling,
)
from repro.core.cost import (
    ConcaveDistanceCost,
    CostModel,
    DestinationTypeCost,
    LinearDistanceCost,
    RegionalCost,
)
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.runner import build_market
from repro.synth.datasets import DATASET_NAMES

#: theta values per cost model, as plotted in Figures 10-13.
THETA_VALUES = {
    "linear": (0.1, 0.2, 0.3),
    "concave": (0.1, 0.2, 0.3),
    "regional": (1.0, 1.1, 1.2),
    "destination-type": (0.05, 0.1, 0.15),
}

_COST_FACTORIES = {
    "linear": LinearDistanceCost,
    "concave": ConcaveDistanceCost,
    "regional": RegionalCost,
    "destination-type": DestinationTypeCost,
}


def _strategy_for(cost_model_name: str) -> BundlingStrategy:
    """Profit-weighted bundling; class-aware for the two-class cost model.

    §4.3.1: "the standard profit-weighting algorithm does not work well
    with the destination type-based cost model ... never group traffic
    from two different classes into the same bundle."
    """
    strategy = ProfitWeightedBundling()
    if cost_model_name == "destination-type":
        return ClassAwareBundling(strategy)
    return strategy


def theta_sweep(
    cost_model_name: str,
    dataset: str = "eu_isp",
    families: Sequence[str] = ("ced", "logit"),
    thetas: Sequence[float] = (),
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> dict:
    """Normalized profit increase vs #bundles for several theta settings.

    This single driver regenerates Figures 10 (linear), 11 (concave),
    12 (regional), and 13 (destination-type) by name.
    """
    if cost_model_name not in _COST_FACTORIES:
        raise ValueError(
            f"unknown cost model {cost_model_name!r}; "
            f"expected one of {sorted(_COST_FACTORIES)}"
        )
    thetas = tuple(thetas) or THETA_VALUES[cost_model_name]
    strategy = _strategy_for(cost_model_name)

    result: dict = {"cost_model": cost_model_name, "dataset": dataset, "panels": {}}
    for family in families:
        gains: dict = {}
        max_gain = 0.0
        for theta in thetas:
            cost_model: CostModel = _COST_FACTORIES[cost_model_name](theta=theta)
            market = build_market(
                dataset, family=family, cost_model=cost_model, config=config
            )
            original = market.blended_profit()
            curve = [
                market.tiered_outcome(strategy, b).profit - original
                for b in config.bundle_counts
            ]
            gains[theta] = curve
            max_gain = max(max_gain, market.max_profit() - original)
        if max_gain <= 0:
            raise ArithmeticError(
                "no positive profit gap in any theta setting; nothing to normalize"
            )
        result["panels"][family] = {
            "bundle_counts": list(config.bundle_counts),
            "normalized_gain": {
                theta: [g / max_gain for g in curve]
                for theta, curve in gains.items()
            },
            "max_gain": max_gain,
        }
    return result


def figure10_data(config: ExperimentConfig = DEFAULT_CONFIG) -> dict:
    """EU ISP, linear cost, theta in {0.1, 0.2, 0.3}."""
    return theta_sweep("linear", config=config)


def figure11_data(config: ExperimentConfig = DEFAULT_CONFIG) -> dict:
    """EU ISP, concave cost, theta in {0.1, 0.2, 0.3}."""
    return theta_sweep("concave", config=config)


def figure12_data(config: ExperimentConfig = DEFAULT_CONFIG) -> dict:
    """EU ISP, regional cost, theta in {1.0, 1.1, 1.2}."""
    return theta_sweep("regional", config=config)


def figure13_data(config: ExperimentConfig = DEFAULT_CONFIG) -> dict:
    """EU ISP, destination-type cost, theta in {0.05, 0.1, 0.15}."""
    return theta_sweep("destination-type", config=config)


# ----------------------------------------------------------------------
# Figures 14-16 — robustness to alpha, P0, and s0
# ----------------------------------------------------------------------


def _capture_envelope(
    configs: Sequence[ExperimentConfig],
    families: Sequence[str],
    envelope: str,
) -> dict:
    """Worst- or best-case capture per (family, dataset, #bundles)."""
    if envelope not in ("min", "max"):
        raise ValueError(f"envelope must be 'min' or 'max', got {envelope!r}")
    pick = min if envelope == "min" else max
    strategy = ProfitWeightedBundling()
    bundle_counts = configs[0].bundle_counts
    result: dict = {"bundle_counts": list(bundle_counts), "panels": {}}
    for family in families:
        panel: dict = {}
        for dataset in DATASET_NAMES:
            envelope_curve = None
            for config in configs:
                market = build_market(dataset, family=family, config=config)
                curve = [
                    market.tiered_outcome(strategy, b).profit_capture
                    for b in bundle_counts
                ]
                if envelope_curve is None:
                    envelope_curve = curve
                else:
                    envelope_curve = [
                        pick(prev, new)
                        for prev, new in zip(envelope_curve, curve)
                    ]
            panel[dataset] = envelope_curve
        result["panels"][family] = panel
    return result


def figure14_data(
    alphas: Sequence[float] = (1.1, 1.5, 2.0, 3.0, 5.0, 7.5, 10.0),
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> dict:
    """Minimum capture over the price-sensitivity range alpha in [1.1, 10].

    (The paper sweeps "between 1 and 10"; CED needs alpha > 1 for a
    finite monopoly price, so the grid starts just above — see DESIGN.md.)
    """
    configs = [dataclasses.replace(config, alpha=a) for a in alphas]
    data = _capture_envelope(configs, ("ced", "logit"), "min")
    data["alphas"] = list(alphas)
    return data


def figure15_data(
    blended_rates: Sequence[float] = (5.0, 10.0, 15.0, 20.0, 25.0, 30.0),
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> dict:
    """Minimum capture over blended rates P0 in [5, 30]."""
    configs = [
        dataclasses.replace(config, blended_rate=p0) for p0 in blended_rates
    ]
    data = _capture_envelope(configs, ("ced", "logit"), "min")
    data["blended_rates"] = list(blended_rates)
    return data


def figure16_data(
    s0_values: Sequence[float] = (0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.9),
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> dict:
    """Maximum capture over the logit outside share s0 in (0, 1).

    Logit only — s0 does not exist under CED.  All s0 values must satisfy
    the calibration feasibility condition ``alpha * P0 * s0 > 1``.
    """
    for s0 in s0_values:
        if config.alpha * config.blended_rate * s0 <= 1.0:
            raise ValueError(
                f"s0={s0} violates alpha*P0*s0 > 1 at alpha={config.alpha}, "
                f"P0={config.blended_rate}; calibration would fail"
            )
    configs = [dataclasses.replace(config, s0=s0) for s0 in s0_values]
    data = _capture_envelope(configs, ("logit",), "max")
    data["s0_values"] = list(s0_values)
    return data


def robustness_summary(config: ExperimentConfig = DEFAULT_CONFIG) -> dict:
    """The paper's §4.3.2 headline: worst-case capture at two bundles.

    "using the CED model and grouping flows in two bundles in the EU ISP
    yields around 0.8 profit capture, regardless of price sensitivity,
    blending rate, and market share."
    """
    fig14 = figure14_data(config=config)
    fig15 = figure15_data(config=config)
    two = fig14["bundle_counts"].index(2)
    return {
        "eu_isp_ced_two_bundles_min_over_alpha": fig14["panels"]["ced"]["eu_isp"][two],
        "eu_isp_ced_two_bundles_min_over_p0": fig15["panels"]["ced"]["eu_isp"][two],
    }
