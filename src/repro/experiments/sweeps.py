"""Sensitivity-analysis drivers (paper §4.3, Figures 10-16).

Figures 10-13 vary the cost-model parameter ``theta`` on the EU ISP and
plot *normalized profit increase*: each curve's gain over the blended
profit, normalized by the largest max-profit gain across the theta values
in the figure (the paper: "pi_max in these figures is ... the maximum
profit of the plot with highest profit in the figure").

Figures 14-16 vary a model parameter over a range and plot, per bundle
count, the worst (Figs 14-15) or best (Fig 16) profit capture observed
across the whole range, using the profit-weighted strategy.

Execution goes through :func:`repro.runtime.spec.run_specs`: each
(family, theta) or (family, dataset, parameter-point) cell is one
independent :class:`~repro.runtime.spec.ExperimentSpec`, so the sweeps
fan out across worker processes (``config.jobs``) and memoize per-cell
results (``config.cache``) with no change in output.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro import obs
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.runner import spec_for
from repro.runtime.spec import COST_FACTORIES, run_specs
from repro.synth.datasets import DATASET_NAMES

#: theta values per cost model, as plotted in Figures 10-13.
THETA_VALUES = {
    "linear": (0.1, 0.2, 0.3),
    "concave": (0.1, 0.2, 0.3),
    "regional": (1.0, 1.1, 1.2),
    "destination-type": (0.05, 0.1, 0.15),
}


def _strategy_fields(cost_model_name: str) -> dict:
    """Profit-weighted bundling; class-aware for the two-class cost model.

    §4.3.1: "the standard profit-weighting algorithm does not work well
    with the destination type-based cost model ... never group traffic
    from two different classes into the same bundle."
    """
    return {
        "strategies": ("profit-weighted",),
        "class_aware": cost_model_name == "destination-type",
    }


def theta_sweep(
    cost_model_name: str,
    dataset: str = "eu_isp",
    families: Sequence[str] = ("ced", "logit"),
    thetas: Sequence[float] = (),
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> dict:
    """Normalized profit increase vs #bundles for several theta settings.

    This single driver regenerates Figures 10 (linear), 11 (concave),
    12 (regional), and 13 (destination-type) by name.
    """
    if cost_model_name not in COST_FACTORIES:
        raise ValueError(
            f"unknown cost model {cost_model_name!r}; "
            f"expected one of {sorted(COST_FACTORIES)}"
        )
    thetas = tuple(thetas) or THETA_VALUES[cost_model_name]
    fields = _strategy_fields(cost_model_name)

    cells = [(family, theta) for family in families for theta in thetas]
    specs = [
        spec_for(
            config,
            dataset,
            family=family,
            cost_model=cost_model_name,
            theta=theta,
            **fields,
        )
        for family, theta in cells
    ]
    with obs.span(
        "experiments.theta_sweep",
        cost_model=cost_model_name,
        dataset=dataset,
        cells=len(cells),
    ):
        evaluated = dict(
            zip(cells, run_specs(specs, jobs=config.jobs, use_cache=config.cache, executor=config.executor))
        )

    result: dict = {"cost_model": cost_model_name, "dataset": dataset, "panels": {}}
    for family in families:
        gains: dict = {}
        max_gain = 0.0
        for theta in thetas:
            cell = evaluated[(family, theta)]
            original = cell["blended_profit"]
            (profits,) = cell["profit"].values()
            gains[theta] = [p - original for p in profits]
            max_gain = max(max_gain, cell["max_profit"] - original)
        if max_gain <= 0:
            raise ArithmeticError(
                "no positive profit gap in any theta setting; nothing to normalize"
            )
        result["panels"][family] = {
            "bundle_counts": list(config.bundle_counts),
            "normalized_gain": {
                theta: [g / max_gain for g in curve]
                for theta, curve in gains.items()
            },
            "max_gain": max_gain,
        }
    return result


def figure10_data(config: ExperimentConfig = DEFAULT_CONFIG) -> dict:
    """EU ISP, linear cost, theta in {0.1, 0.2, 0.3}."""
    return theta_sweep("linear", config=config)


def figure11_data(config: ExperimentConfig = DEFAULT_CONFIG) -> dict:
    """EU ISP, concave cost, theta in {0.1, 0.2, 0.3}."""
    return theta_sweep("concave", config=config)


def figure12_data(config: ExperimentConfig = DEFAULT_CONFIG) -> dict:
    """EU ISP, regional cost, theta in {1.0, 1.1, 1.2}."""
    return theta_sweep("regional", config=config)


def figure13_data(config: ExperimentConfig = DEFAULT_CONFIG) -> dict:
    """EU ISP, destination-type cost, theta in {0.05, 0.1, 0.15}."""
    return theta_sweep("destination-type", config=config)


# ----------------------------------------------------------------------
# Figures 14-16 — robustness to alpha, P0, and s0
# ----------------------------------------------------------------------


def _capture_envelope(
    points: "Sequence[tuple]",
    families: Sequence[str],
    envelope: str,
    config: ExperimentConfig,
) -> dict:
    """Worst- or best-case capture per (family, dataset, #bundles).

    ``points`` is a sequence of ``(field, value)`` overrides — one per
    swept parameter setting.  Every (family, dataset, point) cell is an
    independent spec, fanned out together.
    """
    if envelope not in ("min", "max"):
        raise ValueError(f"envelope must be 'min' or 'max', got {envelope!r}")
    pick = min if envelope == "min" else max
    bundle_counts = tuple(config.bundle_counts)

    cells = [
        (family, dataset, overrides)
        for family in families
        for dataset in DATASET_NAMES
        for overrides in points
    ]
    specs = [
        spec_for(
            config,
            dataset,
            family=family,
            strategies=("profit-weighted",),
            **dict([overrides]),
        )
        for family, dataset, overrides in cells
    ]
    with obs.span(
        "experiments.capture_envelope", envelope=envelope, cells=len(cells)
    ):
        evaluated = dict(
            zip(
                [(family, dataset, overrides) for family, dataset, overrides in cells],
                run_specs(specs, jobs=config.jobs, use_cache=config.cache, executor=config.executor),
            )
        )

    result: dict = {"bundle_counts": list(bundle_counts), "panels": {}}
    for family in families:
        panel: dict = {}
        for dataset in DATASET_NAMES:
            envelope_curve = None
            for overrides in points:
                curve = evaluated[(family, dataset, overrides)]["capture"][
                    "profit-weighted"
                ]
                if envelope_curve is None:
                    envelope_curve = list(curve)
                else:
                    envelope_curve = [
                        pick(prev, new)
                        for prev, new in zip(envelope_curve, curve)
                    ]
            panel[dataset] = envelope_curve
        result["panels"][family] = panel
    return result


def figure14_data(
    alphas: Sequence[float] = (1.1, 1.5, 2.0, 3.0, 5.0, 7.5, 10.0),
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> dict:
    """Minimum capture over the price-sensitivity range alpha in [1.1, 10].

    (The paper sweeps "between 1 and 10"; CED needs alpha > 1 for a
    finite monopoly price, so the grid starts just above — see DESIGN.md.)
    """
    points = [("alpha", a) for a in alphas]
    data = _capture_envelope(points, ("ced", "logit"), "min", config)
    data["alphas"] = list(alphas)
    return data


def figure15_data(
    blended_rates: Sequence[float] = (5.0, 10.0, 15.0, 20.0, 25.0, 30.0),
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> dict:
    """Minimum capture over blended rates P0 in [5, 30]."""
    points = [("blended_rate", p0) for p0 in blended_rates]
    data = _capture_envelope(points, ("ced", "logit"), "min", config)
    data["blended_rates"] = list(blended_rates)
    return data


def figure16_data(
    s0_values: Sequence[float] = (0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.9),
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> dict:
    """Maximum capture over the logit outside share s0 in (0, 1).

    Logit only — s0 does not exist under CED.  All s0 values must satisfy
    the calibration feasibility condition ``alpha * P0 * s0 > 1``.
    """
    for s0 in s0_values:
        if config.alpha * config.blended_rate * s0 <= 1.0:
            raise ValueError(
                f"s0={s0} violates alpha*P0*s0 > 1 at alpha={config.alpha}, "
                f"P0={config.blended_rate}; calibration would fail"
            )
    points = [("s0", s0) for s0 in s0_values]
    data = _capture_envelope(points, ("logit",), "max", config)
    data["s0_values"] = list(s0_values)
    return data


def robustness_summary(config: ExperimentConfig = DEFAULT_CONFIG) -> dict:
    """The paper's §4.3.2 headline: worst-case capture at two bundles.

    "using the CED model and grouping flows in two bundles in the EU ISP
    yields around 0.8 profit capture, regardless of price sensitivity,
    blending rate, and market share."
    """
    fig14 = figure14_data(config=config)
    fig15 = figure15_data(config=config)
    two = fig14["bundle_counts"].index(2)
    return {
        "eu_isp_ced_two_bundles_min_over_alpha": fig14["panels"]["ced"]["eu_isp"][two],
        "eu_isp_ced_two_bundles_min_over_p0": fig15["panels"]["ced"]["eu_isp"][two],
    }
