"""The paper's default evaluation parameters (§4.2.2, §4.3).

Unless a figure sweeps them, the evaluation fixes: price sensitivity
``alpha = 1.1``, blended rate ``P0 = $20/Mbps/month``, cost tuning
``theta = 0.2`` (linear model), logit outside share ``s0 = 0.2``, and tier
budgets of one through six bundles.
"""

from __future__ import annotations

import dataclasses

#: Price sensitivity used in Figures 8-13.
DEFAULT_ALPHA = 1.1
#: Blended rate in $/Mbps/month.
DEFAULT_BLENDED_RATE = 20.0
#: Linear/concave cost base-cost fraction.
DEFAULT_THETA = 0.2
#: Logit outside (non-buying) share at the blended rate.
DEFAULT_S0 = 0.2
#: Tier budgets plotted on every figure's x axis.
BUNDLE_COUNTS = (1, 2, 3, 4, 5, 6)
#: Flows per synthetic dataset in the figure experiments.  The paper also
#: aggregates to keep optimal search tractable; 120 destination aggregates
#: keep the exhaustive-quality DP under a second per panel.
DEFAULT_N_FLOWS = 120
#: Seed for the synthetic datasets used in the figures.
DEFAULT_SEED = 7


@dataclasses.dataclass(frozen=True)
class ExperimentConfig:
    """Bundle of knobs shared by the figure drivers.

    The last three fields steer the runtime, not the model: ``jobs`` is
    the worker count for driver fan-out (``None`` defers to
    ``$REPRO_JOBS``, then serial; ``0`` means all cores), ``cache``
    toggles the content-addressed result/market/dataset cache, and
    ``executor`` picks the sweep backend (``"serial"``/``"pool"``/
    ``"socket"``; ``None`` defers to ``$REPRO_EXECUTOR``, then pool).
    None of them affects results — backends and cold/warm runs are
    byte-identical (asserted by ``tests/test_runtime.py`` and
    ``tests/test_executor.py``).
    """

    alpha: float = DEFAULT_ALPHA
    blended_rate: float = DEFAULT_BLENDED_RATE
    theta: float = DEFAULT_THETA
    s0: float = DEFAULT_S0
    n_flows: int = DEFAULT_N_FLOWS
    seed: int = DEFAULT_SEED
    bundle_counts: tuple = BUNDLE_COUNTS
    jobs: "int | None" = None
    cache: bool = True
    executor: "str | None" = None


DEFAULT_CONFIG = ExperimentConfig()
