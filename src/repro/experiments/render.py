"""Text renderers for every experiment's data (shared by CLI and benches).

Each ``render_figureN`` takes the matching driver's output and returns an
aligned plain-text table mirroring the paper's plot."""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import render_series_table


def render_figure1(data: dict) -> str:
    blended = data["blended"]
    tiered = data["tiered"]
    return "\n".join(
        [
            "Figure 1: blended vs tiered pricing (alpha=2, v=(1,2), c=(1,0.5))",
            f"  blended  price  ${blended['price']:.2f}"
            f"   profit ${blended['profit']:.4f} (paper $2.08)"
            f"   surplus ${blended['surplus']:.4f} (paper $4.17)",
            f"  tiered   prices ${tiered['prices'][0]:.2f}, ${tiered['prices'][1]:.2f}"
            f"   profit ${tiered['profit']:.4f} (paper $2.25)"
            f"   surplus ${tiered['surplus']:.4f} (paper $4.50)",
            f"  gains: profit +${data['profit_gain']:.4f}, "
            f"surplus +${data['surplus_gain']:.4f}",
        ]
    )


def render_figure2(data: dict) -> str:
    lo, hi = data["failure_window"]
    lines = [
        "Figure 2: direct-peering bypass regimes "
        f"(R=${data['blended_rate']:.2f}, tiered price=${data['tiered_price']:.2f})",
        f"  market-failure window: c_direct in (${lo:.2f}, ${hi:.2f})",
        f"  {'c_direct':>9}  {'outcome':<17} {'loss $/Mbps':>12}",
    ]
    for point in data["points"]:
        lines.append(
            f"  {point['c_direct']:>9.2f}  {point['outcome']:<17} "
            f"{point['loss_per_mbps']:>12.2f}"
        )
    return "\n".join(lines)


def _sampled_curves(title: str, data: dict, sample_prices: tuple, label: str) -> str:
    lines = [title]
    lines.append(
        "  " + "curve".ljust(12) + "".join(f"{label}{p:<8}" for p in sample_prices)
    )
    for name, curve in data["curves"].items():
        prices = np.array([p for p, _ in curve])
        quantities = np.array([q for _, q in curve])
        row = "  " + name.ljust(12)
        for p in sample_prices:
            row += f"{np.interp(p, prices, quantities):<10.3f}"
        lines.append(row)
    return "\n".join(lines)


def render_figure3(data: dict) -> str:
    return _sampled_curves(
        "Figure 3: CED demand curves, v=1 (quantity at sample prices)",
        data,
        (0.5, 1.0, 2.0, 4.0),
        "p=",
    )


def render_figure4(data: dict) -> str:
    lines = ["Figure 4: profit maxima for v=1, alpha=2"]
    for name, peak in data["maxima"].items():
        lines.append(
            f"  {name}: p* = ${peak['price']:.2f}, profit = ${peak['profit']:.4f}"
        )
    return "\n".join(lines)


def render_figure5(data: dict) -> str:
    return _sampled_curves(
        "Figure 5: logit demand for flow 2 (v=(1.6, 1.0), p1=$1)",
        data,
        (0.25, 1.0, 2.0, 3.5),
        "p2=",
    )


def render_figure6(data: dict) -> str:
    lines = ["Figure 6: concave price-curve fits (y = k ln x + c)"]
    for name, fit in data.items():
        lines.append(
            f"  {name:4s} k_fit={fit['k_fit']:.4f} (true {fit['k_true']:.4f})  "
            f"c_fit={fit['c_fit']:.4f} (true {fit['c_true']:.2f})  "
            f"rmse={fit['residual']:.4f}  "
            f"a@reported_b={fit['a_for_reported_base']:.3f}"
        )
    return "\n".join(lines)


def render_strategy_panels(panels: dict, figure: str, family: str) -> str:
    blocks = []
    for _, panel in panels.items():
        blocks.append(
            render_series_table(
                f"{figure} ({panel['title']}): profit capture, {family} demand",
                "strategy / #bundles",
                panel["bundle_counts"],
                panel["capture"],
            )
        )
    return "\n\n".join(blocks)


def render_figure8(panels: dict) -> str:
    return render_strategy_panels(panels, "Figure 8", "CED")


def render_figure9(panels: dict) -> str:
    return render_strategy_panels(panels, "Figure 9", "logit")


def render_theta_sweep(data: dict, figure: str) -> str:
    blocks = []
    for family, panel in data["panels"].items():
        series = {
            f"theta={theta}": curve
            for theta, curve in panel["normalized_gain"].items()
        }
        blocks.append(
            render_series_table(
                f"{figure} ({data['dataset']}, {data['cost_model']} cost, "
                f"{family} demand): normalized profit increase",
                "setting / #bundles",
                panel["bundle_counts"],
                series,
            )
        )
    return "\n\n".join(blocks)


def render_envelope(data: dict, figure: str, sweep_desc: str) -> str:
    blocks = []
    for family, panel in data["panels"].items():
        blocks.append(
            render_series_table(
                f"{figure} ({family} demand): capture envelope over {sweep_desc}",
                "network / #bundles",
                data["bundle_counts"],
                panel,
            )
        )
    return "\n\n".join(blocks)
