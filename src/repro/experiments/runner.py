"""The Figure 7 pipeline: dataset -> demand + cost -> bundling -> profit.

These helpers assemble calibrated :class:`~repro.core.market.Market`
objects from experiment configuration and format result series as the
aligned text tables the benchmarks print.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Optional

from repro.core.bundling import BundlingStrategy
from repro.core.ced import CEDDemand
from repro.core.cost import CostModel, LinearDistanceCost
from repro.core.demand import DemandModel
from repro.core.logit import LogitDemand
from repro.core.market import Market
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.synth.datasets import load_dataset


def demand_model(
    family: str, config: ExperimentConfig = DEFAULT_CONFIG
) -> DemandModel:
    """Instantiate ``"ced"`` or ``"logit"`` at the config's parameters."""
    if family == "ced":
        return CEDDemand(alpha=config.alpha)
    if family == "logit":
        return LogitDemand(alpha=config.alpha, s0=config.s0)
    raise ValueError(f"unknown demand family {family!r}; use 'ced' or 'logit'")


def build_market(
    dataset: str,
    family: str = "ced",
    cost_model: Optional[CostModel] = None,
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> Market:
    """Load a synthetic dataset and calibrate a market on it."""
    flows = load_dataset(dataset, n_flows=config.n_flows, seed=config.seed)
    if cost_model is None:
        cost_model = LinearDistanceCost(theta=config.theta)
    return Market(
        flows,
        demand_model(family, config),
        cost_model,
        blended_rate=config.blended_rate,
    )


def capture_by_strategy(
    market: Market,
    strategies: Sequence[BundlingStrategy],
    bundle_counts: Sequence[int],
) -> "dict[str, list[float]]":
    """Profit-capture curves, one list per strategy."""
    return {
        strategy.name: [
            market.tiered_outcome(strategy, b).profit_capture
            for b in bundle_counts
        ]
        for strategy in strategies
    }


def render_series_table(
    title: str,
    column_header: str,
    columns: Sequence,
    series: Mapping[str, Sequence[float]],
    value_format: str = "{:.3f}",
) -> str:
    """Align named series under shared columns, like one figure panel."""
    name_width = max([len(name) for name in series] + [len(column_header)])
    header = column_header.ljust(name_width) + "".join(
        f"{str(col):>9}" for col in columns
    )
    lines = [title, header, "-" * len(header)]
    for name, values in series.items():
        cells = "".join(value_format.format(v).rjust(9) for v in values)
        lines.append(name.ljust(name_width) + cells)
    return "\n".join(lines)
