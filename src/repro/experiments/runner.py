"""The Figure 7 pipeline: dataset -> demand + cost -> bundling -> profit.

Since the runtime refactor this module is a thin adapter between the
figure/sweep drivers' ``ExperimentConfig`` world and the declarative
:class:`~repro.runtime.spec.ExperimentSpec` engine that actually builds
markets (with caching and parallelism).  It also keeps the aligned-text
table renderer the benchmarks print.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Optional

from repro.core.bundling import BundlingStrategy
from repro.core.cost import CostModel
from repro.core.demand import DemandModel
from repro.core.market import Market, capture_table
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.runtime.spec import COST_FACTORIES, ExperimentSpec


def demand_model(
    family: str, config: ExperimentConfig = DEFAULT_CONFIG
) -> DemandModel:
    """Instantiate ``"ced"`` or ``"logit"`` at the config's parameters."""
    return spec_for(config, "eu_isp", family=family).demand_model()


def spec_for(
    config: ExperimentConfig, dataset: str, **overrides
) -> ExperimentSpec:
    """An :class:`ExperimentSpec` for this config, dataset, and overrides."""
    return ExperimentSpec.from_config(config, dataset, **overrides)


def build_market(
    dataset: str,
    family: str = "ced",
    cost_model: Optional[CostModel] = None,
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> Market:
    """Load a synthetic dataset and calibrate a market on it.

    Goes through the runtime's spec engine, so repeated calls with the
    same configuration return the same cached market.  A ``cost_model``
    *instance* bypasses the spec path (the cache cannot key on arbitrary
    objects); named cost models should be passed via spec overrides
    instead.
    """
    if cost_model is None or _speccable_cost(cost_model):
        overrides: dict = {"family": family}
        if cost_model is not None:
            overrides["cost_model"] = _COST_NAMES[type(cost_model)]
            overrides["theta"] = cost_model.theta
        return spec_for(config, dataset, **overrides).build_market()
    from repro.synth.datasets import load_dataset

    flows = load_dataset(dataset, n_flows=config.n_flows, seed=config.seed)
    return Market(
        flows,
        demand_model(family, config),
        cost_model,
        blended_rate=config.blended_rate,
    )


#: Cost-model classes the spec engine can name (and therefore cache).
_COST_NAMES = {factory: name for name, factory in COST_FACTORIES.items()}


def _speccable_cost(cost_model: CostModel) -> bool:
    """Can this instance be expressed as (name, theta) in a spec?

    Only a default construction at its theta is: subclasses or instances
    with non-default extra knobs must take the uncached path.  Cost
    models carry scalar attributes only, so ``vars`` comparison is exact.
    """
    if type(cost_model) not in _COST_NAMES:
        return False
    default = type(cost_model)(theta=cost_model.theta)
    return vars(default) == vars(cost_model)


def capture_by_strategy(
    market: Market,
    strategies: Sequence[BundlingStrategy],
    bundle_counts: Sequence[int],
) -> "dict[str, list[float]]":
    """Profit-capture curves, one list per strategy.

    A thin alias for :func:`repro.core.market.capture_table`, kept for
    the drivers' vocabulary — both used to re-derive what
    :meth:`Market.capture_curve` already computes.
    """
    return capture_table(market, strategies, bundle_counts)


def render_series_table(
    title: str,
    column_header: str,
    columns: Sequence,
    series: Mapping[str, Sequence[float]],
    value_format: str = "{:.3f}",
) -> str:
    """Align named series under shared columns, like one figure panel."""
    name_width = max([len(name) for name in series] + [len(column_header)])
    header = column_header.ljust(name_width) + "".join(
        f"{str(col):>9}" for col in columns
    )
    lines = [title, header, "-" * len(header)]
    for name, values in series.items():
        cells = "".join(value_format.format(v).rjust(9) for v in values)
        lines.append(name.ljust(name_width) + cells)
    return "\n".join(lines)
