"""Ablation studies on the reproduction's design choices.

The paper leaves several mechanisms unexamined ("Deeper analysis, beyond
the scope of this work, could show what specific input data conditions
cause the profit-weighted flow bundling heuristic to produce bundlings
superior to the cost-weighted heuristic").  These drivers probe them:

* :func:`optimal_search_ablation` — does the O(n^2 B) contiguous DP match
  exhaustive partition search?  (It should: the test suite asserts
  equality on every instance; this driver measures it at scale and times
  both.)
* :func:`weighting_ablation` — profit-weighted vs cost-weighted vs
  demand-weighted across the demand/distance correlation ``rho``: the
  data condition the paper wondered about.
* :func:`granularity_ablation` — profit capture as the traffic matrix is
  aggregated into fewer destination aggregates: how coarse can
  measurement be before tier design suffers?
* :func:`billing_ablation` — 95th-percentile vs mean-rate billing on
  diurnal traffic: how much the rating method (not the tiering!) moves
  revenue.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from repro.core.bundling import (
    BundlingInputs,
    CostWeightedBundling,
    DemandWeightedBundling,
    OptimalBundling,
    ProfitWeightedBundling,
    evaluate_partition,
)
from repro.core.ced import CEDDemand
from repro.core.cost import LinearDistanceCost
from repro.core.flow import FlowSet
from repro.core.market import Market
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.runner import spec_for
from repro.runtime.executor import get_executor
from repro.runtime.spec import run_specs
from repro.synth.datasets import load_dataset
from repro.synth.distributions import (
    calibrate_positive,
    calibrate_total,
    gaussian_copula_pair,
    lognormal_sigma_for_cv,
)
from repro.synth.workloads import expand_to_time_series


def optimal_search_ablation(
    n_flows: int = 9,
    n_trials: int = 10,
    n_bundles: int = 3,
    seed: int = 0,
) -> dict:
    """Exhaustive vs DP optimal bundling: profit agreement and wall time."""
    rng = np.random.default_rng(seed)
    model = CEDDemand(alpha=1.2)
    exhaustive = OptimalBundling(exhaustive_limit=n_flows)
    dp = OptimalBundling(exhaustive_limit=0)
    worst_gap = 0.0
    time_exhaustive = 0.0
    time_dp = 0.0
    for _ in range(n_trials):
        demands = rng.lognormal(1.0, 1.2, n_flows)
        costs = rng.uniform(0.5, 6.0, n_flows)
        valuations = model.fit_valuations(demands, 20.0)
        inputs = BundlingInputs(
            model=model,
            demands=demands,
            valuations=valuations,
            costs=costs,
            potential_profits=model.potential_profits(valuations, costs),
        )
        start = time.perf_counter()
        exhaustive_profit = evaluate_partition(
            model, valuations, costs, exhaustive.bundle(inputs, n_bundles)
        )
        time_exhaustive += time.perf_counter() - start
        start = time.perf_counter()
        dp_profit = evaluate_partition(
            model, valuations, costs, dp.bundle(inputs, n_bundles)
        )
        time_dp += time.perf_counter() - start
        gap = (exhaustive_profit - dp_profit) / abs(exhaustive_profit)
        worst_gap = max(worst_gap, gap)
    return {
        "n_flows": n_flows,
        "n_trials": n_trials,
        "n_bundles": n_bundles,
        "worst_relative_gap": worst_gap,
        "time_exhaustive_s": time_exhaustive,
        "time_dp_s": time_dp,
        "speedup": time_exhaustive / max(time_dp, 1e-9),
    }


def _correlated_flows(
    rng: np.random.Generator, n_flows: int, rho: float
) -> FlowSet:
    """EU-ISP-shaped flows with demand/distance copula correlation rho."""
    if rho != 0.0:
        u_demand, u_distance = gaussian_copula_pair(rng, n_flows, rho)
    else:
        u_demand = rng.uniform(size=n_flows)
        u_distance = rng.uniform(size=n_flows)
    from scipy.stats import norm

    raw_q = np.exp(lognormal_sigma_for_cv(1.71) * norm.ppf(np.clip(u_demand, 1e-12, 1 - 1e-12)))
    raw_d = np.exp(lognormal_sigma_for_cv(0.70) * norm.ppf(np.clip(u_distance, 1e-12, 1 - 1e-12)))
    demands = calibrate_total(raw_q, cv_target=1.71, total_target=37_000.0)
    distances = calibrate_positive(
        raw_d, mean_target=54.0, cv_target=0.70, weights=demands
    )
    return FlowSet.from_columns(demands, distances)


def weighting_ablation(
    rhos: Sequence[float] = (-0.8, -0.5, -0.2, 0.0, 0.3),
    n_flows: int = 120,
    n_bundles: int = 3,
    seed: int = 11,
) -> dict:
    """When does profit-weighting beat cost-weighting?

    Sweeps the demand/distance correlation and reports each strategy's
    capture at a fixed tier budget, plus the optimal reference.  Strongly
    negative rho (heavy local traffic) is where weight-based heuristics
    shine, because demand rank then predicts cost rank.

    Deliberately serial: the rho points consume one shared RNG stream in
    order, so fanning them out would change the generated markets (unlike
    the granularity/sampling ablations, whose points are self-seeded).
    """
    rng = np.random.default_rng(seed)
    strategies = (
        OptimalBundling(),
        ProfitWeightedBundling(),
        CostWeightedBundling(),
        DemandWeightedBundling(),
    )
    series: dict = {strategy.name: [] for strategy in strategies}
    for rho in rhos:
        flows = _correlated_flows(rng, n_flows, rho)
        market = Market(
            flows, CEDDemand(1.1), LinearDistanceCost(0.2), blended_rate=20.0
        )
        for strategy in strategies:
            outcome = market.tiered_outcome(strategy, n_bundles)
            series[strategy.name].append(outcome.profit_capture)
    return {"rhos": list(rhos), "n_bundles": n_bundles, "capture": series}


def granularity_ablation(
    flow_counts: Sequence[int] = (25, 50, 100, 200, 400),
    dataset: str = "eu_isp",
    n_bundles: int = 3,
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> dict:
    """Profit capture vs measurement granularity (destination aggregates).

    The paper aggregates flows for tractability; this checks the tiering
    conclusions are not an artifact of the aggregation level.  Each
    aggregation level is an independent work unit, so the whole ablation
    is one runtime fan-out.
    """
    specs = [
        spec_for(
            config,
            dataset,
            family="ced",
            n_flows=n_flows,
            strategies=("profit-weighted",),
            bundle_counts=(n_bundles,),
        )
        for n_flows in flow_counts
    ]
    results = run_specs(
        specs, jobs=config.jobs, use_cache=config.cache, executor=config.executor
    )
    return {
        "flow_counts": list(flow_counts),
        "n_bundles": n_bundles,
        "capture": [r["capture"]["profit-weighted"][0] for r in results],
    }


def sampling_ablation(
    intervals: Sequence[int] = (1, 10, 100, 1000, 5000),
    dataset: str = "eu_isp",
    n_flows: int = 80,
    n_bundles: int = 3,
    seed: int = 19,
    jobs: "int | None" = None,
    executor: "str | None" = None,
) -> dict:
    """How NetFlow sampling coarseness affects tier design and billing.

    Runs the full measurement pipeline at each 1-in-N sampling interval
    and reports (a) the measured aggregate's error against ground truth,
    (b) the profit capture of a 3-tier design built from the measured
    matrix, and (c) the revenue error of billing the *designed* rates on
    the measured volumes versus the true ones.  Shows how far the 1-in-N
    export practice (§4.1.1) can be pushed before pricing decisions
    degrade.
    """
    points = [
        {
            "dataset": dataset,
            "n_flows": n_flows,
            "seed": seed,
            "interval": int(interval),
            "n_bundles": n_bundles,
        }
        for interval in intervals
    ]
    with get_executor(backend=executor, jobs=jobs) as ex:
        rows = ex.map(_sampling_point, points)
    return {"dataset": dataset, "n_bundles": n_bundles, "rows": rows}


def _sampling_point(point: dict) -> dict:
    """One sampling interval of :func:`sampling_ablation` (a work unit).

    Module-level (and dict-argumented) so the runtime can ship it to a
    worker process; each point regenerates its own trace, so points are
    fully independent and order-insensitive.
    """
    from repro.synth.trace import generate_network_trace

    trace = generate_network_trace(
        point["dataset"],
        n_flows=point["n_flows"],
        seed=point["seed"],
        sampling_interval=point["interval"],
    )
    truth_mbps = sum(flow.demand_mbps for flow in trace.ground_truth)
    flows = trace.to_flowset()
    measured_mbps = float(flows.demands.sum())
    market = Market(
        flows,
        CEDDemand(1.1),
        LinearDistanceCost(0.2),
        blended_rate=20.0,
    )
    outcome = market.tiered_outcome(
        ProfitWeightedBundling(), point["n_bundles"]
    )
    return {
        "interval": point["interval"],
        "flows_measured": market.n_flows,
        "flows_true": len(trace.ground_truth),
        "volume_error": abs(measured_mbps - truth_mbps) / truth_mbps,
        "capture": outcome.profit_capture,
    }


def billing_ablation(
    dataset: str = "eu_isp",
    n_flows: int = 60,
    peak_to_trough: float = 3.0,
    seed: int = 5,
) -> dict:
    """95th-percentile vs mean-rate billing on diurnal traffic.

    Expands the static matrix into a day of 5-minute samples and compares
    the billable Mbps under the two §5.2 rating conventions, per flow and
    in aggregate.  Percentile billing always bills at least the mean; the
    premium grows with the peak-to-trough ratio.
    """
    flows = load_dataset(dataset, n_flows=n_flows, seed=seed)
    series = expand_to_time_series(
        flows,
        n_intervals=288,
        interval_seconds=300.0,
        peak_to_trough=peak_to_trough,
        noise_cv=0.1,
        seed=seed,
    )
    mean_rates = series.rates_mbps.mean(axis=0)
    p95_rates = np.array(
        [series.percentile_rate(j, 95.0) for j in range(len(flows))]
    )
    return {
        "peak_to_trough": peak_to_trough,
        "total_mean_mbps": float(mean_rates.sum()),
        "total_p95_mbps": float(p95_rates.sum()),
        "premium": float(p95_rates.sum() / mean_rates.sum()),
        "per_flow_premium_min": float((p95_rates / mean_rates).min()),
        "per_flow_premium_max": float((p95_rates / mean_rates).max()),
    }
