"""Table drivers (the paper's Table 1)."""

from __future__ import annotations

from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.synth.datasets import DATASET_NAMES, table1_row


def table1_data(config: ExperimentConfig = DEFAULT_CONFIG) -> "list[dict]":
    """Paper-vs-synthetic Table 1 rows for all three datasets."""
    return [
        table1_row(name, n_flows=config.n_flows, seed=config.seed)
        for name in DATASET_NAMES
    ]


def render_table1(rows: "list[dict]") -> str:
    """Side-by-side Table 1 as aligned text."""
    header = (
        f"{'dataset':<10} {'date':<10} "
        f"{'w-avg dist (mi)':>18} {'dist CV':>12} "
        f"{'aggregate (Gbps)':>18} {'demand CV':>12}"
    )
    lines = ["Table 1: data sets (paper / measured)", header, "-" * len(header)]
    for row in rows:
        paper = row["paper"]
        measured = row["measured"]
        lines.append(
            f"{row['dataset']:<10} {row['date']:<10} "
            f"{paper['w_avg_distance_miles']:>7.0f} /{measured['w_avg_distance_miles']:>8.1f} "
            f"{paper['distance_cv']:>5.2f} /{measured['distance_cv']:>5.2f} "
            f"{paper['aggregate_gbps']:>7.0f} /{measured['aggregate_gbps']:>8.1f} "
            f"{paper['demand_cv']:>5.2f} /{measured['demand_cv']:>5.2f}"
        )
    return "\n".join(lines)
