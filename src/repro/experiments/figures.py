"""Drivers regenerating every figure of the paper's evaluation.

Each ``figureN_data`` function computes the series plotted in the paper's
Figure N and returns plain dictionaries (no plotting dependency); the
matching benchmark prints them as aligned tables and EXPERIMENTS.md
records paper-vs-measured values.
"""

from __future__ import annotations

import numpy as np

from repro.core.bundling import paper_strategies
from repro.core.ced import CEDDemand
from repro.core.cost import fit_concave_price_curve
from repro.core.logit import LogitDemand
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.runner import spec_for
from repro.peering.bypass import BypassTable, failure_window
from repro.peering.worked_example import figure1_example
from repro.runtime.spec import run_specs
from repro.synth.datasets import DATASET_NAMES

#: Figure-legend names of the six strategies, in plot order.
PAPER_STRATEGY_NAMES = tuple(s.name for s in paper_strategies())

#: Display names used in the paper's panels.
DATASET_TITLES = {
    "eu_isp": "European ISP",
    "internet2": "Internet2",
    "cdn": "International CDN",
}


# ----------------------------------------------------------------------
# Figure 1 — blended vs tiered pricing on two flows
# ----------------------------------------------------------------------


def figure1_data() -> dict:
    """Blended vs two-tier pricing on the Figure 1 example market."""
    example = figure1_example()
    return {
        "blended": {
            "price": example.blended.prices[0],
            "quantities": example.blended.quantities,
            "profit": example.blended.profit,
            "surplus": example.blended.consumer_surplus,
        },
        "tiered": {
            "prices": example.tiered.prices,
            "quantities": example.tiered.quantities,
            "profit": example.tiered.profit,
            "surplus": example.tiered.consumer_surplus,
        },
        "profit_gain": example.profit_gain,
        "surplus_gain": example.surplus_gain,
    }


# ----------------------------------------------------------------------
# Figure 2 — direct peering bypass regimes
# ----------------------------------------------------------------------


def figure2_data(
    blended_rate: float = 10.0,
    isp_unit_cost: float = 4.0,
    margin: float = 0.25,
    accounting_overhead: float = 0.5,
    n_points: int = 25,
) -> dict:
    """Sweep the customer's private-link cost across the bypass regimes."""
    costs = np.linspace(0.5, 1.5 * blended_rate, n_points)
    points = BypassTable.evaluate(
        blended_rate=blended_rate,
        isp_unit_costs=isp_unit_cost,
        direct_unit_costs=costs,
        margin=margin,
        accounting_overhead=accounting_overhead,
    ).points()
    lo, hi = failure_window(
        blended_rate, isp_unit_cost, margin, accounting_overhead
    )
    return {
        "blended_rate": blended_rate,
        "tiered_price": lo,
        "failure_window": (lo, hi),
        "points": [
            {
                "c_direct": p.direct_unit_cost,
                "outcome": p.outcome,
                "loss_per_mbps": p.efficiency_loss_per_mbps,
            }
            for p in points
        ],
    }


# ----------------------------------------------------------------------
# Figures 3-5 — demand-model shapes
# ----------------------------------------------------------------------


def figure3_data(
    alphas: "tuple[float, ...]" = (1.4, 3.3),
    valuation: float = 1.0,
    n_points: int = 60,
) -> dict:
    """Feasible CED demand curves: quantity vs price for each alpha."""
    prices = np.linspace(0.05, 4.0, n_points)
    curves = {}
    for alpha in alphas:
        model = CEDDemand(alpha)
        v = np.full(prices.size, valuation)
        curves[f"alpha={alpha}"] = list(
            zip(prices.tolist(), model.quantities(v, prices).tolist())
        )
    return {"prices": prices.tolist(), "curves": curves}


def figure4_data(
    alpha: float = 2.0,
    valuation: float = 1.0,
    costs: "tuple[float, ...]" = (1.0, 2.0),
    n_points: int = 120,
) -> dict:
    """Profit vs price for two identical-demand flows of different cost."""
    model = CEDDemand(alpha)
    prices = np.linspace(0.25, 7.0, n_points)
    curves = {}
    maxima = {}
    for cost in costs:
        profits = [
            model.profit(
                np.array([valuation]), np.array([cost]), np.array([p])
            )
            for p in prices
        ]
        curves[f"c={cost}"] = list(zip(prices.tolist(), profits))
        p_star = float(model.optimal_prices(np.array([valuation]), np.array([cost]))[0])
        maxima[f"c={cost}"] = {
            "price": p_star,
            "profit": model.profit(
                np.array([valuation]), np.array([cost]), np.array([p_star])
            ),
        }
    return {"curves": curves, "maxima": maxima}


def figure5_data(
    alphas: "tuple[float, ...]" = (1.0, 2.0),
    valuations: "tuple[float, float]" = (1.6, 1.0),
    fixed_price: float = 1.0,
    n_points: int = 60,
) -> dict:
    """Logit demand for flow 2 as its price varies, flow 1 fixed at $1."""
    prices = np.linspace(0.0 + 1e-6, 4.0, n_points)
    v = np.asarray(valuations, dtype=float)
    curves = {}
    for alpha in alphas:
        model = LogitDemand(alpha=alpha, s0=0.2)
        quantities = []
        for p2 in prices:
            shares = model.shares(v, np.array([fixed_price, p2]))
            quantities.append(float(shares[1]))
        curves[f"alpha={alpha}"] = list(zip(prices.tolist(), quantities))
    return {"prices": prices.tolist(), "curves": curves}


# ----------------------------------------------------------------------
# Figure 6 — concave price-vs-distance fits
# ----------------------------------------------------------------------

#: The paper's reported per-dataset fits, y = a*log_b(x) + c over
#: normalized distance/price.  Only k = a/ln(b) and c are identifiable.
FIGURE6_REPORTED = {
    "itu": {"a": 0.43, "b": 9.43, "c": 0.99},
    "ntt": {"a": 0.03, "b": 1.12, "c": 1.01},
}


def figure6_data(n_points: int = 24, noise: float = 0.015, seed: int = 6) -> dict:
    """Fit the concave curve to synthetic ITU/NTT-shaped price lists.

    The proprietary price lists are replaced by points generated from the
    paper's own reported curves plus small deterministic noise; the fit
    must recover the generating slope ``k = a / ln(b)`` and intercept.
    """
    rng = np.random.default_rng(seed)
    results = {}
    for name, params in FIGURE6_REPORTED.items():
        k_true = params["a"] / np.log(params["b"])
        # Normalized distances spanning (0, 1]; prices from the curve.
        x = np.linspace(0.02, 1.0, n_points)
        y = k_true * np.log(x) + params["c"] + rng.normal(0.0, noise, n_points)
        fit = fit_concave_price_curve(x, y)
        results[name] = {
            "k_true": float(k_true),
            "c_true": params["c"],
            "k_fit": fit.k,
            "c_fit": fit.c,
            "residual": fit.residual,
            "a_for_reported_base": fit.a_for_base(params["b"]),
        }
    return results


# ----------------------------------------------------------------------
# Figures 8 & 9 — profit capture by strategy, three networks
# ----------------------------------------------------------------------


def figure8_data(config: ExperimentConfig = DEFAULT_CONFIG) -> dict:
    """Profit capture per bundling strategy, CED demand, linear cost."""
    return _strategy_panels("ced", config)


def figure9_data(config: ExperimentConfig = DEFAULT_CONFIG) -> dict:
    """Profit capture per bundling strategy, logit demand, linear cost.

    The paper's Figure 9 omits the demand-weighted curve; we compute it
    anyway (it is cheap) so the panels are directly comparable.
    """
    return _strategy_panels("logit", config)


def _strategy_panels(family: str, config: ExperimentConfig) -> dict:
    """One spec per dataset (all six strategies), fanned out together."""
    specs = [
        spec_for(
            config, dataset, family=family, strategies=PAPER_STRATEGY_NAMES
        )
        for dataset in DATASET_NAMES
    ]
    results = run_specs(
        specs, jobs=config.jobs, use_cache=config.cache, executor=config.executor
    )
    return {
        dataset: {
            "title": DATASET_TITLES[dataset],
            "bundle_counts": list(config.bundle_counts),
            "capture": result["capture"],
        }
        for dataset, result in zip(DATASET_NAMES, results)
    }
