"""Exception hierarchy for the transit-pricing reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.

Each subclass also maps to a distinct CLI exit code (see
:data:`EXIT_CODES` and :func:`exit_code_for`), so scripts wrapping
``python -m repro`` can branch on *why* a run failed without parsing
stderr.  Codes start at 10 to stay clear of the conventional 1 (generic
failure) and 2 (argparse usage error).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ModelParameterError(ReproError, ValueError):
    """A demand/cost model parameter is outside its valid domain.

    Examples: a constant-elasticity sensitivity ``alpha <= 1`` (the monopoly
    price would be unbounded), a logit outside-share ``s0`` outside ``(0, 1)``,
    or a non-positive blended rate ``P0``.
    """


class CalibrationError(ReproError, RuntimeError):
    """Fitting valuations or the cost scale ``gamma`` to data failed.

    Raised when the observed data is incompatible with the assumption that
    the ISP is profit-maximizing at the blended rate (e.g. the implied
    ``gamma`` is non-positive) or when a numeric solver does not converge.
    """


class BundlingError(ReproError, ValueError):
    """A bundling strategy received an invalid request.

    Examples: asking for zero bundles, more bundles than flows when the
    strategy cannot emit empty bundles, or a flow set with no flows.
    """


class OptimizationError(ReproError, RuntimeError):
    """A price-optimization routine failed to converge."""


class ConfigurationError(ReproError, ValueError):
    """A runtime/environment setting is malformed.

    Examples: a non-integer ``REPRO_JOBS`` value, or a checkpoint file
    written with incompatible pipeline settings.
    """


class DataError(ReproError, ValueError):
    """Raw measurement data (NetFlow records, GeoIP entries, topology
    elements) is malformed or inconsistent."""


class TopologyError(ReproError, ValueError):
    """A network topology is malformed (unknown PoP, disconnected route,
    negative link length, ...)."""


class AccountingError(ReproError, RuntimeError):
    """Tier accounting failed (unknown tier tag, no matching route, or an
    inconsistent billing window)."""


class SnapshotUnavailableError(ReproError, RuntimeError):
    """No pricing snapshot is ready to answer quotes.

    Raised by the strict quoting paths when the snapshot registry is empty
    (nothing published yet, or the registry was deliberately cleared).  The
    lenient paths degrade to the blended rate instead of raising.
    """


class QuoteTimeoutError(ReproError, TimeoutError):
    """A quote request missed its deadline.

    Raised to the submitting caller when the quote server could not answer
    within the request's timeout — either the response never arrived, or
    the request expired in the admission queue before a worker reached it.
    """


class ExecutorError(ReproError, RuntimeError):
    """A sweep executor failed to run its work units.

    Covers backend-level failures that are not a property of any single
    spec: an unusable backend configuration, a worker reporting an
    execution exception, or a coordinator shut down mid-sweep.
    """


class WorkerLostError(ExecutorError):
    """A worker died holding a work-unit lease and retries are exhausted.

    Raised by the distributed sweep backends instead of hanging when the
    processes executing a spec keep disappearing (crash, SIGKILL, network
    partition).  Completed results were already spilled to the disk
    cache, so rerunning the sweep resumes where it left off.
    """


class MechanismError(ReproError, ValueError):
    """A pricing mechanism was misconfigured or degenerated.

    Examples: an unregistered ``--mechanism`` name, a spot auction with
    zero windows, or a paid-peering negotiation with no eligible (or no
    transit-side) flows on the given traffic matrix.
    """


#: Exception class -> CLI exit code, one distinct nonzero code per
#: :class:`ReproError` subclass (the base class itself backstops at 10).
#: Codes are part of the CLI contract — append, never renumber.
EXIT_CODES = {
    ReproError: 10,
    ModelParameterError: 11,
    CalibrationError: 12,
    BundlingError: 13,
    OptimizationError: 14,
    ConfigurationError: 15,
    DataError: 16,
    TopologyError: 17,
    AccountingError: 18,
    SnapshotUnavailableError: 19,
    QuoteTimeoutError: 20,
    ExecutorError: 21,
    WorkerLostError: 22,
    MechanismError: 23,
}


def exit_code_for(exc: BaseException) -> int:
    """The CLI exit code for an exception (most-derived match wins).

    Walking the MRO means a future subclass of, say,
    :class:`CalibrationError` inherits code 12 until it gets its own
    entry; non-:class:`ReproError` exceptions map to 1.
    """
    for klass in type(exc).__mro__:
        if klass in EXIT_CODES:
            return EXIT_CODES[klass]
    return 1
