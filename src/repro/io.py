"""File I/O for traffic matrices and tier designs.

Real deployments do not start from synthetic generators: operators export
traffic matrices from their measurement systems and carry pricing
configurations between tools.  This module provides the two round-trip
formats the library needs:

* **flow CSV** — one row per flow with columns
  ``demand_mbps, distance_miles[, region][, cost_class][, src][, dst]``;
  the natural interchange format for a traffic matrix.
* **tier-design JSON** — rates and destination assignments of a
  :class:`~repro.accounting.tier_designer.TierDesign`, versioned so old
  files keep loading.

All loaders validate eagerly and raise :class:`~repro.errors.DataError`
with the offending line/field, never half-construct an object.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from typing import Union

from repro.accounting.tier_designer import TierDesign
from repro.core.flow import FlowSet
from repro.errors import DataError

#: Schema version written into design files.
DESIGN_FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]

_REQUIRED_COLUMNS = ("demand_mbps", "distance_miles")
_OPTIONAL_COLUMNS = ("region", "cost_class", "src", "dst")


# ----------------------------------------------------------------------
# Flow CSV
# ----------------------------------------------------------------------


def flowset_to_csv(flows: FlowSet) -> str:
    """Serialize a flow set as CSV text (only populated columns)."""
    columns = list(_REQUIRED_COLUMNS)
    optional = {
        "region": flows.regions,
        "cost_class": flows.classes,
        "src": flows.srcs,
        "dst": flows.dsts,
    }
    columns.extend(name for name in _OPTIONAL_COLUMNS if optional[name] is not None)

    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(columns)
    for i in range(len(flows)):
        row = [repr(float(flows.demands[i])), repr(float(flows.distances[i]))]
        for name in columns[2:]:
            value = optional[name][i]
            row.append("" if value is None else str(value))
        writer.writerow(row)
    return buffer.getvalue()


def flowset_from_csv(text: str) -> FlowSet:
    """Parse a flow-set CSV produced by :func:`flowset_to_csv` (or by any
    tool emitting the same columns)."""
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration as exc:
        raise DataError("flow CSV is empty") from exc
    header = [name.strip() for name in header]
    for required in _REQUIRED_COLUMNS:
        if required not in header:
            raise DataError(f"flow CSV is missing the {required!r} column")
    unknown = set(header) - set(_REQUIRED_COLUMNS) - set(_OPTIONAL_COLUMNS)
    if unknown:
        raise DataError(f"flow CSV has unknown columns: {sorted(unknown)}")
    index = {name: header.index(name) for name in header}

    demands, distances = [], []
    optional: dict = {name: [] for name in _OPTIONAL_COLUMNS if name in header}
    for line_number, row in enumerate(reader, start=2):
        if not row or all(not cell.strip() for cell in row):
            continue
        if len(row) != len(header):
            raise DataError(
                f"flow CSV line {line_number}: expected {len(header)} cells, "
                f"got {len(row)}"
            )
        try:
            demands.append(float(row[index["demand_mbps"]]))
            distances.append(float(row[index["distance_miles"]]))
        except ValueError as exc:
            raise DataError(f"flow CSV line {line_number}: {exc}") from exc
        for name, values in optional.items():
            cell = row[index[name]].strip()
            values.append(cell or None)
    if not demands:
        raise DataError("flow CSV contains no data rows")
    return FlowSet(
        demands_mbps=demands,
        distances_miles=distances,
        regions=optional.get("region"),
        classes=optional.get("cost_class"),
        srcs=optional.get("src"),
        dsts=optional.get("dst"),
    )


def save_flowset(flows: FlowSet, path: PathLike) -> pathlib.Path:
    """Write a flow set to a CSV file."""
    path = pathlib.Path(path)
    path.write_text(flowset_to_csv(flows))
    return path


def load_flowset(path: PathLike) -> FlowSet:
    """Read a flow set from a CSV file."""
    path = pathlib.Path(path)
    if not path.exists():
        raise DataError(f"no such flow CSV: {path}")
    return flowset_from_csv(path.read_text())


# ----------------------------------------------------------------------
# Tier-design JSON
# ----------------------------------------------------------------------


def design_to_json(design: TierDesign) -> str:
    """Serialize a tier design (stable key order, human-diffable)."""
    payload = {
        "format_version": DESIGN_FORMAT_VERSION,
        "provider_asn": design.provider_asn,
        "rates": {str(tier): rate for tier, rate in sorted(design.rates.items())},
        "tier_of_destination": dict(sorted(design.tier_of_destination.items())),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def design_from_json(text: str) -> TierDesign:
    """Parse a tier design written by :func:`design_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DataError(f"malformed design JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise DataError("design JSON must be an object")
    version = payload.get("format_version")
    if version != DESIGN_FORMAT_VERSION:
        raise DataError(
            f"unsupported design format_version {version!r} "
            f"(this build reads {DESIGN_FORMAT_VERSION})"
        )
    try:
        rates = {
            int(tier): float(rate) for tier, rate in payload["rates"].items()
        }
        assignments = {
            str(dst): int(tier)
            for dst, tier in payload["tier_of_destination"].items()
        }
        asn = int(payload["provider_asn"])
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise DataError(f"design JSON is missing or corrupt: {exc!r}") from exc
    missing = sorted(set(assignments.values()) - set(rates))
    if missing:
        raise DataError(f"design JSON assigns tiers with no rate: {missing}")
    if any(rate <= 0 for rate in rates.values()):
        raise DataError("design JSON contains non-positive rates")
    return TierDesign(
        provider_asn=asn, rates=rates, tier_of_destination=assignments
    )


def save_design(design: TierDesign, path: PathLike) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(design_to_json(design))
    return path


def load_design(path: PathLike) -> TierDesign:
    path = pathlib.Path(path)
    if not path.exists():
        raise DataError(f"no such design file: {path}")
    return design_from_json(path.read_text())
