"""Traffic-flow containers.

The paper's unit of analysis is the *flow*: an aggregate of traffic from the
ISP's customers toward one destination (or destination group), characterized
by the demand observed at the current blended rate and by the distance the
traffic travels inside the ISP (which proxies for delivery cost, §4.1.1).

:class:`FlowSet` (alias :data:`FlowTable`) is the columnar
struct-of-arrays container the demand/cost/bundling machinery operates
on: float64 ``demands``/``distances`` columns plus optional label columns
stored as ``int32`` *code* arrays with interned label tables:

* ``region_codes`` — indices into the fixed :data:`VALID_REGIONS` table
  (``metro`` / ``national`` / ``international``);
* ``class_codes`` / ``class_table`` — free-form cost-class labels (e.g.
  ``"on-net"``/``"off-net"``) that class-aware bundling must not mix;
* ``src_codes`` / ``dst_codes`` — endpoint identifiers, interned so
  grouping (one flow per destination, design replay) is a pure integer
  operation.

Code ``-1`` (:data:`NO_LABEL`) means "no label".  The legacy tuple
accessors (``regions`` / ``classes`` / ``srcs`` / ``dsts``) decode the
code columns lazily and are kept for compatibility, as are per-record
:class:`Flow` objects (``FlowSet.from_flows``, indexing, iteration, and
the deprecated :attr:`FlowSet.flows` property) — million-flow paths
should stay on the code arrays and never materialize ``Flow`` records.
"""

from __future__ import annotations

import dataclasses
import math
import warnings
from collections.abc import Iterable, Iterator, Sequence
from typing import Optional

import numpy as np

from repro.errors import DataError

#: Region label for traffic that stays within one metropolitan area.
METRO = "metro"
#: Region label for traffic that stays within one country.
NATIONAL = "national"
#: Region label for traffic that crosses a national boundary.
INTERNATIONAL = "international"

VALID_REGIONS = (METRO, NATIONAL, INTERNATIONAL)

#: Sentinel code meaning "no label" in a label-code column.
NO_LABEL = -1

#: Fixed code of each region label (the region table never varies).
REGION_CODE = {label: code for code, label in enumerate(VALID_REGIONS)}


@dataclasses.dataclass(frozen=True)
class Flow:
    """One traffic aggregate toward a destination.

    Per-record objects are the *compatibility* view of a
    :class:`FlowSet`; bulk paths operate on the columnar arrays and
    never construct ``Flow`` instances.

    Attributes:
        demand_mbps: Traffic volume observed at the blended rate, in Mbit/s.
        distance_miles: Distance the traffic travels (cost proxy).  The
            paper computes it per network: entry-to-exit geographic distance
            (EU ISP), GeoIP source-destination distance (CDN), or the sum of
            traversed link lengths (Internet2).
        region: Optional region label (``metro``/``national``/``international``).
        cost_class: Optional cost-class label (e.g. ``on-net``/``off-net``).
        src: Optional source endpoint identifier (IP, PoP code, ...).
        dst: Optional destination endpoint identifier.
    """

    demand_mbps: float
    distance_miles: float
    region: Optional[str] = None
    cost_class: Optional[str] = None
    src: Optional[str] = None
    dst: Optional[str] = None

    def __post_init__(self) -> None:
        if not math.isfinite(self.demand_mbps) or self.demand_mbps <= 0:
            raise DataError(f"flow demand must be positive, got {self.demand_mbps!r}")
        if not math.isfinite(self.distance_miles) or self.distance_miles < 0:
            raise DataError(
                f"flow distance must be non-negative, got {self.distance_miles!r}"
            )
        if self.region is not None and self.region not in VALID_REGIONS:
            raise DataError(
                f"unknown region {self.region!r}; expected one of {VALID_REGIONS}"
            )


# ----------------------------------------------------------------------
# Label interning
# ----------------------------------------------------------------------


def encode_labels(
    labels: Optional[Sequence[Optional[str]]], n: int, name: str = "labels"
) -> "tuple[Optional[np.ndarray], tuple]":
    """Intern a label sequence into ``(codes, table)``.

    ``codes`` is an ``int32`` array where ``codes[i]`` indexes ``table``
    (first-appearance order) and :data:`NO_LABEL` stands for ``None``.
    An absent or all-``None`` column collapses to ``(None, ())``.
    """
    if labels is None:
        return None, ()
    seq = list(labels)
    if len(seq) != n:
        raise DataError(f"{name} has length {len(seq)}, expected {n}")
    index: dict = {}
    codes = np.empty(n, dtype=np.int32)
    for i, label in enumerate(seq):
        if label is None:
            codes[i] = NO_LABEL
            continue
        code = index.get(label)
        if code is None:
            code = len(index)
            index[label] = code
        codes[i] = code
    if not index:
        return None, ()
    codes.setflags(write=False)
    return codes, tuple(index)


def decode_labels(
    codes: Optional[np.ndarray], table: Sequence[Optional[str]]
) -> Optional[tuple]:
    """Materialize a code column back into a tuple of labels (or ``None``)."""
    if codes is None:
        return None
    lut = np.empty(len(table) + 1, dtype=object)
    for i, label in enumerate(table):
        lut[i] = label
    lut[len(table)] = None  # NO_LABEL indexes the trailing slot
    return tuple(lut[codes])


def encode_regions(
    regions: Optional[Sequence[Optional[str]]], n: int
) -> Optional[np.ndarray]:
    """Region labels to codes over the fixed :data:`VALID_REGIONS` table."""
    codes, table = encode_labels(regions, n, "regions")
    if codes is None:
        return None
    remap = np.empty(len(table), dtype=np.int32)
    bad = []
    for i, label in enumerate(table):
        fixed = REGION_CODE.get(label)
        if fixed is None:
            bad.append(label)
            remap[i] = NO_LABEL
        else:
            remap[i] = fixed
    if bad:
        raise DataError(f"unknown region labels: {sorted(bad)}")
    out = np.where(codes < 0, np.int32(NO_LABEL), remap[np.maximum(codes, 0)])
    out = out.astype(np.int32, copy=False)
    out.setflags(write=False)
    return out


def _validated_numeric_columns(
    demands_mbps: Sequence[float], distances_miles: Sequence[float]
) -> "tuple[np.ndarray, np.ndarray]":
    """Validate and freeze the two numeric columns (the slow, safe path)."""
    demands = np.asarray(demands_mbps, dtype=float)
    distances = np.asarray(distances_miles, dtype=float)
    if demands.ndim != 1 or distances.ndim != 1:
        raise DataError("demands and distances must be one-dimensional")
    if demands.shape != distances.shape:
        raise DataError(
            f"demands ({demands.shape}) and distances ({distances.shape}) "
            "must have the same length"
        )
    if demands.size == 0:
        raise DataError("a FlowSet must contain at least one flow")
    if not np.all(np.isfinite(demands)) or np.any(demands <= 0):
        raise DataError("all demands must be finite and positive")
    if not np.all(np.isfinite(distances)) or np.any(distances < 0):
        raise DataError("all distances must be finite and non-negative")
    demands.setflags(write=False)
    distances.setflags(write=False)
    return demands, distances


def _adopt_codes(
    codes, n: int, table_size: int, name: str, validate: bool
) -> Optional[np.ndarray]:
    """Normalize one label-code column for columnar construction."""
    if codes is None:
        return None
    codes = np.asarray(codes)
    if validate:
        if codes.dtype.kind not in "iu":
            raise DataError(f"{name} must be an integer array, got {codes.dtype}")
        if codes.shape != (n,):
            raise DataError(f"{name} has length {codes.size}, expected {n}")
        if codes.size and (
            int(codes.min()) < NO_LABEL or int(codes.max()) >= table_size
        ):
            raise DataError(
                f"{name} contains codes outside [{NO_LABEL}, {table_size - 1}]"
            )
    if codes.size and int(codes.max()) < 0:
        return None  # all unlabeled: collapse, like the label-sequence path
    codes = codes.astype(np.int32, copy=False)
    codes.setflags(write=False)
    return codes


class FlowSet:
    """An immutable columnar (struct-of-arrays) collection of flows.

    Numeric columns are read-only float64 arrays; label columns are
    read-only ``int32`` code arrays over interned tables (see the module
    docstring).  The demand-model, cost, and bundling code operate on
    these arrays directly, so a million-flow set is a handful of numpy
    allocations rather than a million Python objects.
    """

    def __init__(
        self,
        demands_mbps: Sequence[float],
        distances_miles: Sequence[float],
        regions: Optional[Sequence[Optional[str]]] = None,
        classes: Optional[Sequence[Optional[str]]] = None,
        srcs: Optional[Sequence[Optional[str]]] = None,
        dsts: Optional[Sequence[Optional[str]]] = None,
    ) -> None:
        demands, distances = _validated_numeric_columns(
            demands_mbps, distances_miles
        )
        n = demands.size
        self._demands = demands
        self._distances = distances
        self._region_codes = encode_regions(regions, n)
        self._class_codes, self._class_table = encode_labels(classes, n, "classes")
        self._src_codes, self._src_table = encode_labels(srcs, n, "srcs")
        self._dst_codes, self._dst_table = encode_labels(dsts, n, "dsts")
        self._decoded: dict = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_columns(
        cls,
        demands_mbps: Sequence[float],
        distances_miles: Sequence[float],
        *,
        region_codes: Optional[np.ndarray] = None,
        class_codes: Optional[np.ndarray] = None,
        class_table: Sequence[str] = (),
        src_codes: Optional[np.ndarray] = None,
        src_table: Sequence[str] = (),
        dst_codes: Optional[np.ndarray] = None,
        dst_table: Sequence[str] = (),
        validate: bool = True,
    ) -> "FlowSet":
        """Zero-copy columnar construction (the bulk path).

        Adopts the arrays as given — they are marked read-only in place,
        never copied — so generators can emit million-flow sets without
        materializing any :class:`Flow` objects or label tuples.  Region
        codes index :data:`VALID_REGIONS`; the other code columns index
        their accompanying tables, with :data:`NO_LABEL` for ``None``.

        ``validate=False`` is the pre-validated fast path: the caller
        vouches that demands are finite and positive, distances finite
        and non-negative, and codes in range.  :meth:`from_flows` uses it
        because ``Flow.__post_init__`` already validated every record.
        """
        self = object.__new__(cls)
        if validate:
            demands, distances = _validated_numeric_columns(
                demands_mbps, distances_miles
            )
        else:
            demands = np.asarray(demands_mbps, dtype=float)
            distances = np.asarray(distances_miles, dtype=float)
            demands.setflags(write=False)
            distances.setflags(write=False)
        n = demands.size
        self._demands = demands
        self._distances = distances
        self._region_codes = _adopt_codes(
            region_codes, n, len(VALID_REGIONS), "region_codes", validate
        )
        self._class_codes = _adopt_codes(
            class_codes, n, len(class_table), "class_codes", validate
        )
        self._class_table = tuple(class_table) if self._class_codes is not None else ()
        self._src_codes = _adopt_codes(
            src_codes, n, len(src_table), "src_codes", validate
        )
        self._src_table = tuple(src_table) if self._src_codes is not None else ()
        self._dst_codes = _adopt_codes(
            dst_codes, n, len(dst_table), "dst_codes", validate
        )
        self._dst_table = tuple(dst_table) if self._dst_codes is not None else ()
        self._decoded = {}
        return self

    @classmethod
    def from_flows(cls, flows: Iterable[Flow]) -> "FlowSet":
        """Build a :class:`FlowSet` from an iterable of :class:`Flow`.

        ``Flow.__post_init__`` has already validated every record, so
        this takes the pre-validated fast path instead of re-validating
        the assembled arrays.
        """
        flows = list(flows)
        if not flows:
            raise DataError("cannot build a FlowSet from zero flows")
        n = len(flows)
        demands = np.fromiter((f.demand_mbps for f in flows), dtype=float, count=n)
        distances = np.fromiter(
            (f.distance_miles for f in flows), dtype=float, count=n
        )
        region_codes = encode_regions([f.region for f in flows], n)
        class_codes, class_table = encode_labels(
            [f.cost_class for f in flows], n, "classes"
        )
        src_codes, src_table = encode_labels([f.src for f in flows], n, "srcs")
        dst_codes, dst_table = encode_labels([f.dst for f in flows], n, "dsts")
        return cls.from_columns(
            demands,
            distances,
            region_codes=region_codes,
            class_codes=class_codes,
            class_table=class_table,
            src_codes=src_codes,
            src_table=src_table,
            dst_codes=dst_codes,
            dst_table=dst_table,
            validate=False,
        )

    def replace(
        self,
        demands_mbps: Optional[Sequence[float]] = None,
        distances_miles: Optional[Sequence[float]] = None,
        regions: Optional[Sequence[Optional[str]]] = None,
        classes: Optional[Sequence[Optional[str]]] = None,
    ) -> "FlowSet":
        """Return a copy with some columns replaced."""
        demands, distances = _validated_numeric_columns(
            self._demands if demands_mbps is None else demands_mbps,
            self._distances if distances_miles is None else distances_miles,
        )
        n = demands.size
        if n != len(self):
            for name, codes, replacement in (
                ("regions", self._region_codes, regions),
                ("classes", self._class_codes, classes),
                ("srcs", self._src_codes, None),
                ("dsts", self._dst_codes, None),
            ):
                if replacement is None and codes is not None:
                    raise DataError(f"{name} has length {len(self)}, expected {n}")
        region_codes = (
            self._region_codes if regions is None else encode_regions(regions, n)
        )
        if classes is None:
            class_codes, class_table = self._class_codes, self._class_table
        else:
            class_codes, class_table = encode_labels(classes, n, "classes")
        return FlowSet.from_columns(
            demands,
            distances,
            region_codes=region_codes,
            class_codes=class_codes,
            class_table=class_table,
            src_codes=self._src_codes,
            src_table=self._src_table,
            dst_codes=self._dst_codes,
            dst_table=self._dst_table,
            validate=False,
        )

    def subset(self, indices: Sequence[int]) -> "FlowSet":
        """Return the flows at ``indices`` (in that order) as a new set."""
        idx = np.asarray(indices, dtype=int)
        if idx.size == 0:
            raise DataError("cannot build an empty FlowSet subset")

        def pick(codes: Optional[np.ndarray]) -> Optional[np.ndarray]:
            return None if codes is None else codes[idx]

        return FlowSet.from_columns(
            self._demands[idx],
            self._distances[idx],
            region_codes=pick(self._region_codes),
            class_codes=pick(self._class_codes),
            class_table=self._class_table,
            src_codes=pick(self._src_codes),
            src_table=self._src_table,
            dst_codes=pick(self._dst_codes),
            dst_table=self._dst_table,
            validate=False,
        )

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------

    @property
    def demands(self) -> np.ndarray:
        """Per-flow demand in Mbit/s (read-only array)."""
        return self._demands

    @property
    def distances(self) -> np.ndarray:
        """Per-flow distance in miles (read-only array)."""
        return self._distances

    @property
    def region_codes(self) -> Optional[np.ndarray]:
        """Per-flow region codes into :data:`VALID_REGIONS`, or ``None``."""
        return self._region_codes

    @property
    def region_table(self) -> tuple:
        """The region label table (fixed: :data:`VALID_REGIONS`)."""
        return VALID_REGIONS if self._region_codes is not None else ()

    @property
    def class_codes(self) -> Optional[np.ndarray]:
        """Per-flow cost-class codes into :attr:`class_table`, or ``None``."""
        return self._class_codes

    @property
    def class_table(self) -> tuple:
        return self._class_table

    @property
    def src_codes(self) -> Optional[np.ndarray]:
        return self._src_codes

    @property
    def src_table(self) -> tuple:
        return self._src_table

    @property
    def dst_codes(self) -> Optional[np.ndarray]:
        """Per-flow destination codes into :attr:`dst_table`, or ``None``."""
        return self._dst_codes

    @property
    def dst_table(self) -> tuple:
        return self._dst_table

    # -- decoded (compatibility) label views ---------------------------

    @property
    def regions(self) -> Optional[tuple]:
        """Per-flow region labels, or ``None`` if not set (decoded lazily)."""
        return self._decode("regions", self._region_codes, VALID_REGIONS)

    @property
    def classes(self) -> Optional[tuple]:
        """Per-flow cost-class labels, or ``None`` if not set."""
        return self._decode("classes", self._class_codes, self._class_table)

    @property
    def srcs(self) -> Optional[tuple]:
        return self._decode("srcs", self._src_codes, self._src_table)

    @property
    def dsts(self) -> Optional[tuple]:
        return self._decode("dsts", self._dst_codes, self._dst_table)

    def _decode(self, key: str, codes, table) -> Optional[tuple]:
        if codes is None:
            return None
        if key not in self._decoded:
            self._decoded[key] = decode_labels(codes, table)
        return self._decoded[key]

    @property
    def flows(self) -> "list[Flow]":
        """Deprecated: the set materialized as per-record :class:`Flow` objects.

        Kept as a compatibility shim; bulk code should read the columnar
        arrays (``demands`` / ``distances`` / ``*_codes``) instead.
        """
        warnings.warn(
            "FlowSet.flows materializes one Flow object per record; "
            "use the columnar arrays (demands/distances/*_codes) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return [self[i] for i in range(len(self))]

    def __len__(self) -> int:
        return int(self._demands.size)

    def __iter__(self) -> Iterator[Flow]:
        for i in range(len(self)):
            yield self[i]

    def __getitem__(self, i: int) -> Flow:
        return Flow(
            demand_mbps=float(self._demands[i]),
            distance_miles=float(self._distances[i]),
            region=_label_at(self._region_codes, VALID_REGIONS, i),
            cost_class=_label_at(self._class_codes, self._class_table, i),
            src=_label_at(self._src_codes, self._src_table, i),
            dst=_label_at(self._dst_codes, self._dst_table, i),
        )

    def __repr__(self) -> str:
        return (
            f"FlowSet(n={len(self)}, aggregate={self.aggregate_gbps():.3f} Gbps, "
            f"w_avg_distance={self.weighted_average_distance():.1f} mi)"
        )

    # ------------------------------------------------------------------
    # Summary statistics (the columns of the paper's Table 1)
    # ------------------------------------------------------------------

    def aggregate_gbps(self) -> float:
        """Total traffic across all flows in Gbit/s."""
        return float(self._demands.sum()) / 1000.0

    def weighted_average_distance(self) -> float:
        """Demand-weighted average flow distance in miles."""
        return float(np.average(self._distances, weights=self._demands))

    def distance_cv(self) -> float:
        """Demand-weighted coefficient of variation of flow distance."""
        mean = self.weighted_average_distance()
        if mean == 0:
            return 0.0
        var = float(
            np.average((self._distances - mean) ** 2, weights=self._demands)
        )
        return math.sqrt(var) / mean

    def demand_cv(self) -> float:
        """Coefficient of variation of per-flow demand."""
        mean = float(self._demands.mean())
        return float(self._demands.std()) / mean

    def table1_row(self) -> dict:
        """The statistics reported for one dataset in the paper's Table 1."""
        return {
            "w_avg_distance_miles": self.weighted_average_distance(),
            "distance_cv": self.distance_cv(),
            "aggregate_gbps": self.aggregate_gbps(),
            "demand_cv": self.demand_cv(),
        }


def _label_at(codes: Optional[np.ndarray], table: tuple, i: int) -> Optional[str]:
    if codes is None:
        return None
    code = int(codes[i])
    return None if code < 0 else table[code]


#: The columnar container under its struct-of-arrays name.  ``FlowTable``
#: and ``FlowSet`` are the same type; the alias exists so bulk columnar
#: call sites read naturally (``FlowTable.from_columns(...)``).
FlowTable = FlowSet
