"""Traffic-flow containers.

The paper's unit of analysis is the *flow*: an aggregate of traffic from the
ISP's customers toward one destination (or destination group), characterized
by the demand observed at the current blended rate and by the distance the
traffic travels inside the ISP (which proxies for delivery cost, §4.1.1).

:class:`Flow` is a single record; :class:`FlowSet` is the vectorized
container the demand/cost/bundling machinery operates on.  A ``FlowSet``
also carries optional labels used by the region- and destination-type cost
models:

* ``regions`` — ``"metro"`` / ``"national"`` / ``"international"``;
* ``classes`` — free-form cost-class labels (e.g. ``"on-net"``/``"off-net"``)
  that class-aware bundling must not mix.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Iterable, Iterator, Sequence
from typing import Optional

import numpy as np

from repro.errors import DataError

#: Region label for traffic that stays within one metropolitan area.
METRO = "metro"
#: Region label for traffic that stays within one country.
NATIONAL = "national"
#: Region label for traffic that crosses a national boundary.
INTERNATIONAL = "international"

VALID_REGIONS = (METRO, NATIONAL, INTERNATIONAL)


@dataclasses.dataclass(frozen=True)
class Flow:
    """One traffic aggregate toward a destination.

    Attributes:
        demand_mbps: Traffic volume observed at the blended rate, in Mbit/s.
        distance_miles: Distance the traffic travels (cost proxy).  The
            paper computes it per network: entry-to-exit geographic distance
            (EU ISP), GeoIP source-destination distance (CDN), or the sum of
            traversed link lengths (Internet2).
        region: Optional region label (``metro``/``national``/``international``).
        cost_class: Optional cost-class label (e.g. ``on-net``/``off-net``).
        src: Optional source endpoint identifier (IP, PoP code, ...).
        dst: Optional destination endpoint identifier.
    """

    demand_mbps: float
    distance_miles: float
    region: Optional[str] = None
    cost_class: Optional[str] = None
    src: Optional[str] = None
    dst: Optional[str] = None

    def __post_init__(self) -> None:
        if not math.isfinite(self.demand_mbps) or self.demand_mbps <= 0:
            raise DataError(f"flow demand must be positive, got {self.demand_mbps!r}")
        if not math.isfinite(self.distance_miles) or self.distance_miles < 0:
            raise DataError(
                f"flow distance must be non-negative, got {self.distance_miles!r}"
            )
        if self.region is not None and self.region not in VALID_REGIONS:
            raise DataError(
                f"unknown region {self.region!r}; expected one of {VALID_REGIONS}"
            )


class FlowSet:
    """An immutable, vectorized collection of :class:`Flow` records.

    The numeric columns are exposed as read-only numpy arrays so the
    demand-model and bundling code can stay allocation-light.
    """

    def __init__(
        self,
        demands_mbps: Sequence[float],
        distances_miles: Sequence[float],
        regions: Optional[Sequence[Optional[str]]] = None,
        classes: Optional[Sequence[Optional[str]]] = None,
        srcs: Optional[Sequence[Optional[str]]] = None,
        dsts: Optional[Sequence[Optional[str]]] = None,
    ) -> None:
        demands = np.asarray(demands_mbps, dtype=float)
        distances = np.asarray(distances_miles, dtype=float)
        if demands.ndim != 1 or distances.ndim != 1:
            raise DataError("demands and distances must be one-dimensional")
        if demands.shape != distances.shape:
            raise DataError(
                f"demands ({demands.shape}) and distances ({distances.shape}) "
                "must have the same length"
            )
        if demands.size == 0:
            raise DataError("a FlowSet must contain at least one flow")
        if not np.all(np.isfinite(demands)) or np.any(demands <= 0):
            raise DataError("all demands must be finite and positive")
        if not np.all(np.isfinite(distances)) or np.any(distances < 0):
            raise DataError("all distances must be finite and non-negative")

        self._demands = demands
        self._distances = distances
        self._demands.setflags(write=False)
        self._distances.setflags(write=False)

        n = demands.size
        self._regions = _as_label_tuple(regions, n, "regions")
        if self._regions is not None:
            bad = sorted(
                {r for r in self._regions if r is not None and r not in VALID_REGIONS}
            )
            if bad:
                raise DataError(f"unknown region labels: {bad}")
        self._classes = _as_label_tuple(classes, n, "classes")
        self._srcs = _as_label_tuple(srcs, n, "srcs")
        self._dsts = _as_label_tuple(dsts, n, "dsts")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_flows(cls, flows: Iterable[Flow]) -> "FlowSet":
        """Build a :class:`FlowSet` from an iterable of :class:`Flow`."""
        flows = list(flows)
        if not flows:
            raise DataError("cannot build a FlowSet from zero flows")
        return cls(
            demands_mbps=[f.demand_mbps for f in flows],
            distances_miles=[f.distance_miles for f in flows],
            regions=[f.region for f in flows],
            classes=[f.cost_class for f in flows],
            srcs=[f.src for f in flows],
            dsts=[f.dst for f in flows],
        )

    def replace(
        self,
        demands_mbps: Optional[Sequence[float]] = None,
        distances_miles: Optional[Sequence[float]] = None,
        regions: Optional[Sequence[Optional[str]]] = None,
        classes: Optional[Sequence[Optional[str]]] = None,
    ) -> "FlowSet":
        """Return a copy with some columns replaced."""
        return FlowSet(
            demands_mbps=self._demands if demands_mbps is None else demands_mbps,
            distances_miles=(
                self._distances if distances_miles is None else distances_miles
            ),
            regions=self._regions if regions is None else regions,
            classes=self._classes if classes is None else classes,
            srcs=self._srcs,
            dsts=self._dsts,
        )

    def subset(self, indices: Sequence[int]) -> "FlowSet":
        """Return the flows at ``indices`` (in that order) as a new set."""
        idx = np.asarray(indices, dtype=int)
        if idx.size == 0:
            raise DataError("cannot build an empty FlowSet subset")

        def pick(labels: Optional[tuple]) -> Optional[list]:
            if labels is None:
                return None
            return [labels[i] for i in idx]

        return FlowSet(
            demands_mbps=self._demands[idx],
            distances_miles=self._distances[idx],
            regions=pick(self._regions),
            classes=pick(self._classes),
            srcs=pick(self._srcs),
            dsts=pick(self._dsts),
        )

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------

    @property
    def demands(self) -> np.ndarray:
        """Per-flow demand in Mbit/s (read-only array)."""
        return self._demands

    @property
    def distances(self) -> np.ndarray:
        """Per-flow distance in miles (read-only array)."""
        return self._distances

    @property
    def regions(self) -> Optional[tuple]:
        """Per-flow region labels, or ``None`` if not set."""
        return self._regions

    @property
    def classes(self) -> Optional[tuple]:
        """Per-flow cost-class labels, or ``None`` if not set."""
        return self._classes

    @property
    def srcs(self) -> Optional[tuple]:
        return self._srcs

    @property
    def dsts(self) -> Optional[tuple]:
        return self._dsts

    def __len__(self) -> int:
        return int(self._demands.size)

    def __iter__(self) -> Iterator[Flow]:
        for i in range(len(self)):
            yield self[i]

    def __getitem__(self, i: int) -> Flow:
        return Flow(
            demand_mbps=float(self._demands[i]),
            distance_miles=float(self._distances[i]),
            region=None if self._regions is None else self._regions[i],
            cost_class=None if self._classes is None else self._classes[i],
            src=None if self._srcs is None else self._srcs[i],
            dst=None if self._dsts is None else self._dsts[i],
        )

    def __repr__(self) -> str:
        return (
            f"FlowSet(n={len(self)}, aggregate={self.aggregate_gbps():.3f} Gbps, "
            f"w_avg_distance={self.weighted_average_distance():.1f} mi)"
        )

    # ------------------------------------------------------------------
    # Summary statistics (the columns of the paper's Table 1)
    # ------------------------------------------------------------------

    def aggregate_gbps(self) -> float:
        """Total traffic across all flows in Gbit/s."""
        return float(self._demands.sum()) / 1000.0

    def weighted_average_distance(self) -> float:
        """Demand-weighted average flow distance in miles."""
        return float(np.average(self._distances, weights=self._demands))

    def distance_cv(self) -> float:
        """Demand-weighted coefficient of variation of flow distance."""
        mean = self.weighted_average_distance()
        if mean == 0:
            return 0.0
        var = float(
            np.average((self._distances - mean) ** 2, weights=self._demands)
        )
        return math.sqrt(var) / mean

    def demand_cv(self) -> float:
        """Coefficient of variation of per-flow demand."""
        mean = float(self._demands.mean())
        return float(self._demands.std()) / mean

    def table1_row(self) -> dict:
        """The statistics reported for one dataset in the paper's Table 1."""
        return {
            "w_avg_distance_miles": self.weighted_average_distance(),
            "distance_cv": self.distance_cv(),
            "aggregate_gbps": self.aggregate_gbps(),
            "demand_cv": self.demand_cv(),
        }


def _as_label_tuple(
    labels: Optional[Sequence[Optional[str]]], n: int, name: str
) -> Optional[tuple]:
    """Normalize an optional label column to a tuple of length ``n``."""
    if labels is None:
        return None
    labels = tuple(labels)
    if all(label is None for label in labels) and len(labels) == 0:
        return None
    if len(labels) != n:
        raise DataError(f"{name} has length {len(labels)}, expected {n}")
    if all(label is None for label in labels):
        return None
    return labels
