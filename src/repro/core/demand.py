"""Abstract interface shared by the paper's two demand families.

The paper (§3.2) evaluates every pricing question under two demand models:

* **constant-elasticity demand** (:class:`repro.core.ced.CEDDemand`), in
  which flow demands are separable — Eq. 2; and
* **logit demand** (:class:`repro.core.logit.LogitDemand`), in which flows
  compete for a fixed population of consumers — Eq. 6/7.

Both expose the same operations, so calibration, bundling, and the
counterfactual engine (:mod:`repro.core.market`) are written once against
this interface.

Conventions
-----------

* ``valuations``, ``costs``, ``prices`` are 1-D numpy arrays indexed by flow.
* Prices and costs are in $/Mbps/month; demands in Mbps.
* For the logit model every quantity is **per consumer** (population
  ``K = 1``); the caller scales by the fitted population.  Profit *capture*
  — the paper's headline metric — is a ratio, so the scale cancels there.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np


class BundleObjective(abc.ABC):
    """Separable per-bundle score used by the optimal-bundling DP.

    A partition's total score is the sum of its bundles' scores, and total
    ISP profit is monotonically increasing in that total.  For CED the score
    *is* the bundle's profit; for logit it is the bundle's attractiveness
    ``exp(alpha * (v_bundle - c_bundle))`` (see :mod:`repro.core.logit`).

    Implementations precompute prefix sums over a fixed flow order so that
    ``slice_score`` is O(1), making the DP O(n^2 * B) — and the vectorized
    ``slice_scores`` turns each DP cell's scan over candidate cuts into one
    array pass over those same prefixes.
    """

    @abc.abstractmethod
    def slice_score(self, i: int, j: int) -> float:
        """Score of a bundle containing flows ``i..j-1`` of the fixed order."""

    def slice_scores(self, starts: np.ndarray, end: int) -> np.ndarray:
        """Scores of the bundles ``[s, end)`` for each ``s`` in ``starts``.

        The default delegates to ``slice_score``; implementations override
        with a fused array computation over their prefix sums.
        """
        return np.array([self.slice_score(int(s), end) for s in starts])


class DemandModel(abc.ABC):
    """Interface for a calibratable demand family."""

    #: Short machine-readable name (``"ced"`` or ``"logit"``).
    name: str = ""

    # -- fitting (paper §4.1.2, §4.1.3) --------------------------------

    @abc.abstractmethod
    def fit_valuations(self, demands: np.ndarray, blended_rate: float) -> np.ndarray:
        """Recover per-flow valuations from demand observed at ``blended_rate``.

        Assumes the ISP currently charges the single blended rate ``P0``
        for every flow and that the observed demands are the equilibrium
        response to it.
        """

    @abc.abstractmethod
    def fit_gamma(
        self,
        valuations: np.ndarray,
        relative_costs: np.ndarray,
        blended_rate: float,
    ) -> float:
        """Recover the cost scale ``gamma`` mapping relative costs to dollars.

        Assumes the ISP is profit-maximizing: the blended rate ``P0`` is
        the optimal *uniform* price given costs ``gamma * relative_costs``.
        Raises :class:`repro.errors.CalibrationError` when no positive
        ``gamma`` is consistent with that assumption.
        """

    # -- demand / profit / surplus --------------------------------------

    @abc.abstractmethod
    def quantities(self, valuations: np.ndarray, prices: np.ndarray) -> np.ndarray:
        """Per-flow demand at the given prices."""

    @abc.abstractmethod
    def profit(
        self,
        valuations: np.ndarray,
        costs: np.ndarray,
        prices: np.ndarray,
    ) -> float:
        """ISP profit (Eq. 1): sum of (price - cost) * quantity."""

    @abc.abstractmethod
    def consumer_surplus(
        self, valuations: np.ndarray, prices: np.ndarray
    ) -> float:
        """Aggregate consumer surplus at the given prices."""

    # -- pricing ---------------------------------------------------------

    @abc.abstractmethod
    def optimal_prices(
        self, valuations: np.ndarray, costs: np.ndarray
    ) -> np.ndarray:
        """Profit-maximizing per-flow prices (infinitely many tiers)."""

    @abc.abstractmethod
    def uniform_price(self, valuations: np.ndarray, costs: np.ndarray) -> float:
        """Profit-maximizing single (blended) price for all flows."""

    def bundle_prices(
        self,
        valuations: np.ndarray,
        costs: np.ndarray,
        bundles: list,
    ) -> np.ndarray:
        """Profit-maximizing per-flow prices under a bundling constraint.

        ``bundles`` is a partition of flow indices; every flow in a bundle
        must carry the same price.  The default implementation prices each
        bundle with :meth:`uniform_price` on its members, which is exact
        for separable demand (CED).  Non-separable models override it.
        """
        prices = np.empty_like(valuations)
        for members in bundles:
            idx = np.asarray(members, dtype=int)
            prices[idx] = self.uniform_price(valuations[idx], costs[idx])
        return prices

    @abc.abstractmethod
    def potential_profits(
        self, valuations: np.ndarray, costs: np.ndarray
    ) -> np.ndarray:
        """Per-flow profit if each flow were priced alone at its optimum.

        These are the weights of the paper's profit-weighted bundling
        strategy (Eq. 12 for CED, Eq. 13 for logit).
        """

    # -- optimal-bundling support ---------------------------------------

    @abc.abstractmethod
    def bundle_objective(
        self, valuations: np.ndarray, costs: np.ndarray
    ) -> BundleObjective:
        """Build the separable DP objective over flows in the given order."""

    # -- misc ------------------------------------------------------------

    def population(self, demands: np.ndarray) -> float:
        """Scale factor from per-model units to absolute Mbps.

        CED already works in absolute quantities (returns 1.0); the logit
        model works per consumer and overrides this with the fitted
        population ``K``.
        """
        del demands  # unused by scale-free models
        return 1.0

    def describe(self) -> str:
        """Human-readable one-line description of the configured model."""
        return self.name


def as_price_vector(price: float, n: int) -> np.ndarray:
    """Broadcast a scalar blended rate to a per-flow price vector."""
    return np.full(n, float(price))


def validate_positive(value: float, name: str) -> float:
    """Validate that a scalar model parameter is finite and positive."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        from repro.errors import ModelParameterError

        raise ModelParameterError(f"{name} must be finite and positive, got {value}")
    return value


def validate_arrays(
    valuations: np.ndarray,
    costs: Optional[np.ndarray] = None,
    prices: Optional[np.ndarray] = None,
) -> None:
    """Shape/positivity checks shared by both demand models."""
    from repro.errors import ModelParameterError

    v = np.asarray(valuations, dtype=float)
    if v.ndim != 1 or v.size == 0:
        raise ModelParameterError("valuations must be a non-empty 1-D array")
    if not np.all(np.isfinite(v)):
        raise ModelParameterError("valuations must be finite")
    for arr, name in ((costs, "costs"), (prices, "prices")):
        if arr is None:
            continue
        a = np.asarray(arr, dtype=float)
        if a.shape != v.shape:
            raise ModelParameterError(
                f"{name} shape {a.shape} does not match valuations {v.shape}"
            )
        if not np.all(np.isfinite(a)):
            raise ModelParameterError(f"{name} must be finite")
