"""Linear demand (extension — the shape Figure 1 draws).

The paper evaluates under CED and logit demand, but its Figure 1 sketches
the classic straight downward-sloping demand lines.  This module adds
that family behind the same :class:`~repro.core.demand.DemandModel`
interface, as a third robustness check and as the reference example for
plugging custom demand models into the market machinery.

Per flow, ``Q_i(p) = max(0, a_i - b_i p)`` with ``a_i, b_i > 0``.  A
single demand observation cannot identify both coefficients, so the model
carries a **choke multiplier** ``kappa``: every flow's demand is assumed
to reach zero at ``kappa * P0``.  Fitting at the blended rate then gives

    b_i = q_i / ((kappa - 1) P0),      a_i = kappa q_i / (kappa - 1),

and the model stores ``a_i`` as the "valuation" vector (with ``b_i``
recoverable because ``a_i / b_i = kappa P0`` is common to all flows).

Closed forms (interior optimum, ``c < a/b``):

* per-flow price  ``p* = (a/b + c) / 2``  (halfway to the choke price);
* bundle price    ``P* = (sum a + sum b c) / (2 sum b)``;
* per-flow max profit  ``pi* = (a - b c)^2 / (4 b)``;
* consumer surplus  ``CS = q^2 / (2 b)`` (the classic triangle).

Profit-maximization consistency at the blended rate requires
``kappa < 2``: with all demand lines vanishing at ``kappa P0``, the
blended optimum ``P* = (kappa P0 + mean cost)/2`` can only equal ``P0``
for positive costs when ``kappa < 2``.
"""

from __future__ import annotations

import numpy as np

from repro.core.demand import (
    BundleObjective,
    DemandModel,
    validate_arrays,
    validate_positive,
)
from repro.errors import CalibrationError, ModelParameterError


class LinearDemand(DemandModel):
    """Linear demand with a common choke-price multiplier.

    Args:
        kappa: Demand reaches zero at ``kappa * P0``; must lie in
            ``(1, 2)`` — above 1 so the observed demand is positive at
            ``P0``, below 2 so a positive cost scale can rationalize the
            blended rate (see module docstring).
        blended_rate_hint: The ``P0`` the valuations were fitted at; set
            by :meth:`fit_valuations` and needed to recover ``b_i``.
    """

    name = "linear"

    def __init__(self, kappa: float = 1.5) -> None:
        kappa = float(kappa)
        if not 1.0 < kappa < 2.0:
            raise ModelParameterError(
                f"kappa must lie in (1, 2) for a calibratable linear market, "
                f"got {kappa}"
            )
        self.kappa = kappa
        self._choke_price: "float | None" = None

    # ------------------------------------------------------------------
    # Coefficients
    # ------------------------------------------------------------------

    @property
    def choke_price(self) -> float:
        if self._choke_price is None:
            raise CalibrationError(
                "linear demand must be fitted before use "
                "(call fit_valuations first)"
            )
        return self._choke_price

    def slopes(self, valuations: np.ndarray) -> np.ndarray:
        """``b_i = a_i / choke_price``."""
        return np.asarray(valuations, dtype=float) / self.choke_price

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit_valuations(self, demands: np.ndarray, blended_rate: float) -> np.ndarray:
        """Intercepts ``a_i`` such that ``Q_i(P0) = q_i`` and ``Q_i`` hits
        zero at ``kappa * P0``."""
        p0 = validate_positive(blended_rate, "blended_rate")
        q = np.asarray(demands, dtype=float)
        if q.ndim != 1 or q.size == 0 or np.any(q <= 0) or not np.all(np.isfinite(q)):
            raise CalibrationError("demands must be finite, positive, 1-D")
        self._choke_price = self.kappa * p0
        return self.kappa * q / (self.kappa - 1.0)

    def fit_gamma(
        self,
        valuations: np.ndarray,
        relative_costs: np.ndarray,
        blended_rate: float,
    ) -> float:
        """Solve ``P*(gamma) = P0`` for the cost scale.

        ``P* = (sum a + gamma sum b f) / (2 sum b) = P0`` with
        ``a_i = b_i kappa P0`` gives
        ``gamma = (2 - kappa) P0 sum b / sum (b f)``; positive iff
        ``kappa < 2`` (enforced at construction).
        """
        validate_arrays(valuations, relative_costs)
        p0 = validate_positive(blended_rate, "blended_rate")
        if abs(self.choke_price - self.kappa * p0) > 1e-9 * self.choke_price:
            raise CalibrationError(
                "fit_gamma must use the same blended rate as fit_valuations"
            )
        f = np.asarray(relative_costs, dtype=float)
        if np.any(f <= 0):
            raise CalibrationError("relative costs must be positive")
        b = self.slopes(valuations)
        gamma = (2.0 - self.kappa) * p0 * float(b.sum()) / float(np.sum(b * f))
        if gamma <= 0 or not np.isfinite(gamma):
            raise CalibrationError(f"fitted gamma is not positive: {gamma}")
        return gamma

    # ------------------------------------------------------------------
    # Demand / profit / surplus
    # ------------------------------------------------------------------

    def quantities(self, valuations: np.ndarray, prices: np.ndarray) -> np.ndarray:
        validate_arrays(valuations, prices=prices)
        a = np.asarray(valuations, dtype=float)
        p = np.asarray(prices, dtype=float)
        if np.any(p < 0):
            raise ModelParameterError("prices must be non-negative")
        return np.maximum(0.0, a - self.slopes(valuations) * p)

    def profit(
        self,
        valuations: np.ndarray,
        costs: np.ndarray,
        prices: np.ndarray,
    ) -> float:
        q = self.quantities(valuations, prices)
        return float(np.sum(q * (np.asarray(prices) - np.asarray(costs))))

    def consumer_surplus(self, valuations: np.ndarray, prices: np.ndarray) -> float:
        """Triangle area under each line above the price: ``q^2 / (2b)``."""
        q = self.quantities(valuations, prices)
        b = self.slopes(valuations)
        return float(np.sum(q * q / (2.0 * b)))

    # ------------------------------------------------------------------
    # Pricing
    # ------------------------------------------------------------------

    def optimal_prices(self, valuations: np.ndarray, costs: np.ndarray) -> np.ndarray:
        """``p* = (choke + c)/2`` (since ``a/b`` is the common choke).

        A flow whose cost meets or exceeds the choke price cannot be
        served profitably; the formula then prices it at or above the
        choke, its quantity clamps to zero, and it contributes zero
        profit — the economically correct "don't serve" outcome.
        """
        validate_arrays(valuations, costs)
        c = np.asarray(costs, dtype=float)
        if np.any(c <= 0):
            raise ModelParameterError("costs must be positive")
        return (self.choke_price + c) / 2.0

    def uniform_price(self, valuations: np.ndarray, costs: np.ndarray) -> float:
        """``P* = (sum a + sum b c) / (2 sum b)``."""
        validate_arrays(valuations, costs)
        b = self.slopes(valuations)
        a = np.asarray(valuations, dtype=float)
        c = np.asarray(costs, dtype=float)
        return float((a.sum() + np.sum(b * c)) / (2.0 * b.sum()))

    def potential_profits(
        self, valuations: np.ndarray, costs: np.ndarray
    ) -> np.ndarray:
        """``pi* = (a - b c)^2 / (4 b)`` per flow."""
        validate_arrays(valuations, costs)
        a = np.asarray(valuations, dtype=float)
        b = self.slopes(valuations)
        c = np.asarray(costs, dtype=float)
        margin = np.maximum(0.0, a - b * c)
        profits = margin * margin / (4.0 * b)
        return np.maximum(profits, np.finfo(float).tiny)

    # ------------------------------------------------------------------
    # Optimal-bundling DP objective
    # ------------------------------------------------------------------

    def bundle_objective(
        self, valuations: np.ndarray, costs: np.ndarray
    ) -> "LinearBundleObjective":
        return LinearBundleObjective(self, valuations, costs)

    def describe(self) -> str:
        return f"linear demand (kappa={self.kappa})"

    def __repr__(self) -> str:
        return f"LinearDemand(kappa={self.kappa})"


class LinearBundleObjective(BundleObjective):
    """O(1) bundle-profit evaluation over a fixed flow order.

    A bundle's optimally-priced profit is
    ``(A + BC)^2 / (4B) - sum(a c)`` with ``A = sum a``, ``B = sum b``,
    ``BC = sum b c`` — all prefix-summable.  Total linear-market profit is
    the sum of bundle profits (separable demand), so the DP applies.

    Because every flow shares one choke price, all quantities are
    positive below it and zero above: a bundle whose unconstrained
    optimum lands at or past the choke (its weighted cost meets the
    choke) is unservable and scores zero.
    """

    def __init__(
        self, model: LinearDemand, valuations: np.ndarray, costs: np.ndarray
    ) -> None:
        a = np.asarray(valuations, dtype=float)
        b = model.slopes(valuations)
        c = np.asarray(costs, dtype=float)
        self._choke = model.choke_price
        self._a_prefix = np.concatenate(([0.0], np.cumsum(a)))
        self._b_prefix = np.concatenate(([0.0], np.cumsum(b)))
        self._bc_prefix = np.concatenate(([0.0], np.cumsum(b * c)))
        self._ac_prefix = np.concatenate(([0.0], np.cumsum(a * c)))

    def slice_score(self, i: int, j: int) -> float:
        a_sum = self._a_prefix[j] - self._a_prefix[i]
        b_sum = self._b_prefix[j] - self._b_prefix[i]
        bc_sum = self._bc_prefix[j] - self._bc_prefix[i]
        ac_sum = self._ac_prefix[j] - self._ac_prefix[i]
        if b_sum <= 0:
            return 0.0
        optimum = (a_sum + bc_sum) / (2.0 * b_sum)
        if optimum >= self._choke:
            # Concave profit on [0, choke] is maximized at the boundary,
            # where every quantity (hence the profit) is zero.
            return 0.0
        return (a_sum + bc_sum) ** 2 / (4.0 * b_sum) - ac_sum

    def slice_scores(self, starts: np.ndarray, end: int) -> np.ndarray:
        a_sum = self._a_prefix[end] - self._a_prefix[starts]
        b_sum = self._b_prefix[end] - self._b_prefix[starts]
        bc_sum = self._bc_prefix[end] - self._bc_prefix[starts]
        ac_sum = self._ac_prefix[end] - self._ac_prefix[starts]
        with np.errstate(divide="ignore", invalid="ignore"):
            optimum = (a_sum + bc_sum) / (2.0 * b_sum)
            scores = (a_sum + bc_sum) ** 2 / (4.0 * b_sum) - ac_sum
        return np.where((b_sum <= 0) | (optimum >= self._choke), 0.0, scores)
