"""Constant-elasticity demand (paper §3.2.1).

The constant-elasticity demand (CED) model derives from the alpha-fair
utility family.  Demand for flow ``i`` at unit price ``p_i`` is

.. math::  Q_i(p_i) = (v_i / p_i)^{\\alpha}            \\qquad (Eq. 2)

with price sensitivity ``alpha > 1`` and valuation coefficient ``v_i > 0``.
Demands are *separable*: each flow's quantity depends only on its own price,
which models customers with no substitute for the destination.

Closed forms implemented here (with the paper's equation numbers):

* per-flow profit-maximizing price ``p* = alpha * c / (alpha - 1)`` (Eq. 4);
* profit-maximizing price of a bundle priced uniformly (Eq. 5);
* per-flow *potential profit*, the profit-weighted bundling weight (Eq. 12);
* valuation fit ``v_i = P0 * q_i^(1/alpha)`` (§4.1.2 — the paper's printed
  formula divides by ``P0``; inverting Eq. 2 at price ``P0`` multiplies.
  See DESIGN.md §5);
* cost-scale fit ``gamma`` such that ``P0`` is the optimal blended rate
  (§4.1.3), which simplifies to
  ``gamma = P0 * (alpha-1)/alpha * sum(q) / sum(f * q)``;
* consumer surplus ``CS_i = p_i * q_i / (alpha - 1)``, obtained by
  integrating the inverse demand curve above the price (used to reproduce
  the surplus numbers in the paper's Figure 1).
"""

from __future__ import annotations

import numpy as np

from repro.core.demand import (
    BundleObjective,
    DemandModel,
    validate_arrays,
    validate_positive,
)
from repro.errors import CalibrationError, ModelParameterError


class CEDDemand(DemandModel):
    """Constant-elasticity demand with sensitivity ``alpha > 1``.

    Args:
        alpha: Price sensitivity.  Values just above 1 model inelastic
            customers; large values model customers with cheap substitutes.
            Must exceed 1, otherwise the monopoly price (Eq. 4) is unbounded.
    """

    name = "ced"

    def __init__(self, alpha: float) -> None:
        alpha = float(alpha)
        if not np.isfinite(alpha) or alpha <= 1.0:
            raise ModelParameterError(
                f"CED requires alpha > 1 (finite monopoly price), got {alpha}"
            )
        self.alpha = alpha

    # ------------------------------------------------------------------
    # Fitting (§4.1.2, §4.1.3)
    # ------------------------------------------------------------------

    def fit_valuations(self, demands: np.ndarray, blended_rate: float) -> np.ndarray:
        """Invert Eq. 2 at the blended rate: ``v_i = P0 * q_i^(1/alpha)``."""
        p0 = validate_positive(blended_rate, "blended_rate")
        q = np.asarray(demands, dtype=float)
        if np.any(q <= 0) or not np.all(np.isfinite(q)):
            raise CalibrationError("demands must be finite and positive")
        return p0 * q ** (1.0 / self.alpha)

    def fit_gamma(
        self,
        valuations: np.ndarray,
        relative_costs: np.ndarray,
        blended_rate: float,
    ) -> float:
        """Solve Eq. 5 for ``gamma`` with ``c_i = gamma * f_i`` and ``P* = P0``.

        Substituting ``v_i^alpha = P0^alpha * q_i`` shows the fit reduces to
        ``gamma = P0 (alpha-1)/alpha * sum(v^a) / sum(f v^a)``.
        """
        validate_arrays(valuations, relative_costs)
        p0 = validate_positive(blended_rate, "blended_rate")
        v = np.asarray(valuations, dtype=float)
        f = np.asarray(relative_costs, dtype=float)
        if np.any(f <= 0):
            raise CalibrationError("relative costs must be positive to fit gamma")
        # Work with normalized v to avoid overflow of v**alpha at large alpha.
        w = (v / v.max()) ** self.alpha
        denom = float(np.sum(f * w))
        if denom <= 0:
            raise CalibrationError("degenerate relative costs: sum(f * v^a) <= 0")
        gamma = p0 * (self.alpha - 1.0) / self.alpha * float(np.sum(w)) / denom
        if gamma <= 0 or not np.isfinite(gamma):
            raise CalibrationError(f"fitted gamma is not positive: {gamma}")
        return gamma

    # ------------------------------------------------------------------
    # Demand / profit / surplus
    # ------------------------------------------------------------------

    def quantities(self, valuations: np.ndarray, prices: np.ndarray) -> np.ndarray:
        """Eq. 2: ``Q_i = (v_i / p_i)^alpha``."""
        validate_arrays(valuations, prices=prices)
        v = np.asarray(valuations, dtype=float)
        p = np.asarray(prices, dtype=float)
        if np.any(p <= 0):
            raise ModelParameterError("prices must be positive")
        return (v / p) ** self.alpha

    def profit(
        self,
        valuations: np.ndarray,
        costs: np.ndarray,
        prices: np.ndarray,
    ) -> float:
        """Eq. 3: ``sum_i (v_i/p_i)^alpha * (p_i - c_i)``."""
        q = self.quantities(valuations, prices)
        return float(np.sum(q * (np.asarray(prices) - np.asarray(costs))))

    def consumer_surplus(self, valuations: np.ndarray, prices: np.ndarray) -> float:
        """Area under the inverse demand curve above price.

        For ``Q = (v/p)^alpha`` the inverse demand is ``p(q) = v q^{-1/alpha}``
        and the integral evaluates to ``CS_i = p_i q_i / (alpha - 1)``.
        """
        q = self.quantities(valuations, prices)
        return float(np.sum(np.asarray(prices) * q)) / (self.alpha - 1.0)

    # ------------------------------------------------------------------
    # Pricing
    # ------------------------------------------------------------------

    def optimal_prices(self, valuations: np.ndarray, costs: np.ndarray) -> np.ndarray:
        """Eq. 4: constant markup over cost, ``p* = alpha c / (alpha - 1)``."""
        validate_arrays(valuations, costs)
        c = np.asarray(costs, dtype=float)
        if np.any(c <= 0):
            raise ModelParameterError("costs must be positive")
        return self.alpha * c / (self.alpha - 1.0)

    def uniform_price(self, valuations: np.ndarray, costs: np.ndarray) -> float:
        """Eq. 5: optimal single price for a bundle of flows.

        ``P* = alpha * sum(c v^a) / ((alpha-1) * sum(v^a))`` — the Eq. 4
        markup applied to a v^alpha-weighted average cost.
        """
        validate_arrays(valuations, costs)
        v = np.asarray(valuations, dtype=float)
        c = np.asarray(costs, dtype=float)
        w = (v / v.max()) ** self.alpha
        return self.alpha / (self.alpha - 1.0) * float(np.sum(c * w) / np.sum(w))

    def potential_profits(
        self, valuations: np.ndarray, costs: np.ndarray
    ) -> np.ndarray:
        """Eq. 12: profit of flow ``i`` priced alone at its optimum.

        ``pi_i = v_i^alpha / alpha * (alpha c_i / (alpha-1))^(1-alpha)``.
        """
        validate_arrays(valuations, costs)
        v = np.asarray(valuations, dtype=float)
        c = np.asarray(costs, dtype=float)
        p_star = self.optimal_prices(valuations, costs)
        return (v / p_star) ** self.alpha * (p_star - c)

    # ------------------------------------------------------------------
    # Optimal-bundling DP objective
    # ------------------------------------------------------------------

    def bundle_objective(
        self, valuations: np.ndarray, costs: np.ndarray
    ) -> "CEDBundleObjective":
        return CEDBundleObjective(self.alpha, valuations, costs)

    def describe(self) -> str:
        return f"constant-elasticity demand (alpha={self.alpha})"

    def __repr__(self) -> str:
        return f"CEDDemand(alpha={self.alpha})"


class CEDBundleObjective(BundleObjective):
    """O(1) bundle-profit evaluation over a fixed flow order.

    Under CED, total profit is the sum over bundles of each bundle's own
    profit, and a bundle's optimally-priced profit depends on its members
    only through ``sum(v^a)`` and ``sum(c v^a)``.  Prefix sums of those two
    series make any contiguous slice's profit O(1).
    """

    def __init__(self, alpha: float, valuations: np.ndarray, costs: np.ndarray) -> None:
        self.alpha = alpha
        v = np.asarray(valuations, dtype=float)
        c = np.asarray(costs, dtype=float)
        # Normalize to tame v**alpha for large alpha; the normalization is a
        # global scale on the objective and does not change the argmax.
        w = (v / v.max()) ** alpha
        self._w_prefix = np.concatenate(([0.0], np.cumsum(w)))
        self._cw_prefix = np.concatenate(([0.0], np.cumsum(c * w)))
        self._scale = float(v.max())

    def slice_score(self, i: int, j: int) -> float:
        """Optimally-priced profit of a bundle of flows ``i..j-1``.

        With ``W = sum(v^a)`` and ``CW = sum(c v^a)``, the Eq. 5 price is
        ``P = a/(a-1) * CW/W`` and the bundle's profit simplifies to
        ``W * P^-a * (P - CW/W) = W * P^(1-a) / a``.
        """
        w_sum = self._w_prefix[j] - self._w_prefix[i]
        cw_sum = self._cw_prefix[j] - self._cw_prefix[i]
        if w_sum <= 0:
            return 0.0
        avg_cost = cw_sum / w_sum
        price = self.alpha / (self.alpha - 1.0) * avg_cost
        return w_sum * self._scale**self.alpha * price**-self.alpha * (price - avg_cost)

    def slice_scores(self, starts: np.ndarray, end: int) -> np.ndarray:
        w_sum = self._w_prefix[end] - self._w_prefix[starts]
        cw_sum = self._cw_prefix[end] - self._cw_prefix[starts]
        with np.errstate(divide="ignore", invalid="ignore"):
            avg_cost = cw_sum / w_sum
            price = self.alpha / (self.alpha - 1.0) * avg_cost
            scores = (
                w_sum
                * self._scale**self.alpha
                * price**-self.alpha
                * (price - avg_cost)
            )
        return np.where(w_sum <= 0, 0.0, scores)
