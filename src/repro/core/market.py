"""The calibrated transit market and counterfactual engine (paper §3-4).

:class:`Market` ties the pieces together, mirroring the paper's Figure 7
pipeline:

1. **Cost** — a :class:`~repro.core.cost.CostModel` maps flow distances
   (and labels) to relative costs ``f_i``.
2. **Demand** — a :class:`~repro.core.demand.DemandModel` fits per-flow
   valuations ``v_i`` from the demand observed at the blended rate ``P0``,
   then fits the dollar scale ``gamma`` under the assumption that the ISP
   is already profit-maximizing at ``P0``; unit costs are
   ``c_i = gamma * f_i``.
3. **Bundling** — a :class:`~repro.core.bundling.BundlingStrategy`
   partitions the flows into ``B`` tiers; each tier is priced at its
   profit-maximizing uniform price; the result is scored by *profit
   capture*.

Profit capture (§4.2.2) is
``(pi_new - pi_original) / (pi_max - pi_original)`` where ``pi_original``
is profit at the blended rate and ``pi_max`` is profit with per-flow
(infinitely tiered) pricing.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.core.bundling import BundlingInputs, BundlingStrategy
from repro.core.cost import CostModel
from repro.core.demand import DemandModel, as_price_vector, validate_positive
from repro.core.flow import FlowSet
from repro.errors import ModelParameterError
from repro.obs import METRICS

#: Treat a max-vs-blended profit gap below this relative size as "no gap".
_CAPTURE_EPS = 1e-12


@dataclasses.dataclass(frozen=True)
class TierSummary:
    """One pricing tier of a counterfactual outcome."""

    price: float
    n_flows: int
    demand_mbps: float
    mean_cost: float

    @property
    def margin(self) -> float:
        """Average per-unit margin of the tier at its price."""
        return self.price - self.mean_cost


@dataclasses.dataclass(frozen=True)
class TieredOutcome:
    """Result of one bundling counterfactual.

    Attributes:
        strategy: Name of the bundling strategy used.
        n_bundles: The tier budget requested (the partition may use fewer).
        bundles: The partition, as index arrays into the market's flows.
        prices: Per-flow prices (equal within each bundle).
        profit: Absolute ISP profit at those prices ($/month).
        profit_capture: Fraction of the blended-to-max profit gap closed.
        consumer_surplus: Aggregate customer surplus at those prices.
        tiers: Per-tier summaries sorted by price.
    """

    strategy: str
    n_bundles: int
    bundles: list
    prices: np.ndarray
    profit: float
    profit_capture: float
    consumer_surplus: float
    tiers: "list[TierSummary]"

    @property
    def welfare(self) -> float:
        """Social welfare: ISP profit plus consumer surplus."""
        return self.profit + self.consumer_surplus


class Market:
    """A transit market calibrated to observed traffic.

    Args:
        flows: The observed traffic (demand + distance per flow).
        demand_model: CED or logit demand.
        cost_model: One of the §3.3 cost models.
        blended_rate: The current single price ``P0`` ($/Mbps/month).

    Raises:
        CalibrationError: If the observed data is inconsistent with the
            ISP profit-maximizing at ``P0`` (see the demand models).
    """

    def __init__(
        self,
        flows: FlowSet,
        demand_model: DemandModel,
        cost_model: CostModel,
        blended_rate: float = 20.0,
    ) -> None:
        METRICS.incr("markets_built")
        self.blended_rate = validate_positive(blended_rate, "blended_rate")
        self.demand_model = demand_model
        self.cost_model = cost_model

        costed = cost_model.prepare(flows)
        self.flows = costed.flows
        self.relative_costs = costed.relative_costs
        self.class_codes = costed.class_codes
        self.class_table = costed.class_table
        self._costed = costed  # classes label tuple decoded lazily

        demands = self.flows.demands
        self.valuations = demand_model.fit_valuations(demands, self.blended_rate)
        self.gamma = demand_model.fit_gamma(
            self.valuations, self.relative_costs, self.blended_rate
        )
        self.costs = self.gamma * self.relative_costs
        if np.any(self.costs >= self.blended_rate):
            # Not an error — blended-rate pricing can sell some flows below
            # cost (that inefficiency is the paper's point) — but flag it.
            self.flows_below_cost = int(np.sum(self.costs >= self.blended_rate))
        else:
            self.flows_below_cost = 0
        self._scale = demand_model.population(demands)
        # Per-market memo for the shared aggregates every counterfactual
        # re-reads (blended/max profit, bundling inputs).  The calibrated
        # market is immutable after construction, so these never go stale.
        self._memo: dict = {}

    # ------------------------------------------------------------------
    # Reference profits
    # ------------------------------------------------------------------

    @property
    def n_flows(self) -> int:
        return len(self.flows)

    @property
    def classes(self) -> "Optional[tuple]":
        """Cost-class labels as a tuple (decoded lazily; compat view)."""
        return self._costed.classes

    def blended_prices(self) -> np.ndarray:
        return as_price_vector(self.blended_rate, self.n_flows)

    def blended_profit(self) -> float:
        """ISP profit at the current blended rate (``pi_original``).

        Memoized: every :meth:`tiered_outcome` re-reads it via
        :meth:`profit_capture`, and the market never changes.
        """
        if "blended_profit" not in self._memo:
            self._memo["blended_profit"] = self._scale * self.demand_model.profit(
                self.valuations, self.costs, self.blended_prices()
            )
        return self._memo["blended_profit"]

    def max_profit(self) -> float:
        """Profit with per-flow optimal prices (``pi_max``, infinite tiers).

        Memoized — the per-flow price optimization (a fixed point under
        logit demand) is the most expensive shared aggregate.
        """
        if "max_profit" not in self._memo:
            prices = self.demand_model.optimal_prices(self.valuations, self.costs)
            self._memo["max_profit"] = self._scale * self.demand_model.profit(
                self.valuations, self.costs, prices
            )
        return self._memo["max_profit"]

    def optimal_flow_prices(self) -> np.ndarray:
        """The per-flow profit-maximizing price vector."""
        return self.demand_model.optimal_prices(self.valuations, self.costs)

    def blended_surplus(self) -> float:
        """Consumer surplus at the blended rate."""
        return self._scale * self.demand_model.consumer_surplus(
            self.valuations, self.blended_prices()
        )

    def quantities(self, prices: np.ndarray) -> np.ndarray:
        """Absolute per-flow demand (Mbps) at the given prices."""
        return self._scale * self.demand_model.quantities(self.valuations, prices)

    def profit_at(self, prices: np.ndarray) -> float:
        """Absolute ISP profit at an arbitrary per-flow price vector."""
        return self._scale * self.demand_model.profit(
            self.valuations, self.costs, prices
        )

    def profit_capture(self, profit: float) -> float:
        """Map an absolute profit to the paper's capture metric."""
        original = self.blended_profit()
        maximum = self.max_profit()
        gap = maximum - original
        if abs(gap) <= _CAPTURE_EPS * max(1.0, abs(maximum)):
            return 1.0
        return (profit - original) / gap

    # ------------------------------------------------------------------
    # Counterfactuals
    # ------------------------------------------------------------------

    def bundling_inputs(self) -> BundlingInputs:
        """Snapshot consumed by bundling strategies.

        Memoized: the potential-profit vector is shared by every strategy
        and bundle count, and the snapshot's arrays are read-only.
        """
        if "bundling_inputs" not in self._memo:
            self._memo["bundling_inputs"] = BundlingInputs(
                model=self.demand_model,
                demands=self.flows.demands,
                valuations=self.valuations,
                costs=self.costs,
                potential_profits=self.demand_model.potential_profits(
                    self.valuations, self.costs
                ),
                class_codes=self.class_codes,
                class_table=self.class_table,
            )
        return self._memo["bundling_inputs"]

    def tiered_outcome(
        self, strategy: BundlingStrategy, n_bundles: int
    ) -> TieredOutcome:
        """Run one counterfactual: bundle, price, and score."""
        if n_bundles < 1:
            raise ModelParameterError(f"n_bundles must be >= 1, got {n_bundles}")
        bundles = strategy.bundle(self.bundling_inputs(), n_bundles)
        prices = self.demand_model.bundle_prices(self.valuations, self.costs, bundles)
        profit = self.profit_at(prices)
        surplus = self._scale * self.demand_model.consumer_surplus(
            self.valuations, prices
        )
        quantities = self.quantities(prices)
        tiers = sorted(
            (
                TierSummary(
                    price=float(prices[members[0]]),
                    n_flows=int(members.size),
                    demand_mbps=float(np.sum(quantities[members])),
                    mean_cost=float(np.mean(self.costs[members])),
                )
                for members in bundles
            ),
            key=lambda t: t.price,
        )
        return TieredOutcome(
            strategy=strategy.name,
            n_bundles=n_bundles,
            bundles=bundles,
            prices=prices,
            profit=profit,
            profit_capture=self.profit_capture(profit),
            consumer_surplus=surplus,
            tiers=tiers,
        )

    def capture_curve(
        self,
        strategy: BundlingStrategy,
        bundle_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    ) -> "list[TieredOutcome]":
        """Profit capture as the tier budget grows (one figure line)."""
        return [self.tiered_outcome(strategy, b) for b in bundle_counts]

    def describe(self) -> str:
        return (
            f"Market(n={self.n_flows}, {self.demand_model.describe()}, "
            f"{self.cost_model.describe()}, P0=${self.blended_rate}/Mbps, "
            f"gamma={self.gamma:.4g})"
        )

    def __repr__(self) -> str:
        return self.describe()


def capture_table(
    market: Market,
    strategies: Sequence[BundlingStrategy],
    bundle_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
) -> dict:
    """Capture curves for several strategies (one paper-figure panel).

    Returns a mapping ``strategy name -> list of profit captures`` aligned
    with ``bundle_counts``.
    """
    return {
        strategy.name: [
            outcome.profit_capture
            for outcome in market.capture_curve(strategy, bundle_counts)
        ]
        for strategy in strategies
    }
