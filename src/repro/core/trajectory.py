"""Multi-year transit-market trajectories (the paper's opening context).

The paper opens with the market fact that drives everything else: transit
prices "are falling by about 30 % per year" while demand keeps growing.
This module simulates that trajectory for a tiered ISP: each year the
blended reference rate declines, demand responds (CED elasticity) and
grows exogenously, the market is *re-calibrated*, and the tier design is
re-derived — exactly the annual re-pricing loop an operator would run
with this library.

Outputs per year: the blended rate, total demand, blended and tiered
profit, the tier prices, and profit capture — showing how the value of
tiering evolves as the market commoditizes.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.core.bundling import BundlingStrategy, ProfitWeightedBundling
from repro.core.ced import CEDDemand
from repro.core.cost import CostModel, LinearDistanceCost
from repro.core.flow import FlowSet
from repro.core.market import Market
from repro.errors import ModelParameterError


@dataclasses.dataclass(frozen=True)
class YearOutcome:
    """One simulated year."""

    year: int
    blended_rate: float
    total_demand_mbps: float
    blended_profit: float
    tiered_profit: float
    profit_capture: float
    tier_prices: tuple

    @property
    def tiering_premium(self) -> float:
        """Fractional profit gain of tiering over the blended rate."""
        if self.blended_profit <= 0:
            return 0.0
        return self.tiered_profit / self.blended_profit - 1.0


def simulate_price_decline(
    flows: FlowSet,
    years: int = 5,
    initial_rate: float = 20.0,
    annual_price_decline: float = 0.30,
    annual_demand_growth: float = 0.25,
    alpha: float = 1.1,
    n_bundles: int = 3,
    cost_model: "CostModel | None" = None,
    strategy: "BundlingStrategy | None" = None,
    cost_decline: float = 0.0,
) -> "list[YearOutcome]":
    """Simulate annual repricing under commoditization.

    Each year ``t``:

    1. the blended rate falls to ``P_t = P_0 (1 - decline)^t``;
    2. demand responds with CED elasticity, ``q * (P_{t-1}/P_t)^alpha``,
       and grows exogenously by ``annual_demand_growth``;
    3. the market is recalibrated at ``P_t`` (relative costs optionally
       decline too — fiber gets cheaper) and ``n_bundles`` tiers are
       re-derived with ``strategy``.

    Args:
        flows: Year-0 traffic at ``initial_rate``.
        years: Number of simulated years (>= 1), year 0 included.
        annual_price_decline: Fractional blended-rate decline per year
            (the paper's market observation is ~0.30).
        annual_demand_growth: Exogenous demand growth per year, applied
            on top of the elastic response.
        cost_decline: Optional fractional decline of the *distance
            contribution* to relative cost (set > 0 to model cheaper
            long-haul capacity compressing the cost spread over time).

    Returns:
        One :class:`YearOutcome` per year, year 0 first.
    """
    if years < 1:
        raise ModelParameterError(f"years must be >= 1, got {years}")
    if not 0.0 <= annual_price_decline < 1.0:
        raise ModelParameterError("annual_price_decline must be in [0, 1)")
    if annual_demand_growth < 0.0:
        raise ModelParameterError("annual_demand_growth must be >= 0")
    if not 0.0 <= cost_decline < 1.0:
        raise ModelParameterError("cost_decline must be in [0, 1)")
    strategy = strategy or ProfitWeightedBundling()
    model = CEDDemand(alpha=alpha)

    outcomes = []
    demands = np.asarray(flows.demands, dtype=float).copy()
    distances = np.asarray(flows.distances, dtype=float).copy()
    rate = float(initial_rate)
    for year in range(years):
        if year > 0:
            new_rate = rate * (1.0 - annual_price_decline)
            # Elastic response to the cheaper transit + exogenous growth.
            demands = demands * (rate / new_rate) ** alpha
            demands = demands * (1.0 + annual_demand_growth)
            rate = new_rate
            if cost_decline > 0.0:
                distances = distances * (1.0 - cost_decline)
        year_flows = flows.replace(
            demands_mbps=demands, distances_miles=distances
        )
        year_cost_model = cost_model or LinearDistanceCost(theta=0.2)
        market = Market(
            year_flows, model, year_cost_model, blended_rate=rate
        )
        outcome = market.tiered_outcome(strategy, n_bundles)
        outcomes.append(
            YearOutcome(
                year=year,
                blended_rate=rate,
                total_demand_mbps=float(demands.sum()),
                blended_profit=market.blended_profit(),
                tiered_profit=outcome.profit,
                profit_capture=outcome.profit_capture,
                tier_prices=tuple(
                    sorted(float(t.price) for t in outcome.tiers)
                ),
            )
        )
    return outcomes


def render_trajectory(outcomes: Sequence[YearOutcome]) -> str:
    """Aligned text table of a simulated trajectory."""
    header = (
        f"{'year':>4} {'rate $/Mbps':>12} {'demand Gbps':>12} "
        f"{'blended $':>14} {'tiered $':>14} {'premium':>9} {'capture':>9}"
    )
    lines = [header, "-" * len(header)]
    for outcome in outcomes:
        lines.append(
            f"{outcome.year:>4} {outcome.blended_rate:>12.2f} "
            f"{outcome.total_demand_mbps / 1000.0:>12.1f} "
            f"{outcome.blended_profit:>14,.0f} {outcome.tiered_profit:>14,.0f} "
            f"{outcome.tiering_premium:>9.1%} {outcome.profit_capture:>9.2f}"
        )
    return "\n".join(lines)
