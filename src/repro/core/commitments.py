"""Commit-level (volume-discount) pricing — the paper's other tier axis.

§2 of the paper taxonomizes today's transit offers: besides
destination-based tiers (the paper's focus, :mod:`repro.core.bundling`),
"most transit ISPs offer volume discounts for higher commit levels".
This module models that axis as second-degree price discrimination:

* the ISP publishes a **menu** of :class:`CommitContract`s — pairs of a
  committed minimum (Mbps) and a unit price, with bigger commits cheaper
  per Mbps;
* heterogeneous customers (constant-elasticity demand with individual
  valuations) **self-select**: each picks the contract maximizing its own
  surplus, paying ``price * max(commit, usage)``, or stays out of the
  market;
* the ISP's profit sums payments minus delivery cost over the chosen
  usage.

Under CED utility ``U(q) = alpha/(alpha-1) * v * q^((alpha-1)/alpha)``:

* a customer whose unconstrained optimum ``(v/p)^alpha`` clears the
  commit simply buys that much, with surplus ``p q/(alpha-1)``;
* a smaller customer pays for the commit anyway, consumes exactly the
  commit (marginal utility is positive), and may earn negative surplus —
  which is why it self-selects a smaller contract.

:func:`optimize_menu_prices` tunes the menu's prices for a customer
population (commits fixed, e.g. at usage quantiles) with Nelder-Mead on
log-prices; the tests verify the optimized menu extracts at least as much
profit as the best single blended price.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from typing import Optional

import numpy as np
from scipy import optimize

from repro.errors import ModelParameterError, OptimizationError


@dataclasses.dataclass(frozen=True)
class CommitContract:
    """One menu entry: commit ``C`` Mbps at ``p`` $/Mbps/month."""

    commit_mbps: float
    price_per_mbps: float

    def __post_init__(self) -> None:
        if self.commit_mbps < 0:
            raise ModelParameterError(
                f"commit must be >= 0, got {self.commit_mbps}"
            )
        if self.price_per_mbps <= 0:
            raise ModelParameterError(
                f"price must be positive, got {self.price_per_mbps}"
            )


@dataclasses.dataclass(frozen=True)
class ContractChoice:
    """One customer's self-selection outcome."""

    contract_index: Optional[int]
    usage_mbps: float
    payment: float
    surplus: float


class CommitMarket:
    """A transit market sold through commit contracts.

    Args:
        alpha: CED price sensitivity shared by all customers (> 1).
        unit_cost: The ISP's delivery cost per Mbps actually used.
    """

    def __init__(self, alpha: float, unit_cost: float) -> None:
        if not np.isfinite(alpha) or alpha <= 1.0:
            raise ModelParameterError(f"alpha must exceed 1, got {alpha}")
        if unit_cost <= 0:
            raise ModelParameterError(f"unit_cost must be positive, got {unit_cost}")
        self.alpha = float(alpha)
        self.unit_cost = float(unit_cost)

    # ------------------------------------------------------------------
    # Single customer vs single contract
    # ------------------------------------------------------------------

    def utility(self, valuation: float, usage: float) -> float:
        """Alpha-fair utility of consuming ``usage`` Mbps."""
        if usage < 0:
            raise ModelParameterError("usage must be >= 0")
        exponent = (self.alpha - 1.0) / self.alpha
        return self.alpha / (self.alpha - 1.0) * valuation * usage**exponent

    def evaluate(self, valuation: float, contract: CommitContract) -> ContractChoice:
        """Usage, payment, and surplus of one customer on one contract."""
        if valuation <= 0:
            raise ModelParameterError(f"valuation must be positive, got {valuation}")
        price = contract.price_per_mbps
        unconstrained = (valuation / price) ** self.alpha
        if unconstrained >= contract.commit_mbps:
            usage = unconstrained
            payment = price * usage
            surplus = payment / (self.alpha - 1.0)
        else:
            # Paying for the commit regardless: consume it (marginal
            # utility is positive), surplus may go negative.
            usage = contract.commit_mbps
            payment = price * contract.commit_mbps
            surplus = self.utility(valuation, usage) - payment
        return ContractChoice(
            contract_index=None, usage_mbps=usage, payment=payment, surplus=surplus
        )

    # ------------------------------------------------------------------
    # Self-selection over a menu
    # ------------------------------------------------------------------

    def choose(
        self, valuation: float, menu: Sequence[CommitContract]
    ) -> ContractChoice:
        """The customer's surplus-maximizing contract (or opting out)."""
        if not menu:
            raise ModelParameterError("menu must contain at least one contract")
        best = ContractChoice(
            contract_index=None, usage_mbps=0.0, payment=0.0, surplus=0.0
        )
        for index, contract in enumerate(menu):
            candidate = self.evaluate(valuation, contract)
            if candidate.surplus > best.surplus + 1e-12:
                best = dataclasses.replace(candidate, contract_index=index)
        return best

    def simulate(
        self, valuations: Sequence[float], menu: Sequence[CommitContract]
    ) -> "list[ContractChoice]":
        """Every customer's choice against the menu."""
        return [self.choose(v, menu) for v in valuations]

    def profit(
        self, valuations: Sequence[float], menu: Sequence[CommitContract]
    ) -> float:
        """ISP profit: payments minus delivery cost of served usage."""
        choices = self.simulate(valuations, menu)
        return float(
            sum(
                choice.payment - self.unit_cost * choice.usage_mbps
                for choice in choices
            )
        )

    def consumer_surplus(
        self, valuations: Sequence[float], menu: Sequence[CommitContract]
    ) -> float:
        return float(
            sum(choice.surplus for choice in self.simulate(valuations, menu))
        )

    # ------------------------------------------------------------------
    # Menu design
    # ------------------------------------------------------------------

    def best_single_price(self, valuations: Sequence[float]) -> CommitContract:
        """The profit-maximizing no-commit blended rate (the baseline).

        With zero commit every customer buys its unconstrained quantity,
        so the optimum is the Eq. 5 blended price with equal relative
        weights reduced to the Eq. 4 markup over cost.
        """
        del valuations  # the CED markup is valuation-free
        price = self.alpha * self.unit_cost / (self.alpha - 1.0)
        return CommitContract(commit_mbps=0.0, price_per_mbps=price)

    def optimize_menu_prices(
        self,
        valuations: Sequence[float],
        commits: Sequence[float],
        max_iter: int = 400,
    ) -> "list[CommitContract]":
        """Tune menu prices for fixed commit levels.

        Starts every level at the blended optimum and lets Nelder-Mead
        move log-prices to maximize profit under self-selection.  Returns
        the menu sorted by commit; prices are not forced monotone, but a
        profitable menu discounts volume (asserted in tests).
        """
        commits = sorted(float(c) for c in commits)
        if not commits:
            raise ModelParameterError("need at least one commit level")
        if any(c < 0 for c in commits):
            raise ModelParameterError("commits must be >= 0")
        valuations = np.asarray(list(valuations), dtype=float)
        if valuations.size == 0 or np.any(valuations <= 0):
            raise ModelParameterError("valuations must be positive and non-empty")
        base_price = self.best_single_price(valuations).price_per_mbps

        def menu_from(log_prices: np.ndarray) -> "list[CommitContract]":
            return [
                CommitContract(commit_mbps=commit, price_per_mbps=float(np.exp(lp)))
                for commit, lp in zip(commits, log_prices)
            ]

        def objective(log_prices: np.ndarray) -> float:
            return -self.profit(valuations, menu_from(log_prices))

        start = np.log(
            base_price * np.linspace(1.2, 0.9, len(commits))
        )
        result = optimize.minimize(
            objective,
            start,
            method="Nelder-Mead",
            options={"maxiter": max_iter, "xatol": 1e-6, "fatol": 1e-9},
        )
        if not np.all(np.isfinite(result.x)):
            raise OptimizationError("menu optimization diverged")
        menu = menu_from(result.x)
        # Never return a menu worse than the blended baseline.
        baseline = [self.best_single_price(valuations)]
        if self.profit(valuations, menu) < self.profit(valuations, baseline):
            return baseline
        return menu
