"""Estimating demand parameters from price-change observations.

The paper sweeps the price sensitivity ``alpha`` because, with a single
snapshot at one blended rate, it is unidentifiable.  An operator that has
*changed prices* — a repricing event, an A/B-quoted customer base, or the
secular ~30 %/year transit price decline — can estimate it.  This module
implements those estimators, so the sensitivity sweeps of §4.3 can be
replaced by a data-driven value when two or more snapshots exist:

* **CED:** demand ratios identify alpha per flow:
  ``alpha_i = ln(q_i / q'_i) / ln(p' / p)``; the pooled estimator is the
  demand-weighted median over flows (robust to reporting noise on
  individual flows).
* **Logit:** log share ratios against the outside option are linear in
  the price change: ``ln(s_i/s_0) - ln(s'_i/s'_0) = alpha (p' - p)``,
  pooled the same way.  The outside share itself comes from the market
  population ``K``: ``s_0 = 1 - sum(q)/K``.

Each estimator returns an :class:`ElasticityEstimate` with a dispersion
diagnostic: if per-flow estimates scatter wildly, the single-``alpha``
model the paper assumes is itself suspect for that data.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import CalibrationError, ModelParameterError


@dataclasses.dataclass(frozen=True)
class PriceSnapshot:
    """Per-flow demand observed at one uniform (blended) price."""

    price: float
    demands: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "demands", np.asarray(self.demands, dtype=float)
        )
        if self.price <= 0 or not np.isfinite(self.price):
            raise ModelParameterError(f"price must be positive, got {self.price}")
        if self.demands.ndim != 1 or self.demands.size == 0:
            raise ModelParameterError("demands must be a non-empty 1-D array")
        if np.any(self.demands <= 0) or not np.all(np.isfinite(self.demands)):
            raise ModelParameterError("demands must be finite and positive")


@dataclasses.dataclass(frozen=True)
class ElasticityEstimate:
    """A pooled sensitivity estimate with a per-flow dispersion check.

    Attributes:
        alpha: The pooled estimate.
        per_flow: The raw per-flow estimates the pool was formed from.
        dispersion: Interquartile range of ``per_flow`` divided by
            ``alpha`` — a unitless heterogeneity diagnostic.  Values well
            above ~0.5 suggest a single-alpha model is a poor fit.
        n_flows: Number of flows that contributed.
    """

    alpha: float
    per_flow: np.ndarray
    dispersion: float
    n_flows: int

    @property
    def homogeneous(self) -> bool:
        """Heuristic: per-flow sensitivities agree well enough to pool."""
        return self.dispersion <= 0.5


def _pooled(per_flow: np.ndarray, weights: np.ndarray) -> ElasticityEstimate:
    order = np.argsort(per_flow)
    sorted_estimates = per_flow[order]
    cumulative = np.cumsum(weights[order])
    midpoint = 0.5 * cumulative[-1]
    alpha = float(sorted_estimates[np.searchsorted(cumulative, midpoint)])
    q1, q3 = np.percentile(per_flow, [25.0, 75.0])
    dispersion = float((q3 - q1) / abs(alpha)) if alpha != 0 else float("inf")
    return ElasticityEstimate(
        alpha=alpha,
        per_flow=per_flow,
        dispersion=dispersion,
        n_flows=int(per_flow.size),
    )


def estimate_ced_alpha(
    before: PriceSnapshot, after: PriceSnapshot
) -> ElasticityEstimate:
    """CED sensitivity from two demand snapshots at different prices.

    Eq. 2 gives ``q/q' = (p'/p)^alpha`` per flow, so
    ``alpha_i = ln(q_i/q'_i) / ln(p'/p)``.  Flows whose demand moved
    *with* the price (noise, growth) produce negative estimates and are
    kept — the pooled median tolerates them, and they feed the
    dispersion diagnostic.
    """
    if before.demands.shape != after.demands.shape:
        raise CalibrationError(
            "snapshots cover different flow sets "
            f"({before.demands.size} vs {after.demands.size})"
        )
    if np.isclose(before.price, after.price):
        raise CalibrationError(
            f"snapshots share the price {before.price}; alpha is "
            "unidentifiable without a price change"
        )
    log_price_ratio = np.log(after.price / before.price)
    per_flow = np.log(before.demands / after.demands) / log_price_ratio
    weights = before.demands
    estimate = _pooled(per_flow, weights)
    if estimate.alpha <= 0:
        raise CalibrationError(
            "pooled CED alpha is non-positive: demand rose with price; "
            "these snapshots are dominated by demand growth, not elasticity"
        )
    return estimate


def estimate_logit_alpha(
    before: PriceSnapshot,
    after: PriceSnapshot,
    population: float,
) -> ElasticityEstimate:
    """Logit sensitivity from two snapshots plus the market population.

    With ``s_i = q_i / K`` and ``s_0 = 1 - sum q / K``, Eq. 6 gives
    ``ln(s_i/s_0)`` linear in ``-alpha p``; differencing the snapshots
    cancels the valuations: ``alpha_i = Δ ln(q_i / q_0) / Δp`` with
    ``q_0 = K - sum q`` the non-buying mass.
    """
    if before.demands.shape != after.demands.shape:
        raise CalibrationError("snapshots cover different flow sets")
    if np.isclose(before.price, after.price):
        raise CalibrationError("alpha is unidentifiable without a price change")
    if population <= max(before.demands.sum(), after.demands.sum()):
        raise CalibrationError(
            f"population {population} must exceed total demand in both "
            "snapshots (some consumers must be outside the market)"
        )
    outside_before = population - before.demands.sum()
    outside_after = population - after.demands.sum()
    delta_log_odds = np.log(before.demands / outside_before) - np.log(
        after.demands / outside_after
    )
    per_flow = delta_log_odds / (after.price - before.price)
    estimate = _pooled(per_flow, before.demands)
    if estimate.alpha <= 0:
        raise CalibrationError(
            "pooled logit alpha is non-positive; snapshots are inconsistent "
            "with price-driven substitution"
        )
    return estimate


def implied_outside_share(
    demands: np.ndarray, population: float
) -> float:
    """The logit ``s0`` implied by a demand snapshot and a population."""
    demands = np.asarray(demands, dtype=float)
    total = float(demands.sum())
    if population <= total:
        raise CalibrationError(
            f"population {population} must exceed total demand {total}"
        )
    return 1.0 - total / population


def predicted_demand_change(
    alpha: float, current_price: float, new_price: float
) -> float:
    """CED demand multiplier for a blended-rate change (planning helper).

    ``q_new / q_old = (p_old / p_new)^alpha`` — e.g. with the paper's
    alpha = 1.1, a 30 % price cut grows demand by ~48 %.
    """
    if alpha <= 0:
        raise ModelParameterError(f"alpha must be positive, got {alpha}")
    if current_price <= 0 or new_price <= 0:
        raise ModelParameterError("prices must be positive")
    return (current_price / new_price) ** alpha
