"""Logit demand (paper §3.2.2).

In the logit model a population of ``K`` consumers each picks at most one
flow (or the outside option of sending nothing).  Consumer ``j``'s utility
for flow ``i`` is ``u_ij = alpha * (v_i - p_i) + eps_ij`` with Gumbel
idiosyncratic taste ``eps_ij``, which yields the market shares

.. math::
   s_i(P) = \\frac{e^{\\alpha (v_i - p_i)}}{\\sum_j e^{\\alpha (v_j - p_j)} + 1}
   \\qquad (Eq. 6)

and demand ``Q_i = K s_i`` (Eq. 7).  Demands are *not* separable: raising
one flow's price shifts consumption onto the others, which models customers
who can substitute between destinations.

Everything here is computed **per consumer** (``K = 1``); callers scale by
the fitted population.  The profit-capture metric is a ratio, so the scale
cancels there.

Pricing facts used below (derivations in DESIGN.md):

* The first-order condition (Eq. 9) is ``p_i* = c_i + 1/(alpha s_0)``: at
  the joint optimum every flow carries the **same markup** ``m`` over its
  own cost.  Substituting gives a 1-D fixed point
  ``alpha m - 1 = exp(L - alpha m)`` with ``L = logsumexp(alpha (v - c))``,
  whose closed-form solution is ``alpha m = 1 + omega(L - 1)`` where
  ``omega`` is the Wright omega function (``omega(z) = W(e^z)``).
  We also ship the paper's iterative fixed-point heuristic for comparison.
* A bundle priced uniformly behaves exactly like a single composite flow
  with valuation ``v_b = logsumexp(alpha v_i)/alpha`` (Eq. 10) and cost
  ``c_b = sum(c_i e^{alpha v_i}) / sum(e^{alpha v_i})`` (Eq. 11): the
  composition is exact, not an approximation.
* Total optimal profit is increasing in the aggregate attractiveness
  ``A = sum_b exp(alpha (v_b - c_b))``, and ``A`` is a sum of per-bundle
  terms — which is what makes the optimal-bundling DP separable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.special import logsumexp, wrightomega

from repro.core.demand import (
    BundleObjective,
    DemandModel,
    validate_arrays,
    validate_positive,
)
from repro.errors import CalibrationError, ModelParameterError, OptimizationError


class LogitDemand(DemandModel):
    """Logit demand with sensitivity ``alpha`` and outside share ``s0``.

    Args:
        alpha: Price sensitivity, ``alpha > 0``.  Lower values mean users
            need bigger price changes to shift their consumption.
        s0: The share of the market that buys nothing **at the observed
            blended rate** — a calibration input used when fitting
            valuations (§4.1.2).  Must lie strictly inside ``(0, 1)``.
    """

    name = "logit"

    def __init__(self, alpha: float, s0: float = 0.2) -> None:
        self.alpha = validate_positive(alpha, "alpha")
        s0 = float(s0)
        if not 0.0 < s0 < 1.0:
            raise ModelParameterError(f"s0 must be in (0, 1), got {s0}")
        self.s0 = s0

    # ------------------------------------------------------------------
    # Fitting (§4.1.2, §4.1.3)
    # ------------------------------------------------------------------

    def fit_valuations(self, demands: np.ndarray, blended_rate: float) -> np.ndarray:
        """Recover valuations from shares observed at the blended rate.

        Shares are assigned proportionally to observed demand with the
        configured outside share held out:
        ``s_i = q_i (1 - s0) / sum(q)``, then
        ``v_i = (ln s_i - ln s0)/alpha + P0``.
        """
        p0 = validate_positive(blended_rate, "blended_rate")
        q = np.asarray(demands, dtype=float)
        if q.ndim != 1 or q.size == 0:
            raise CalibrationError("demands must be a non-empty 1-D array")
        if np.any(q <= 0) or not np.all(np.isfinite(q)):
            raise CalibrationError("demands must be finite and positive")
        shares = q * (1.0 - self.s0) / q.sum()
        return (np.log(shares) - np.log(self.s0)) / self.alpha + p0

    def population(self, demands: np.ndarray) -> float:
        """The fitted consumer population ``K = sum(q) / (1 - s0)``.

        ``K`` is the total potential demand including the outside option;
        with it, per-consumer shares scale back to the observed Mbps.
        """
        q = np.asarray(demands, dtype=float)
        return float(q.sum()) / (1.0 - self.s0)

    def fit_gamma(
        self,
        valuations: np.ndarray,
        relative_costs: np.ndarray,
        blended_rate: float,
    ) -> float:
        """Solve ``dProfit/dP = 0`` at the uniform price ``P0`` for ``gamma``.

        With ``r_i = e^{alpha (v_i - P0)}`` and ``E = sum(r)``, the
        stationarity of the blended rate requires

        ``gamma = E (alpha P0 - 1 - E) / (alpha sum(f_i r_i))``

        (this is the §4.1.3 formula with its typo repaired; see DESIGN.md).
        A positive solution exists iff ``alpha * P0 * s0 > 1``.
        """
        validate_arrays(valuations, relative_costs)
        p0 = validate_positive(blended_rate, "blended_rate")
        v = np.asarray(valuations, dtype=float)
        f = np.asarray(relative_costs, dtype=float)
        if np.any(f <= 0):
            raise CalibrationError("relative costs must be positive to fit gamma")
        r = np.exp(self.alpha * (v - p0))
        big_e = float(r.sum())
        margin = self.alpha * p0 - 1.0 - big_e
        if margin <= 0:
            raise CalibrationError(
                "blended rate is inconsistent with profit maximization under "
                f"logit demand: need alpha * P0 * s0 > 1, got "
                f"alpha={self.alpha}, P0={p0}, implied s0={1 / (1 + big_e):.4g} "
                f"(alpha*P0*s0={self.alpha * p0 / (1 + big_e):.4g})"
            )
        gamma = big_e * margin / (self.alpha * float(np.sum(f * r)))
        if gamma <= 0 or not np.isfinite(gamma):
            raise CalibrationError(f"fitted gamma is not positive: {gamma}")
        return gamma

    # ------------------------------------------------------------------
    # Demand / profit / surplus (per consumer)
    # ------------------------------------------------------------------

    def shares(self, valuations: np.ndarray, prices: np.ndarray) -> np.ndarray:
        """Eq. 6 market shares; computed in log space for stability."""
        validate_arrays(valuations, prices=prices)
        x = self.alpha * (np.asarray(valuations) - np.asarray(prices))
        log_z = logsumexp(np.concatenate((x, [0.0])))
        return np.exp(x - log_z)

    def outside_share(self, valuations: np.ndarray, prices: np.ndarray) -> float:
        """Share of consumers who buy nothing at the given prices."""
        x = self.alpha * (np.asarray(valuations) - np.asarray(prices))
        return float(np.exp(-logsumexp(np.concatenate((x, [0.0])))))

    def quantities(self, valuations: np.ndarray, prices: np.ndarray) -> np.ndarray:
        """Eq. 7 with ``K = 1``: the market shares themselves."""
        return self.shares(valuations, prices)

    def profit(
        self,
        valuations: np.ndarray,
        costs: np.ndarray,
        prices: np.ndarray,
    ) -> float:
        """Eq. 8 with ``K = 1``: ``sum_i s_i (p_i - c_i)``."""
        s = self.shares(valuations, prices)
        return float(np.sum(s * (np.asarray(prices) - np.asarray(costs))))

    def consumer_surplus(self, valuations: np.ndarray, prices: np.ndarray) -> float:
        """Expected maximum utility per consumer (the logit inclusive value).

        ``CS = (1/alpha) ln(sum_j e^{alpha (v_j - p_j)} + 1)``, measured
        relative to the outside option (utility 0).  Differences of this
        quantity across price vectors are the standard logit welfare change.
        """
        x = self.alpha * (np.asarray(valuations) - np.asarray(prices))
        return float(logsumexp(np.concatenate((x, [0.0])))) / self.alpha

    # ------------------------------------------------------------------
    # Pricing
    # ------------------------------------------------------------------

    def optimal_markup(self, valuations: np.ndarray, costs: np.ndarray) -> float:
        """The common optimal markup ``m`` solving Eq. 9 jointly.

        Closed form via the Wright omega function:
        ``alpha m = 1 + omega(L - 1)`` with ``L = logsumexp(alpha (v - c))``.
        """
        validate_arrays(valuations, costs)
        x = self.alpha * (np.asarray(valuations) - np.asarray(costs))
        big_l = float(logsumexp(x))
        omega = float(np.real(wrightomega(big_l - 1.0)))
        markup = (1.0 + omega) / self.alpha
        if not np.isfinite(markup) or markup <= 0:
            raise OptimizationError(f"optimal markup is not positive: {markup}")
        return markup

    def optimal_prices(self, valuations: np.ndarray, costs: np.ndarray) -> np.ndarray:
        """Eq. 9: equal markup over cost, solved jointly for all flows."""
        markup = self.optimal_markup(valuations, costs)
        return np.asarray(costs, dtype=float) + markup

    def optimize_prices_fixed_point(
        self,
        valuations: np.ndarray,
        costs: np.ndarray,
        initial_prices: Optional[np.ndarray] = None,
        tol: float = 1e-10,
        max_iter: int = 10_000,
    ) -> np.ndarray:
        """The paper's iterative heuristic for Eq. 9.

        Starts from a fixed price vector and greedily updates it toward
        ``p_i <- c_i + 1/(alpha s_0(P))``.  The raw map is unstable when
        the market is attractive (its derivative at the optimum is
        ``-(alpha m - 1)``), so each step is damped with backtracking: the
        step is halved until the fixed-point residual shrinks.  Converges
        to the same prices as the closed-form :meth:`optimal_prices`;
        retained to mirror the paper's method and as a cross-check.
        """
        validate_arrays(valuations, costs)
        c = np.asarray(costs, dtype=float)
        prices = (
            c + 1.0 / self.alpha
            if initial_prices is None
            else np.asarray(initial_prices, dtype=float).copy()
        )

        def residual(p: np.ndarray) -> "tuple[np.ndarray, float]":
            target = c + 1.0 / (self.alpha * self.outside_share(valuations, p))
            return target, float(np.max(np.abs(target - p)))

        target, gap = residual(prices)
        step = 1.0
        for _ in range(max_iter):
            if gap < tol * max(1.0, float(np.max(np.abs(prices)))):
                return target
            while step > 1e-12:
                candidate = prices + step * (target - prices)
                cand_target, cand_gap = residual(candidate)
                if cand_gap < gap:
                    prices, target, gap = candidate, cand_target, cand_gap
                    step = min(1.0, step * 2.0)
                    break
                step *= 0.5
            else:
                raise OptimizationError(
                    "fixed-point price iteration stalled (step underflow)"
                )
        raise OptimizationError(
            f"fixed-point price iteration did not converge in {max_iter} steps"
        )

    def uniform_price(self, valuations: np.ndarray, costs: np.ndarray) -> float:
        """Optimal single (blended) price for all flows.

        A uniformly-priced set of flows is exactly equivalent to one
        composite flow (Eqs. 10–11), so this reduces to a single-flow
        markup problem.
        """
        v_bundle, c_bundle = self.compose_bundle(valuations, costs)
        markup = self.optimal_markup(np.array([v_bundle]), np.array([c_bundle]))
        return c_bundle + markup

    def compose_bundle(
        self, valuations: np.ndarray, costs: np.ndarray
    ) -> "tuple[float, float]":
        """Eqs. 10–11: the composite (valuation, cost) of a uniform bundle."""
        validate_arrays(valuations, costs)
        v = np.asarray(valuations, dtype=float)
        c = np.asarray(costs, dtype=float)
        x = self.alpha * v
        shift = x.max()
        w = np.exp(x - shift)
        v_bundle = (shift + np.log(w.sum())) / self.alpha
        c_bundle = float(np.sum(c * w) / w.sum())
        return float(v_bundle), c_bundle

    def bundle_prices(
        self,
        valuations: np.ndarray,
        costs: np.ndarray,
        bundles: list,
    ) -> np.ndarray:
        """Jointly optimal per-flow prices under a bundling constraint.

        Each bundle is collapsed to its composite flow; the composites are
        priced jointly (equal markup across bundles); every member then
        inherits its bundle's price.  Because composition is exact, this is
        the true optimum among bundle-uniform price vectors.
        """
        validate_arrays(valuations, costs)
        v = np.asarray(valuations, dtype=float)
        c = np.asarray(costs, dtype=float)
        composites_v = []
        composites_c = []
        for members in bundles:
            idx = np.asarray(members, dtype=int)
            vb, cb = self.compose_bundle(v[idx], c[idx])
            composites_v.append(vb)
            composites_c.append(cb)
        bundle_price = self.optimal_prices(
            np.asarray(composites_v), np.asarray(composites_c)
        )
        prices = np.empty_like(v)
        for b, members in enumerate(bundles):
            prices[np.asarray(members, dtype=int)] = bundle_price[b]
        return prices

    def potential_profits(
        self, valuations: np.ndarray, costs: np.ndarray
    ) -> np.ndarray:
        """Per-flow profit contribution at the jointly optimal prices.

        At the optimum every flow carries the same markup ``m``, so flow
        ``i`` contributes ``s_i(P*) m`` — proportional to
        ``e^{alpha (v_i - c_i)}``.  (Eq. 13 in the paper approximates this
        with the observed demand ``q_i``, which coincides when costs are
        uniform; we use the exact contribution.)
        """
        prices = self.optimal_prices(valuations, costs)
        s = self.shares(valuations, prices)
        profits = s * (prices - np.asarray(costs, dtype=float))
        # Shares of hopeless flows can underflow to exactly zero; floor at
        # the smallest positive float so weight-based bundling (which
        # requires strictly positive weights) still ranks them last.
        return np.maximum(profits, np.finfo(float).tiny)

    # ------------------------------------------------------------------
    # Optimal-bundling DP objective
    # ------------------------------------------------------------------

    def bundle_objective(
        self, valuations: np.ndarray, costs: np.ndarray
    ) -> "LogitBundleObjective":
        return LogitBundleObjective(self.alpha, valuations, costs)

    def describe(self) -> str:
        return f"logit demand (alpha={self.alpha}, s0={self.s0})"

    def __repr__(self) -> str:
        return f"LogitDemand(alpha={self.alpha}, s0={self.s0})"


class LogitBundleObjective(BundleObjective):
    """O(1) per-bundle attractiveness over a fixed flow order.

    Optimal logit profit is ``m (1 - s0)`` with both ``m`` and ``s0``
    determined by the aggregate attractiveness
    ``A = sum_b exp(alpha (v_b - c_b))`` — and profit is strictly increasing
    in ``A``.  Each bundle contributes
    ``(sum_i w_i) * exp(-alpha c_bar)`` with ``w_i = e^{alpha v_i}`` and
    ``c_bar`` the w-weighted mean cost, so maximizing the summed slice
    scores maximizes profit.  Scores are normalized by a global constant
    (harmless for the argmax) to stay inside float range.
    """

    def __init__(self, alpha: float, valuations: np.ndarray, costs: np.ndarray) -> None:
        self.alpha = alpha
        v = np.asarray(valuations, dtype=float)
        c = np.asarray(costs, dtype=float)
        x = alpha * v
        w = np.exp(x - x.max())
        self._w_prefix = np.concatenate(([0.0], np.cumsum(w)))
        self._cw_prefix = np.concatenate(([0.0], np.cumsum(c * w)))
        self._c_shift = float(c.min())

    def slice_score(self, i: int, j: int) -> float:
        w_sum = self._w_prefix[j] - self._w_prefix[i]
        cw_sum = self._cw_prefix[j] - self._cw_prefix[i]
        if w_sum <= 0:
            return 0.0
        c_bar = cw_sum / w_sum
        return w_sum * float(np.exp(-self.alpha * (c_bar - self._c_shift)))

    def slice_scores(self, starts: np.ndarray, end: int) -> np.ndarray:
        w_sum = self._w_prefix[end] - self._w_prefix[starts]
        cw_sum = self._cw_prefix[end] - self._cw_prefix[starts]
        with np.errstate(divide="ignore", invalid="ignore"):
            c_bar = cw_sum / w_sum
            scores = w_sum * np.exp(-self.alpha * (c_bar - self._c_shift))
        return np.where(w_sum <= 0, 0.0, scores)
