"""ISP cost models (paper §3.3).

Cost data is proprietary and volatile, so the paper works with *relative*
costs: each model maps a flow's distance (and labels) to a dimensionless
relative cost ``f_i``; calibration later finds the dollar scale ``gamma``
such that ``c_i = gamma * f_i`` is consistent with the observed blended
rate (§4.1.3).  Four models are provided, each with a tuning parameter
``theta``:

* :class:`LinearDistanceCost` — ``f_i = d_i + beta`` with base cost
  ``beta = theta * max_j d_j``.  ``theta`` is the relative base-cost
  fraction; small ``theta`` means distance dominates total cost.
* :class:`ConcaveDistanceCost` — ``f_i = a log_b(d_i) + c + beta``, the
  shape observed in public leased-line price lists (ITU, NTT; Figure 6).
* :class:`RegionalCost` — flows are metro / national / international with
  relative costs ``1``, ``2**theta``, ``3**theta`` (``theta = 0``: no
  difference; ``theta = 1``: linear 1:2:3; ``theta > 1``: magnitudes).
* :class:`DestinationTypeCost` — "on-net" traffic (to the ISP's own
  customers, who also pay) versus "off-net" traffic (to peers) at twice
  the unit cost.  ``theta`` is the on-net fraction of every flow; this
  model *splits* each flow into an on-net and an off-net part.

All distance-based models floor the distance at ``min_distance_miles``
(default 1.0) so intra-PoP flows keep a positive cost and the concave
model's logarithm stays in domain.
"""

from __future__ import annotations

import abc
import dataclasses
import math
from typing import Optional

import numpy as np
from scipy import optimize

from repro.core.flow import (
    FlowSet,
    INTERNATIONAL,
    METRO,
    NATIONAL,
    VALID_REGIONS,
    decode_labels,
    encode_labels,
)
from repro.errors import DataError, ModelParameterError

#: Cost-class labels emitted by :class:`DestinationTypeCost`.
ON_NET = "on-net"
OFF_NET = "off-net"


class CostedFlows:
    """A flow set annotated with relative delivery costs.

    Cost classes are carried columnar — an ``int32`` code array over an
    interned label table — so downstream grouped reductions (class-aware
    bundling, peering offerings) never touch per-flow Python strings.
    The ``classes`` label tuple is decoded lazily for compatibility, and
    constructing with ``classes=`` label sequences still works.

    Attributes:
        flows: The (possibly transformed) flow set.  The destination-type
            model splits each input flow in two, so ``flows`` may differ
            from the input set.
        relative_costs: Per-flow dimensionless cost ``f_i > 0``.
        class_codes: Per-flow cost-class codes when the model defines
            natural traffic classes (regions, on/off-net), else ``None``.
            The class-aware bundling heuristic (§4.3.1) never mixes
            classes.
        class_table: Label table the class codes index.
    """

    def __init__(
        self,
        flows: FlowSet,
        relative_costs: np.ndarray,
        classes: Optional[tuple] = None,
        class_codes: Optional[np.ndarray] = None,
        class_table: "tuple[str, ...]" = (),
    ) -> None:
        f = np.asarray(relative_costs, dtype=float)
        if f.shape != (len(flows),):
            raise DataError(
                f"relative_costs shape {f.shape} does not match "
                f"{len(flows)} flows"
            )
        if np.any(f <= 0) or not np.all(np.isfinite(f)):
            raise DataError("relative costs must be finite and positive")
        self.flows = flows
        self.relative_costs = f
        if class_codes is not None:
            codes = np.asarray(class_codes)
            if codes.shape != (len(flows),):
                raise DataError("classes length does not match flows")
            self.class_codes: Optional[np.ndarray] = codes
            self.class_table = tuple(class_table)
        else:
            if classes is not None and len(classes) != len(flows):
                raise DataError("classes length does not match flows")
            self.class_codes, self.class_table = encode_labels(
                classes, len(flows), "classes"
            )
        self._classes: Optional[tuple] = None

    @property
    def classes(self) -> Optional[tuple]:
        """The class labels as a tuple (decoded lazily; compat view)."""
        if self.class_codes is None:
            return None
        if self._classes is None:
            self._classes = decode_labels(self.class_codes, self.class_table)
        return self._classes


class CostModel(abc.ABC):
    """Maps a :class:`FlowSet` to relative delivery costs."""

    #: Short machine-readable name.
    name: str = ""

    def __init__(self, theta: float, min_distance_miles: float = 1.0) -> None:
        theta = float(theta)
        if not math.isfinite(theta) or theta < 0:
            raise ModelParameterError(f"theta must be finite and >= 0, got {theta}")
        if min_distance_miles <= 0:
            raise ModelParameterError("min_distance_miles must be positive")
        self.theta = theta
        self.min_distance_miles = float(min_distance_miles)

    @abc.abstractmethod
    def prepare(self, flows: FlowSet) -> CostedFlows:
        """Compute relative costs (and possibly transform the flow set)."""

    def prepare_quotes(
        self, flows: FlowSet, reference_distance_miles: "Optional[float]" = None
    ) -> CostedFlows:
        """Relative costs in a *pinned* normalization frame.

        :meth:`prepare` normalizes against the flow set itself (the
        distance models set their base cost from the batch's longest
        haul), which is right for calibration but wrong for quoting: a
        quote's cost must be batch-independent and expressed in the same
        frame the design's ``gamma`` was calibrated under.  Passing the
        calibration set's maximum distance as
        ``reference_distance_miles`` reproduces that frame exactly;
        models whose costs never depend on the rest of the batch (the
        regional model) ignore it.
        """
        del reference_distance_miles  # batch-independent models ignore it
        return self.prepare(flows)

    def _floored_distances(self, flows: FlowSet) -> np.ndarray:
        return np.maximum(flows.distances, self.min_distance_miles)

    def _floored_reference(self, reference_distance_miles: float) -> float:
        reference = float(reference_distance_miles)
        if not math.isfinite(reference) or reference <= 0:
            raise ModelParameterError(
                f"reference distance must be finite and positive, got "
                f"{reference_distance_miles!r}"
            )
        return max(reference, self.min_distance_miles)

    def describe(self) -> str:
        return f"{self.name} cost model (theta={self.theta})"

    def __repr__(self) -> str:
        return f"{type(self).__name__}(theta={self.theta})"


class LinearDistanceCost(CostModel):
    """Cost linear in distance with a relative base cost (§3.3).

    ``f_i = d_i + beta`` where ``beta = theta * max_j d_j``.  The paper's
    worked example: distances (1, 10, 100) miles with ``theta = 0.1`` give
    ``beta = 10`` and relative costs (11, 20, 110).
    """

    name = "linear"

    def prepare(self, flows: FlowSet) -> CostedFlows:
        d = self._floored_distances(flows)
        beta = self.theta * float(d.max())
        return CostedFlows(flows=flows, relative_costs=d + beta)

    def prepare_quotes(
        self, flows: FlowSet, reference_distance_miles: "Optional[float]" = None
    ) -> CostedFlows:
        if reference_distance_miles is None:
            return self.prepare(flows)
        d = self._floored_distances(flows)
        beta = self.theta * self._floored_reference(reference_distance_miles)
        return CostedFlows(flows=flows, relative_costs=d + beta)


class ConcaveDistanceCost(CostModel):
    """Cost concave in distance, ``f_i = a log_b(d_i) + c + beta`` (§3.3).

    Defaults ``a = 0.5, b = 6, c = 1`` come from the paper's fit to ITU and
    NTT leased-line prices (Figure 6).  ``beta = theta * max_j g(d_j)``
    mirrors the linear model's base cost.
    """

    name = "concave"

    def __init__(
        self,
        theta: float,
        a: float = 0.5,
        b: float = 6.0,
        c: float = 1.0,
        min_distance_miles: float = 1.0,
    ) -> None:
        super().__init__(theta, min_distance_miles)
        if a <= 0 or c < 0:
            raise ModelParameterError(f"concave shape needs a > 0, c >= 0; got a={a}, c={c}")
        if b <= 1:
            raise ModelParameterError(f"log base b must exceed 1, got {b}")
        self.a = float(a)
        self.b = float(b)
        self.c = float(c)

    def prepare(self, flows: FlowSet) -> CostedFlows:
        d = self._floored_distances(flows)
        g = self._shape(d)
        beta = self.theta * float(g.max())
        return CostedFlows(flows=flows, relative_costs=g + beta)

    def prepare_quotes(
        self, flows: FlowSet, reference_distance_miles: "Optional[float]" = None
    ) -> CostedFlows:
        if reference_distance_miles is None:
            return self.prepare(flows)
        d = self._floored_distances(flows)
        g = self._shape(d)
        reference = self._floored_reference(reference_distance_miles)
        beta = self.theta * float(self._shape(np.array([reference]))[0])
        costs = g + beta
        if np.any(costs <= 0):
            raise ModelParameterError(
                "concave quote cost is non-positive at the shortest "
                "distance; raise min_distance_miles or the intercept c"
            )
        return CostedFlows(flows=flows, relative_costs=costs)

    def _shape(self, distances: np.ndarray) -> np.ndarray:
        g = self.a * np.log(distances) / math.log(self.b) + self.c
        if np.any(g <= 0):
            raise ModelParameterError(
                "concave cost is non-positive at the shortest distance; "
                "raise min_distance_miles or the intercept c"
            )
        return g


class RegionalCost(CostModel):
    """Destination-region cost: metro / national / international (§3.3).

    Relative costs are ``1``, ``2**theta``, ``3**theta``.  Flows are
    classified by their ``region`` labels when present; otherwise by the
    paper's EU-ISP distance thresholds: under ``metro_miles`` (10) is
    metro, under ``national_miles`` (100) is national, else international.
    """

    name = "regional"

    def __init__(
        self,
        theta: float,
        metro_miles: float = 10.0,
        national_miles: float = 100.0,
        min_distance_miles: float = 1.0,
    ) -> None:
        super().__init__(theta, min_distance_miles)
        if not 0 < metro_miles < national_miles:
            raise ModelParameterError(
                "need 0 < metro_miles < national_miles, got "
                f"{metro_miles}, {national_miles}"
            )
        self.metro_miles = float(metro_miles)
        self.national_miles = float(national_miles)

    def classify_codes(self, flows: FlowSet) -> np.ndarray:
        """Per-flow region codes over :data:`~repro.core.flow.VALID_REGIONS`.

        Stored region codes win over the distance thresholds; the whole
        classification is two threshold comparisons and a ``where`` merge.
        """
        codes = np.searchsorted(
            np.array([self.metro_miles, self.national_miles]),
            flows.distances,
            side="right",
        ).astype(np.int32)
        stored = flows.region_codes
        if stored is not None:
            codes = np.where(stored >= 0, stored, codes).astype(np.int32)
        return codes

    def classify(self, flows: FlowSet) -> tuple:
        """Per-flow region labels (stored labels win over thresholds)."""
        return decode_labels(self.classify_codes(flows), VALID_REGIONS)

    def prepare(self, flows: FlowSet) -> CostedFlows:
        codes = self.classify_codes(flows)
        cost_of = np.array([1.0, 2.0**self.theta, 3.0**self.theta])
        return CostedFlows(
            flows=flows,
            relative_costs=cost_of[codes],
            class_codes=codes,
            class_table=VALID_REGIONS,
        )


class DestinationTypeCost(CostModel):
    """On-net versus off-net cost (§3.3).

    ``theta`` is the fraction of each flow's traffic destined to the ISP's
    own customers ("on-net"); the remainder goes to peers ("off-net") at
    **twice** the unit cost — when the ISP carries customer-to-customer
    traffic it is paid twice, customer-to-peer traffic only once.

    :meth:`prepare` therefore splits every input flow into an on-net part
    (demand ``theta * q``, relative cost 1) and an off-net part (demand
    ``(1-theta) * q``, relative cost 2), labelling the parts so
    class-aware bundling can keep them separate.  Costs are flat per
    class — the paper analyzes this model as having exactly "two distinct
    cost classes", which is why two well-chosen bundles already capture
    most of the profit (its §4.3.1).
    """

    name = "destination-type"

    #: Relative unit costs of the two classes (§3.3: off-net traffic is
    #: twice as costly because only one side pays the ISP).
    ON_NET_COST = 1.0
    OFF_NET_COST = 2.0

    def __init__(self, theta: float, min_distance_miles: float = 1.0) -> None:
        super().__init__(theta, min_distance_miles)
        if not 0.0 < self.theta < 1.0:
            raise ModelParameterError(
                f"destination-type theta is an on-net traffic fraction and "
                f"must lie in (0, 1), got {self.theta}"
            )

    def prepare(self, flows: FlowSet) -> CostedFlows:
        d = self._floored_distances(flows)
        q = flows.demands
        n = len(flows)
        demands = np.concatenate((self.theta * q, (1.0 - self.theta) * q))
        distances = np.concatenate((d, d))
        costs = np.concatenate(
            (np.full(n, self.ON_NET_COST), np.full(n, self.OFF_NET_COST))
        )
        class_codes = np.repeat(np.array([0, 1], dtype=np.int32), n)
        region_codes = None
        if flows.region_codes is not None:
            region_codes = np.tile(flows.region_codes, 2)
        # The inputs were validated on construction and theta in (0, 1)
        # keeps both halves positive, so take the pre-validated fast path.
        split = FlowSet.from_columns(
            demands,
            distances,
            region_codes=region_codes,
            class_codes=class_codes,
            class_table=(ON_NET, OFF_NET),
            validate=False,
        )
        return CostedFlows(
            flows=split,
            relative_costs=costs,
            class_codes=split.class_codes,
            class_table=(ON_NET, OFF_NET),
        )


class StepDistanceCost(CostModel):
    """Piecewise-constant cost in distance (§3.3's small-scale reality).

    The paper notes that "on a small scale the bandwidth cost is a step
    function ... equipment manufacturers sell several classes of optical
    transceivers, where each more powerful transceiver able to reach
    longer distances costs progressively more".  This model keeps the
    steps instead of smoothing them: reach classes at ``thresholds``
    miles cost ``levels`` relative units.

    Defaults follow typical optical reach classes (SR/LR/ER/ZR + long-haul
    DWDM): 0.3 / 6 / 25 / 50 miles of metro fiber, then regional and
    long-haul line systems.  ``theta`` is the §3.3 base-cost fraction, as
    in the linear model.

    With only a few distinct cost levels, the optimal tier count equals
    the number of occupied levels — a crisp test case for the "how many
    tiers?" question (compare Figure 13's two-class behaviour).
    """

    name = "step"

    #: Upper distance bound (miles) of each reach class...
    DEFAULT_THRESHOLDS = (0.3, 6.0, 25.0, 50.0, 600.0)
    #: ...and the classes' relative costs (last entry: beyond all bounds).
    DEFAULT_LEVELS = (1.0, 2.0, 4.0, 7.0, 12.0, 30.0)

    def __init__(
        self,
        theta: float,
        thresholds: "tuple[float, ...]" = DEFAULT_THRESHOLDS,
        levels: "tuple[float, ...]" = DEFAULT_LEVELS,
        min_distance_miles: float = 1e-3,
    ) -> None:
        super().__init__(theta, min_distance_miles)
        thresholds = tuple(float(t) for t in thresholds)
        levels = tuple(float(v) for v in levels)
        if len(levels) != len(thresholds) + 1:
            raise ModelParameterError(
                f"need len(levels) == len(thresholds) + 1, got "
                f"{len(levels)} and {len(thresholds)}"
            )
        if any(b <= a for a, b in zip(thresholds, thresholds[1:])):
            raise ModelParameterError("thresholds must be strictly increasing")
        if any(v <= 0 for v in levels):
            raise ModelParameterError("levels must be positive")
        if any(b <= a for a, b in zip(levels, levels[1:])):
            raise ModelParameterError(
                "levels must be strictly increasing (longer reach costs more)"
            )
        self.thresholds = thresholds
        self.levels = levels

    def prepare(self, flows: FlowSet) -> CostedFlows:
        d = self._floored_distances(flows)
        indices = np.searchsorted(np.asarray(self.thresholds), d, side="right")
        g = np.asarray(self.levels)[indices]
        beta = self.theta * float(g.max())
        return CostedFlows(
            flows=flows,
            relative_costs=g + beta,
            class_codes=indices.astype(np.int32),
            class_table=tuple(f"reach-{i}" for i in range(len(self.levels))),
        )


class CallableCost(CostModel):
    """Adapter: any ``distance -> relative cost`` function as a cost model.

    Lets users plug in their own cost curves (fiber-lease price lists,
    internal TCO models) without subclassing.  ``theta`` adds the same
    relative base cost as the built-in models.
    """

    name = "callable"

    def __init__(
        self,
        fn,
        theta: float = 0.0,
        min_distance_miles: float = 1.0,
        fn_name: Optional[str] = None,
    ) -> None:
        super().__init__(theta, min_distance_miles)
        if not callable(fn):
            raise ModelParameterError("fn must be callable")
        self._fn = fn
        self.fn_name = fn_name or getattr(fn, "__name__", "custom")

    def prepare(self, flows: FlowSet) -> CostedFlows:
        d = self._floored_distances(flows)
        # Try one vectorized call first; fall back to the per-element loop
        # for scalar-only functions (e.g. anything built on math.*).
        try:
            g = np.asarray(self._fn(d), dtype=float)
            if g.shape != d.shape:
                raise TypeError
        except (TypeError, ValueError):
            g = np.asarray([float(self._fn(float(x))) for x in d])
        if np.any(g <= 0) or not np.all(np.isfinite(g)):
            raise ModelParameterError(
                f"cost function {self.fn_name!r} produced non-positive or "
                "non-finite values"
            )
        beta = self.theta * float(g.max())
        return CostedFlows(flows=flows, relative_costs=g + beta)

    def describe(self) -> str:
        return f"callable cost model ({self.fn_name}, theta={self.theta})"


@dataclasses.dataclass(frozen=True)
class ConcaveFit:
    """Result of fitting ``y = k ln(x) + c`` to price-list data (Figure 6).

    The paper reports the equivalent form ``y = a log_b(x) + c``; since
    ``a`` and ``b`` only enter through ``k = a / ln(b)``, the pair is not
    identifiable and we expose the canonical slope ``k`` plus a converter.
    """

    k: float
    c: float
    residual: float

    def a_for_base(self, b: float) -> float:
        """The ``a`` coefficient that pairs with log base ``b``."""
        if b <= 1:
            raise ModelParameterError(f"log base b must exceed 1, got {b}")
        return self.k * math.log(b)

    def predict(self, distances: np.ndarray) -> np.ndarray:
        x = np.asarray(distances, dtype=float)
        return self.k * np.log(x) + self.c


def fit_concave_price_curve(
    distances: np.ndarray, prices: np.ndarray
) -> ConcaveFit:
    """Least-squares fit of the concave price curve to (distance, price) data.

    Reproduces the paper's Figure 6 procedure on leased-line price lists.
    Distances must be positive; prices may be normalized or absolute.
    """
    x = np.asarray(distances, dtype=float)
    y = np.asarray(prices, dtype=float)
    if x.shape != y.shape or x.ndim != 1 or x.size < 2:
        raise DataError("need matching 1-D arrays with at least two points")
    if np.any(x <= 0):
        raise DataError("distances must be positive (log domain)")

    def model(xs: np.ndarray, k: float, c: float) -> np.ndarray:
        return k * np.log(xs) + c

    (k, c), _ = optimize.curve_fit(model, x, y, p0=(0.1, 1.0))
    residual = float(np.sqrt(np.mean((model(x, k, c) - y) ** 2)))
    return ConcaveFit(k=float(k), c=float(c), residual=residual)


def default_cost_models(theta: Optional[float] = None) -> list:
    """The paper's four cost models at their §4.2.2 default settings."""
    return [
        LinearDistanceCost(theta=0.2 if theta is None else theta),
        ConcaveDistanceCost(theta=0.2 if theta is None else theta),
        RegionalCost(theta=1.1 if theta is None else theta),
        DestinationTypeCost(theta=0.1 if theta is None else theta),
    ]
