"""Core economic model: demand, cost, bundling, and the calibrated market.

This subpackage is the paper's primary contribution — everything needed to
ask "how many tiers, and how should they be structured?" of a traffic
matrix.  See :class:`repro.core.market.Market` for the entry point.
"""

from repro.core.bundling import (
    BundlingInputs,
    BundlingStrategy,
    ClassAwareBundling,
    CostDivisionBundling,
    CostWeightedBundling,
    DemandWeightedBundling,
    IndexDivisionBundling,
    OptimalBundling,
    ProfitWeightedBundling,
    evaluate_partition,
    paper_strategies,
    strategy_by_name,
)
from repro.core.ced import CEDDemand
from repro.core.commitments import CommitContract, CommitMarket, ContractChoice
from repro.core.competition import (
    CompetitionEquilibrium,
    Firm,
    LogitCompetition,
)
from repro.core.cost import (
    CallableCost,
    ConcaveDistanceCost,
    ConcaveFit,
    CostedFlows,
    CostModel,
    DestinationTypeCost,
    LinearDistanceCost,
    OFF_NET,
    ON_NET,
    RegionalCost,
    StepDistanceCost,
    default_cost_models,
    fit_concave_price_curve,
)
from repro.core.demand import DemandModel
from repro.core.estimation import (
    ElasticityEstimate,
    PriceSnapshot,
    estimate_ced_alpha,
    estimate_logit_alpha,
    implied_outside_share,
    predicted_demand_change,
)
from repro.core.flow import (
    Flow,
    FlowSet,
    FlowTable,
    INTERNATIONAL,
    METRO,
    NATIONAL,
    VALID_REGIONS,
)
from repro.core.linear import LinearDemand
from repro.core.logit import LogitDemand
from repro.core.market import Market, TieredOutcome, TierSummary, capture_table
from repro.core.trajectory import (
    YearOutcome,
    render_trajectory,
    simulate_price_decline,
)
from repro.core.welfare import (
    WelfareBreakdown,
    WelfareComparison,
    render_welfare_table,
    welfare_comparison,
    welfare_curve,
)

__all__ = [
    "BundlingInputs",
    "BundlingStrategy",
    "CEDDemand",
    "CallableCost",
    "ClassAwareBundling",
    "CommitContract",
    "CommitMarket",
    "CompetitionEquilibrium",
    "ContractChoice",
    "Firm",
    "LogitCompetition",
    "ConcaveDistanceCost",
    "ConcaveFit",
    "CostDivisionBundling",
    "CostModel",
    "CostWeightedBundling",
    "CostedFlows",
    "DemandModel",
    "DemandWeightedBundling",
    "ElasticityEstimate",
    "PriceSnapshot",
    "DestinationTypeCost",
    "Flow",
    "FlowSet",
    "FlowTable",
    "INTERNATIONAL",
    "IndexDivisionBundling",
    "LinearDemand",
    "LinearDistanceCost",
    "LogitDemand",
    "METRO",
    "Market",
    "NATIONAL",
    "OFF_NET",
    "ON_NET",
    "OptimalBundling",
    "ProfitWeightedBundling",
    "RegionalCost",
    "StepDistanceCost",
    "TierSummary",
    "TieredOutcome",
    "VALID_REGIONS",
    "WelfareBreakdown",
    "WelfareComparison",
    "YearOutcome",
    "capture_table",
    "default_cost_models",
    "estimate_ced_alpha",
    "estimate_logit_alpha",
    "evaluate_partition",
    "implied_outside_share",
    "fit_concave_price_curve",
    "paper_strategies",
    "predicted_demand_change",
    "render_trajectory",
    "render_welfare_table",
    "simulate_price_decline",
    "strategy_by_name",
    "welfare_comparison",
    "welfare_curve",
]
