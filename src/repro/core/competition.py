"""Multi-ISP price competition over logit demand (extension).

The paper's demand model is a monopoly view: competitors only appear
implicitly, through the residual-demand elasticity (§3.2).  It explicitly
notes that "our model does not capture full dynamic interaction between
competing ISPs (e.g., price wars)".  This module adds that interaction
for the logit family, where it has a clean game-theoretic form:

* Each :class:`Firm` sells connectivity to (a subset of) the same
  destinations; consumer ``j`` choosing firm ``F``'s flow ``i`` gets
  utility ``alpha (v_i + quality_F - p_{F,i}) + eps``.  All firms' offers
  plus the outside option form one logit choice set.
* A multiproduct logit firm's best response carries a **single markup**
  over its own costs: ``m_F = 1 / (alpha (1 - S_F))`` with ``S_F`` the
  firm's total share.  (Same derivation as the paper's Eq. 9; a monopoly
  is the one-firm special case with ``1 - S_F = s_0``.)  Given rival
  prices, the markup has the closed form
  ``alpha m_F = 1 + omega(ln(A_F / D_F) - 1)`` where ``A_F`` is the
  firm's aggregate attractiveness at cost pricing and ``D_F`` the rest of
  the choice set's weight.
* :meth:`LogitCompetition.equilibrium` iterates best responses to the
  Bertrand-Nash equilibrium (a contraction here; convergence is checked).

Firms may be constrained to **tiered** pricing: a firm with bundles prices
each bundle uniformly (composition is exact, as in the monopoly model),
so one can ask how tiering interacts with competition — e.g. whether a
blended-rate incumbent loses profit to a tiered entrant.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np
from scipy.special import logsumexp, wrightomega

from repro.core.demand import validate_arrays
from repro.errors import ModelParameterError, OptimizationError


@dataclasses.dataclass
class Firm:
    """One competing ISP.

    Attributes:
        name: Display name.
        costs: Per-flow unit delivery costs on this firm's network.
        quality: Additive utility offset (brand/performance advantage).
        bundles: Optional pricing-tier partition (index arrays over the
            flow set).  ``None`` means unconstrained per-flow pricing;
            a single all-flows bundle models a blended rate.
    """

    name: str
    costs: np.ndarray
    quality: float = 0.0
    bundles: Optional[list] = None

    def __post_init__(self) -> None:
        self.costs = np.asarray(self.costs, dtype=float)
        if self.costs.ndim != 1 or np.any(self.costs <= 0):
            raise ModelParameterError(
                f"firm {self.name!r}: costs must be a positive 1-D array"
            )
        if self.bundles is not None:
            seen: set = set()
            for members in self.bundles:
                for i in np.asarray(members).ravel():
                    if int(i) in seen:
                        raise ModelParameterError(
                            f"firm {self.name!r}: bundles overlap at flow {int(i)}"
                        )
                    seen.add(int(i))
            if seen != set(range(self.costs.size)):
                raise ModelParameterError(
                    f"firm {self.name!r}: bundles must partition all flows"
                )


class LogitCompetition:
    """A logit market shared by several competing ISPs.

    Args:
        valuations: Per-destination valuations ``v_i`` (common across
            firms; quality offsets differentiate the firms).
        firms: The competitors.  Every firm must cover all flows.
        alpha: Logit price sensitivity.
    """

    def __init__(
        self,
        valuations: np.ndarray,
        firms: "list[Firm]",
        alpha: float,
    ) -> None:
        validate_arrays(valuations)
        if alpha <= 0 or not np.isfinite(alpha):
            raise ModelParameterError(f"alpha must be positive, got {alpha}")
        if not firms:
            raise ModelParameterError("need at least one firm")
        self.valuations = np.asarray(valuations, dtype=float)
        for firm in firms:
            if firm.costs.shape != self.valuations.shape:
                raise ModelParameterError(
                    f"firm {firm.name!r} covers {firm.costs.size} flows, "
                    f"market has {self.valuations.size}"
                )
        names = [firm.name for firm in firms]
        if len(names) != len(set(names)):
            raise ModelParameterError("firm names must be unique")
        self.firms = list(firms)
        self.alpha = float(alpha)

    # ------------------------------------------------------------------
    # Demand
    # ------------------------------------------------------------------

    def _utilities(self, prices: "dict[str, np.ndarray]") -> np.ndarray:
        """Stacked alpha*(v + quality - p), one row per firm."""
        rows = []
        for firm in self.firms:
            p = np.asarray(prices[firm.name], dtype=float)
            rows.append(self.alpha * (self.valuations + firm.quality - p))
        return np.vstack(rows)

    def shares(self, prices: "dict[str, np.ndarray]") -> "dict[str, np.ndarray]":
        """Per-firm per-flow market shares at the given prices."""
        x = self._utilities(prices)
        log_z = logsumexp(np.concatenate((x.ravel(), [0.0])))
        shares = np.exp(x - log_z)
        return {
            firm.name: shares[row] for row, firm in enumerate(self.firms)
        }

    def outside_share(self, prices: "dict[str, np.ndarray]") -> float:
        x = self._utilities(prices)
        return float(np.exp(-logsumexp(np.concatenate((x.ravel(), [0.0])))))

    def profit(self, firm_name: str, prices: "dict[str, np.ndarray]") -> float:
        """A firm's per-consumer profit at the given price profile."""
        firm = self._firm(firm_name)
        s = self.shares(prices)[firm_name]
        p = np.asarray(prices[firm_name], dtype=float)
        return float(np.sum(s * (p - firm.costs)))

    # ------------------------------------------------------------------
    # Best response and equilibrium
    # ------------------------------------------------------------------

    def best_response(
        self, firm_name: str, prices: "dict[str, np.ndarray]"
    ) -> np.ndarray:
        """The firm's profit-maximizing prices given rivals' prices.

        Equal markup over the firm's own costs; under a bundling
        constraint the markup applies to the bundle composites, which is
        exact for logit.  Closed form via Wright omega (module docstring).
        """
        firm = self._firm(firm_name)
        # Rival weight (including the outside option's e^0 = 1).
        rival_rows = [
            self.alpha
            * (self.valuations + other.quality - np.asarray(prices[other.name]))
            for other in self.firms
            if other.name != firm_name
        ]
        if rival_rows:
            log_d = float(
                logsumexp(np.concatenate([row for row in rival_rows] + [[0.0]]))
            )
        else:
            log_d = 0.0
        # Firm attractiveness at cost pricing: the firm's offers are its
        # bundle composites (exact for logit), so a tiering constraint
        # lowers A_F — a blended firm is strictly less attractive than a
        # per-flow-priced one at the same markup.
        base = self.alpha * (self.valuations + firm.quality)
        if firm.bundles is None:
            log_a = float(logsumexp(base - self.alpha * firm.costs))
            effective_costs = firm.costs
        else:
            bundle_logs = []
            effective_costs = np.empty_like(firm.costs)
            for members in firm.bundles:
                idx = np.asarray(members, dtype=int)
                weights = np.exp(base[idx] - base[idx].max())
                bundle_cost = float(
                    np.sum(firm.costs[idx] * weights) / weights.sum()
                )
                effective_costs[idx] = bundle_cost
                bundle_logs.append(
                    float(logsumexp(base[idx])) - self.alpha * bundle_cost
                )
            log_a = float(logsumexp(np.asarray(bundle_logs)))
        markup = (1.0 + float(np.real(wrightomega(log_a - log_d - 1.0)))) / self.alpha
        if not np.isfinite(markup) or markup <= 0:
            raise OptimizationError(
                f"best response for {firm_name!r} produced markup {markup}"
            )
        return effective_costs + markup

    def equilibrium(
        self,
        initial_prices: Optional[dict] = None,
        tol: float = 1e-10,
        max_rounds: int = 10_000,
    ) -> "CompetitionEquilibrium":
        """Iterate best responses to the Bertrand-Nash equilibrium."""
        if initial_prices is None:
            prices = {
                firm.name: firm.costs + 1.0 / self.alpha for firm in self.firms
            }
        else:
            prices = {
                name: np.asarray(p, dtype=float).copy()
                for name, p in initial_prices.items()
            }
        for round_index in range(1, max_rounds + 1):
            worst_move = 0.0
            for firm in self.firms:
                updated = self.best_response(firm.name, prices)
                worst_move = max(
                    worst_move, float(np.max(np.abs(updated - prices[firm.name])))
                )
                prices[firm.name] = updated
            if worst_move < tol:
                return CompetitionEquilibrium(
                    market=self, prices=prices, rounds=round_index
                )
        raise OptimizationError(
            f"best-response dynamics did not converge in {max_rounds} rounds"
        )

    def _firm(self, name: str) -> Firm:
        for firm in self.firms:
            if firm.name == name:
                return firm
        raise ModelParameterError(f"unknown firm {name!r}")


@dataclasses.dataclass(frozen=True)
class CompetitionEquilibrium:
    """A converged Bertrand-Nash price profile."""

    market: LogitCompetition
    prices: dict
    rounds: int

    def profit(self, firm_name: str) -> float:
        return self.market.profit(firm_name, self.prices)

    def share(self, firm_name: str) -> float:
        return float(self.market.shares(self.prices)[firm_name].sum())

    def markup(self, firm_name: str) -> float:
        """The firm's (bundle-average) equilibrium markup."""
        firm = self.market._firm(firm_name)
        markups = np.asarray(self.prices[firm_name]) - firm.costs
        return float(markups.mean())

    def outside_share(self) -> float:
        return self.market.outside_share(self.prices)

    def is_nash(self, tol: float = 1e-6) -> bool:
        """Every firm's prices are (numerically) its best response."""
        for firm in self.market.firms:
            response = self.market.best_response(firm.name, self.prices)
            if np.max(np.abs(response - self.prices[firm.name])) > tol:
                return False
        return True
