"""Welfare analysis of tiered pricing (extends the paper's §2.2.1).

The paper's Figure 1 shows — on a two-flow example — that tiering can
raise ISP profit *and* customer surplus at once.  This module generalizes
that question to calibrated markets: for any bundling counterfactual it
decomposes social welfare into producer and consumer parts, and tracks
how both move against the blended-rate baseline and the per-flow-pricing
ceiling.

Definitions (all absolute $/month):

* **producer surplus** — ISP profit, Eq. 1;
* **consumer surplus** — area under demand above price (CED) or the logit
  inclusive value (both from the demand models);
* **welfare** — their sum;
* **surplus capture** — like the paper's profit capture, but for consumer
  surplus: ``(CS_new - CS_blended) / |CS_flow - CS_blended|`` where
  ``CS_flow`` is surplus under per-flow pricing.  Note the denominator's
  absolute value: unlike profit, per-flow pricing may *lower* consumer
  surplus, so the index can be negative and is reported alongside the raw
  dollars.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.core.bundling import BundlingStrategy
from repro.core.market import Market

#: Gap below which capture indices are reported as exactly 1.0.
_EPS = 1e-12


@dataclasses.dataclass(frozen=True)
class WelfareBreakdown:
    """Producer/consumer decomposition of one pricing structure."""

    label: str
    profit: float
    consumer_surplus: float

    @property
    def welfare(self) -> float:
        return self.profit + self.consumer_surplus


@dataclasses.dataclass(frozen=True)
class WelfareComparison:
    """Welfare movement from blended pricing to a tiered counterfactual."""

    blended: WelfareBreakdown
    tiered: WelfareBreakdown
    per_flow: WelfareBreakdown

    @property
    def profit_gain(self) -> float:
        return self.tiered.profit - self.blended.profit

    @property
    def surplus_gain(self) -> float:
        return self.tiered.consumer_surplus - self.blended.consumer_surplus

    @property
    def welfare_gain(self) -> float:
        return self.tiered.welfare - self.blended.welfare

    @property
    def pareto_improvement(self) -> bool:
        """Did the ISP *and* its customers both gain (Figure 1's point)?"""
        return self.profit_gain > _EPS and self.surplus_gain > _EPS

    @property
    def surplus_capture(self) -> float:
        """Fraction of the blended-to-per-flow surplus movement realized.

        Signed: positive means surplus moved the same direction per-flow
        pricing would move it; magnitudes above 1 mean the tiered design
        moved it further.
        """
        gap = self.per_flow.consumer_surplus - self.blended.consumer_surplus
        if abs(gap) <= _EPS * max(1.0, abs(self.per_flow.consumer_surplus)):
            return 1.0
        return self.surplus_gain / abs(gap)


def welfare_comparison(
    market: Market,
    strategy: BundlingStrategy,
    n_bundles: int,
) -> WelfareComparison:
    """Blended vs ``n_bundles``-tier vs per-flow welfare on one market."""
    outcome = market.tiered_outcome(strategy, n_bundles)
    scale = market.demand_model.population(market.flows.demands)
    per_flow_prices = market.optimal_flow_prices()
    per_flow = WelfareBreakdown(
        label="per-flow",
        profit=market.max_profit(),
        consumer_surplus=scale
        * market.demand_model.consumer_surplus(market.valuations, per_flow_prices),
    )
    blended = WelfareBreakdown(
        label="blended",
        profit=market.blended_profit(),
        consumer_surplus=market.blended_surplus(),
    )
    tiered = WelfareBreakdown(
        label=f"{n_bundles}-tier ({strategy.name})",
        profit=outcome.profit,
        consumer_surplus=outcome.consumer_surplus,
    )
    return WelfareComparison(blended=blended, tiered=tiered, per_flow=per_flow)


def welfare_curve(
    market: Market,
    strategy: BundlingStrategy,
    bundle_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
) -> "list[WelfareComparison]":
    """Welfare comparisons across tier budgets (a welfare analogue of the
    paper's profit-capture curves)."""
    return [
        welfare_comparison(market, strategy, b) for b in bundle_counts
    ]


def render_welfare_table(comparisons: "list[WelfareComparison]") -> str:
    """Aligned text table of a welfare curve."""
    header = (
        f"{'tiers':<22}{'profit':>14}{'surplus':>14}{'welfare':>14}"
        f"{'pareto':>8}"
    )
    lines = [header, "-" * len(header)]
    first = comparisons[0]
    lines.append(
        f"{'blended (baseline)':<22}{first.blended.profit:>14,.0f}"
        f"{first.blended.consumer_surplus:>14,.0f}"
        f"{first.blended.welfare:>14,.0f}{'-':>8}"
    )
    for comparison in comparisons:
        tiered = comparison.tiered
        lines.append(
            f"{tiered.label:<22}{tiered.profit:>14,.0f}"
            f"{tiered.consumer_surplus:>14,.0f}{tiered.welfare:>14,.0f}"
            f"{'yes' if comparison.pareto_improvement else 'no':>8}"
        )
    lines.append(
        f"{'per-flow (ceiling)':<22}{first.per_flow.profit:>14,.0f}"
        f"{first.per_flow.consumer_surplus:>14,.0f}"
        f"{first.per_flow.welfare:>14,.0f}{'-':>8}"
    )
    return "\n".join(lines)
