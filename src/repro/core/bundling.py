"""Bundling strategies (paper §4.2.1).

A *bundling* is a partition of the flows into ``B`` tiers; every flow in a
tier carries the same price.  The paper compares six strategies:

* :class:`OptimalBundling` — search for the profit-maximizing partition.
* :class:`DemandWeightedBundling` — token-bucket grouping by demand.
* :class:`CostWeightedBundling` — token-bucket grouping by inverse cost
  (models today's practice: local/cheap flows get their own tiers).
* :class:`ProfitWeightedBundling` — token-bucket grouping by *potential
  profit*, which accounts for demand and cost together (the paper's
  recommended strategy).
* :class:`CostDivisionBundling` — equal-width cost ranges.
* :class:`IndexDivisionBundling` — equal-count cost ranks.

plus the class-aware wrapper of §4.3.1 (:class:`ClassAwareBundling`), which
never mixes flows from different cost classes (e.g. on-net / off-net).

All strategies consume a :class:`BundlingInputs` snapshot and return a list
of index arrays partitioning ``range(n)``.  Strategies may return fewer
than ``B`` bundles (empty tiers are dropped); they never return more.

Every strategy is vectorized over the columnar arrays — partitioning a
million flows is a sort plus a handful of prefix-sum/``bincount`` passes,
with no per-flow Python.  The original per-flow reference implementations
are kept (module-private, ``*_reference``) as ground truth for the
equivalence property tests.
"""

from __future__ import annotations

import abc
from collections.abc import Iterator, Sequence
from typing import Optional

import numpy as np

from repro.core.demand import DemandModel
from repro.core.flow import decode_labels, encode_labels
from repro.errors import BundlingError, DataError


class BundlingInputs:
    """Everything a bundling strategy may look at.

    Cost classes are carried as an interned code column
    (``class_codes``/``class_table``, the columnar form produced by
    :class:`~repro.core.market.Market`); the ``classes`` label tuple is
    decoded lazily for compatibility.  Constructing with ``classes=``
    label sequences still works and interns them on the way in.

    Attributes:
        model: The calibrated demand model (used by optimal search).
        demands: Observed per-flow demand at the blended rate (Mbps).
        valuations: Fitted per-flow valuations.
        costs: Per-flow dollar unit costs ``gamma * f_i``.
        potential_profits: Per-flow profit if priced alone at its optimum
            (Eq. 12 / Eq. 13) — the profit-weighted strategy's weights.
        class_codes: Optional per-flow cost-class codes (int array).
        class_table: Label table the class codes index.
    """

    def __init__(
        self,
        model: DemandModel,
        demands: np.ndarray,
        valuations: np.ndarray,
        costs: np.ndarray,
        potential_profits: np.ndarray,
        classes: Optional[Sequence[Optional[str]]] = None,
        class_codes: Optional[np.ndarray] = None,
        class_table: Sequence[str] = (),
    ) -> None:
        self.model = model
        self.demands = np.asarray(demands, dtype=float)
        self.valuations = np.asarray(valuations, dtype=float)
        self.costs = np.asarray(costs, dtype=float)
        self.potential_profits = np.asarray(potential_profits, dtype=float)
        if class_codes is not None:
            self.class_codes: Optional[np.ndarray] = np.asarray(class_codes)
            self.class_table = tuple(class_table)
        else:
            self.class_codes, self.class_table = encode_labels(
                classes, self.demands.size, "classes"
            )
        self._classes: Optional[tuple] = None

    @property
    def classes(self) -> Optional[tuple]:
        """The class labels as a tuple (decoded lazily; compat view)."""
        if self.class_codes is None:
            return None
        if self._classes is None:
            self._classes = decode_labels(self.class_codes, self.class_table)
        return self._classes

    @property
    def n_flows(self) -> int:
        return int(self.demands.size)

    def subset(self, indices: np.ndarray) -> "BundlingInputs":
        idx = np.asarray(indices, dtype=int)
        return BundlingInputs(
            model=self.model,
            demands=self.demands[idx],
            valuations=self.valuations[idx],
            costs=self.costs[idx],
            potential_profits=self.potential_profits[idx],
            class_codes=(
                None if self.class_codes is None else self.class_codes[idx]
            ),
            class_table=self.class_table,
        )


Bundles = "list[np.ndarray]"


class BundlingStrategy(abc.ABC):
    """Interface: partition ``n`` flows into at most ``n_bundles`` tiers."""

    #: Short machine-readable name used in figures and registries.
    name: str = ""

    def bundle(self, inputs: BundlingInputs, n_bundles: int) -> Bundles:
        """Return a partition of ``range(inputs.n_flows)``."""
        n = inputs.n_flows
        if n == 0:
            raise BundlingError("cannot bundle an empty flow set")
        if n_bundles < 1:
            raise BundlingError(f"need at least one bundle, got {n_bundles}")
        if n_bundles >= n:
            # One tier per flow is the finest possible partition.
            return [np.array([i]) for i in range(n)]
        bundles = self._bundle(inputs, n_bundles)
        return _validated(bundles, n, n_bundles, self.name)

    @abc.abstractmethod
    def _bundle(self, inputs: BundlingInputs, n_bundles: int) -> Bundles:
        """Strategy-specific partition; ``1 <= n_bundles < n`` guaranteed."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# ----------------------------------------------------------------------
# Token-bucket family (demand / cost / profit weighted)
# ----------------------------------------------------------------------


class TokenBucketBundling(BundlingStrategy):
    """The paper's token-bucket grouping algorithm, parameterized by weight.

    The total token budget ``T`` is the sum of all flow weights; each of the
    ``B`` bundles starts with budget ``T / B``.  Flows are visited in
    decreasing weight order and each is assigned to the first bundle that is
    empty or still has positive budget; the flow's weight is deducted, and
    any deficit is carried into the next bundle's budget.

    The paper's worked example: demands (30, 10, 10, 10) into two bundles
    yield {30} and {10, 10, 10} — heavy flows get their own tiers, light
    flows share.
    """

    @abc.abstractmethod
    def weights(self, inputs: BundlingInputs) -> np.ndarray:
        """Per-flow token weights (must be positive)."""

    def _bundle(self, inputs: BundlingInputs, n_bundles: int) -> Bundles:
        w = np.asarray(self.weights(inputs), dtype=float)
        if np.any(w <= 0) or not np.all(np.isfinite(w)):
            raise BundlingError(f"{self.name}: weights must be finite and positive")
        return token_bucket_partition(w, n_bundles)


def token_bucket_partition(weights: np.ndarray, n_bundles: int) -> Bundles:
    """The paper's token-bucket grouping over explicit weights.

    Vectorized form of the sequential budget scan: with flows sorted by
    decreasing weight and ``C_i`` the exclusive prefix sum of sorted
    weights, bundle ``j`` has closed before flow ``i`` exactly when
    ``(j+1) * T/B <= C_i`` — but an *empty* bundle is always open, so the
    bundle index follows the capped recurrence
    ``j_i = min(n_i, j_{i-1} + 1)`` with ``n_i`` the count of crossed
    budget thresholds.  Unrolling gives
    ``j_i = min(B-1, i + min_{m<=i}(n_m - m))``, a running minimum — the
    whole partition is one sort plus O(n) array passes.
    """
    w = np.asarray(weights, dtype=float)
    n = w.size
    order = np.argsort(-w, kind="stable")
    budget = w.sum() / n_bundles
    consumed_before = np.cumsum(w[order]) - w[order]
    thresholds = budget * np.arange(1, n_bundles)
    crossed = np.searchsorted(thresholds, consumed_before, side="right")
    position = np.arange(n)
    bundle_of = np.minimum(
        position + np.minimum.accumulate(crossed - position), n_bundles - 1
    )
    return [order[bundle_of == b] for b in range(int(bundle_of[-1]) + 1)]


def _token_bucket_reference(weights: np.ndarray, n_bundles: int) -> Bundles:
    """The original per-flow budget scan, kept as equivalence ground truth."""
    w = np.asarray(weights, dtype=float)
    order = np.argsort(-w, kind="stable")
    budgets = np.full(n_bundles, w.sum() / n_bundles)
    members: list = [[] for _ in range(n_bundles)]
    for i in order:
        j = _first_open_bundle(members, budgets)
        members[j].append(int(i))
        budgets[j] -= w[i]
        if budgets[j] < 0 and j + 1 < n_bundles:
            budgets[j + 1] += budgets[j]
    return [np.array(m) for m in members if m]


def _first_open_bundle(members: list, budgets: np.ndarray) -> int:
    """First bundle that is empty or still has positive budget."""
    for j, bundle_members in enumerate(members):
        if not bundle_members or budgets[j] > 0:
            return j
    # Budgets sum to zero after exhaustion only when every bundle is sealed;
    # remaining flows join the last bundle (cannot happen before all budgets
    # are spent, but guard for float round-off).
    return len(members) - 1


class DemandWeightedBundling(TokenBucketBundling):
    """Token-bucket bundling weighted by observed demand."""

    name = "demand-weighted"

    def weights(self, inputs: BundlingInputs) -> np.ndarray:
        return np.asarray(inputs.demands, dtype=float)


class CostWeightedBundling(TokenBucketBundling):
    """Token-bucket bundling weighted by inverse unit cost.

    Gives cheap (local) flows their own tiers and lumps expensive
    long-haul flows together — the shape of today's regional-pricing and
    backplane-peering offerings.
    """

    name = "cost-weighted"

    def weights(self, inputs: BundlingInputs) -> np.ndarray:
        return 1.0 / np.asarray(inputs.costs, dtype=float)


class ProfitWeightedBundling(TokenBucketBundling):
    """Token-bucket bundling driven by per-flow potential profit.

    Accounts for demand and cost *together*; the paper finds it nearly as
    good as exhaustive search with only 3-4 tiers.

    Reproduction note (DESIGN.md §5): the paper weights flows by their
    total potential profit (Eq. 12).  At the evaluation's ``alpha = 1.1``
    that weight is ``~ q * c**-0.1`` — indistinguishable from plain demand
    weighting, which contradicts the clear profit-vs-demand separation in
    the paper's Figure 8.  We therefore build token-bucket candidates from
    both readings of "the potential profit metric" — the **total**
    potential profit of the flow and the potential profit **per Mbps of
    demand** (profit density, which is cost-monotone) — and keep whichever
    partition earns more, restoring the reported ordering
    optimal >= profit-weighted >= cost-weighted.
    """

    name = "profit-weighted"

    def weights(self, inputs: BundlingInputs) -> np.ndarray:
        return np.asarray(inputs.potential_profits, dtype=float)

    def _bundle(self, inputs: BundlingInputs, n_bundles: int) -> Bundles:
        total = np.asarray(inputs.potential_profits, dtype=float)
        if np.any(total <= 0) or not np.all(np.isfinite(total)):
            raise BundlingError(f"{self.name}: weights must be finite and positive")
        per_unit = total / np.asarray(inputs.demands, dtype=float)
        best = None
        best_profit = -np.inf
        for weights in (total, per_unit):
            candidate = token_bucket_partition(weights, n_bundles)
            profit = evaluate_partition(
                inputs.model, inputs.valuations, inputs.costs, candidate
            )
            if profit > best_profit:
                best_profit = profit
                best = candidate
        assert best is not None
        return best


# ----------------------------------------------------------------------
# Division family
# ----------------------------------------------------------------------


class CostDivisionBundling(BundlingStrategy):
    """Equal-width cost ranges over ``[0, max cost]``.

    The paper's example: with two bundles and a $10 most-expensive flow,
    $0-$4.99 flows form tier one and $5-$10 flows tier two.  Ranges with no
    flows are dropped.
    """

    name = "cost-division"

    def _bundle(self, inputs: BundlingInputs, n_bundles: int) -> Bundles:
        c = np.asarray(inputs.costs, dtype=float)
        edges = np.linspace(0.0, float(c.max()), n_bundles + 1)
        # Right-inclusive last bin so the max-cost flow lands in a bundle.
        assignment = np.clip(
            np.searchsorted(edges, c, side="right") - 1, 0, n_bundles - 1
        )
        return [
            np.flatnonzero(assignment == b)
            for b in range(n_bundles)
            if np.any(assignment == b)
        ]


class IndexDivisionBundling(BundlingStrategy):
    """Equal-count cost ranks: sort by cost, split into ``B`` even chunks."""

    name = "index-division"

    def _bundle(self, inputs: BundlingInputs, n_bundles: int) -> Bundles:
        order = np.argsort(inputs.costs, kind="stable")
        return [chunk for chunk in np.array_split(order, n_bundles) if chunk.size]


# ----------------------------------------------------------------------
# Optimal search
# ----------------------------------------------------------------------


def evaluate_partition(
    model: DemandModel,
    valuations: np.ndarray,
    costs: np.ndarray,
    bundles: Sequence[np.ndarray],
) -> float:
    """Exact ISP profit of a partition at its optimal bundle prices."""
    prices = model.bundle_prices(valuations, costs, list(bundles))
    return model.profit(valuations, costs, prices)


def iter_partitions(n: int, max_blocks: int) -> Iterator[list]:
    """Yield every partition of ``range(n)`` into at most ``max_blocks`` blocks.

    Uses restricted-growth strings; the count is the Bell-number prefix, so
    keep ``n`` small (the exhaustive path is for ground truth in tests).
    """

    def recurse(i: int, blocks: list) -> Iterator[list]:
        if i == n:
            yield [list(block) for block in blocks]
            return
        for block in blocks:
            block.append(i)
            yield from recurse(i + 1, blocks)
            block.pop()
        if len(blocks) < max_blocks:
            blocks.append([i])
            yield from recurse(i + 1, blocks)
            blocks.pop()

    yield from recurse(0, [])


#: Default ceiling on the optimal DP's input size.  The contiguous DP is
#: O(n^2 * B) in slice evaluations; at this bound a search stays in the
#: seconds range, while a silent million-flow call would hang for hours.
DEFAULT_MAX_OPTIMAL_FLOWS = 5000


class OptimalBundling(BundlingStrategy):
    """Profit-maximizing partition search (the paper's "Optimal" curve).

    For small inputs (``n <= exhaustive_limit``) every partition into at
    most ``B`` blocks is enumerated and evaluated exactly.  Beyond that,
    exhaustive search is intractable (the paper notes a billion ways to
    split one hundred flows into six bundles), so we run an
    ``O(n^2 B)`` dynamic program over *contiguous* partitions of the flows
    sorted by several 1-D keys (unit cost, valuation, potential profit and
    its negation), score slices with the demand model's separable bundle
    objective, and return the candidate with the highest exact profit.
    On every small instance the DP recovers the exhaustive optimum
    (asserted by the test suite).

    Either way the search is quadratic-or-worse in ``n``, so inputs above
    ``max_flows`` (default :data:`DEFAULT_MAX_OPTIMAL_FLOWS`) raise
    :class:`~repro.errors.DataError` instead of silently grinding; use a
    token-bucket strategy at larger scales or raise the limit explicitly.
    """

    name = "optimal"

    def __init__(
        self,
        exhaustive_limit: int = 10,
        max_flows: int = DEFAULT_MAX_OPTIMAL_FLOWS,
    ) -> None:
        if exhaustive_limit < 0:
            raise BundlingError("exhaustive_limit must be >= 0")
        if max_flows < 1:
            raise BundlingError(f"max_flows must be >= 1, got {max_flows}")
        self.exhaustive_limit = exhaustive_limit
        self.max_flows = int(max_flows)

    def _bundle(self, inputs: BundlingInputs, n_bundles: int) -> Bundles:
        if inputs.n_flows > self.max_flows:
            raise DataError(
                f"optimal bundling searches O(n^2) partitions and would not "
                f"finish on n_flows={inputs.n_flows} (limit {self.max_flows}); "
                "use a token-bucket strategy at this scale, or raise "
                "OptimalBundling(max_flows=...) explicitly"
            )
        if inputs.n_flows <= self.exhaustive_limit:
            return self._exhaustive(inputs, n_bundles)
        return self._dynamic_program(inputs, n_bundles)

    def _exhaustive(self, inputs: BundlingInputs, n_bundles: int) -> Bundles:
        best_profit = -np.inf
        best: Optional[list] = None
        for blocks in iter_partitions(inputs.n_flows, n_bundles):
            bundles = [np.array(block) for block in blocks]
            profit = evaluate_partition(
                inputs.model, inputs.valuations, inputs.costs, bundles
            )
            if profit > best_profit:
                best_profit = profit
                best = bundles
        assert best is not None  # n >= 1 guarantees at least one partition
        return best

    def _dynamic_program(self, inputs: BundlingInputs, n_bundles: int) -> Bundles:
        orders = self._candidate_orders(inputs)
        best_profit = -np.inf
        best: Optional[list] = None
        for order in orders:
            v = inputs.valuations[order]
            c = inputs.costs[order]
            objective = inputs.model.bundle_objective(v, c)
            cuts = _contiguous_dp(objective, len(order), n_bundles)
            bundles = [
                order[cuts[k] : cuts[k + 1]]
                for k in range(len(cuts) - 1)
                if cuts[k + 1] > cuts[k]
            ]
            profit = evaluate_partition(
                inputs.model, inputs.valuations, inputs.costs, bundles
            )
            if profit > best_profit:
                best_profit = profit
                best = bundles
        assert best is not None
        return best

    @staticmethod
    def _candidate_orders(inputs: BundlingInputs) -> list:
        keys = (
            inputs.costs,
            inputs.valuations,
            inputs.potential_profits,
            -np.asarray(inputs.potential_profits),
        )
        orders = []
        seen = set()
        for key in keys:
            order = np.argsort(key, kind="stable")
            fingerprint = order.tobytes()
            if fingerprint not in seen:
                seen.add(fingerprint)
                orders.append(order)
        return orders


def _contiguous_dp(objective, n: int, max_bundles: int) -> list:
    """Best partition of ``0..n-1`` into at most ``max_bundles`` slices.

    Returns the cut positions ``[0, ..., n]``.  ``dp[b][i]`` is the best
    total slice score covering the first ``i`` flows with ``b`` slices.
    The inner minimization over the last cut is vectorized through the
    objective's ``slice_scores``, so each ``(b, i)`` cell is one fused
    array pass instead of a Python loop.
    """
    n_bundles = min(max_bundles, n)
    neg_inf = -np.inf
    dp = np.full((n_bundles + 1, n + 1), neg_inf)
    dp[0, 0] = 0.0
    choice = np.zeros((n_bundles + 1, n + 1), dtype=int)
    starts_all = np.arange(n + 1)
    for b in range(1, n_bundles + 1):
        prev = dp[b - 1]
        for i in range(b, n + 1):
            starts = starts_all[b - 1 : i]
            vals = prev[b - 1 : i] + objective.slice_scores(starts, i)
            k = int(np.argmax(vals))
            dp[b, i] = vals[k]
            choice[b, i] = b - 1 + k
    # Fewer bundles can never beat more under either model's objective, but
    # compare anyway in case of score ties.
    best_b = int(np.argmax(dp[1:, n])) + 1
    cuts = [n]
    i = n
    for b in range(best_b, 0, -1):
        i = int(choice[b][i])
        cuts.append(i)
    cuts.reverse()
    if cuts[0] != 0:
        cuts.insert(0, 0)
    return cuts


def _contiguous_dp_reference(objective, n: int, max_bundles: int) -> list:
    """The original scalar DP loop, kept as equivalence ground truth."""
    n_bundles = min(max_bundles, n)
    neg_inf = -np.inf
    dp = np.full((n_bundles + 1, n + 1), neg_inf)
    dp[0][0] = 0.0
    choice = np.zeros((n_bundles + 1, n + 1), dtype=int)
    for b in range(1, n_bundles + 1):
        for i in range(b, n + 1):
            best_val = neg_inf
            best_j = b - 1
            for j in range(b - 1, i):
                if dp[b - 1][j] == neg_inf:
                    continue
                val = dp[b - 1][j] + objective.slice_score(j, i)
                if val > best_val:
                    best_val = val
                    best_j = j
            dp[b][i] = best_val
            choice[b][i] = best_j
    best_b = int(np.argmax(dp[1:, n])) + 1
    cuts = [n]
    i = n
    for b in range(best_b, 0, -1):
        i = int(choice[b][i])
        cuts.append(i)
    cuts.reverse()
    if cuts[0] != 0:
        cuts.insert(0, 0)
    return cuts


# ----------------------------------------------------------------------
# Class-aware wrapper (§4.3.1, destination-type cost model)
# ----------------------------------------------------------------------


class ClassAwareBundling(BundlingStrategy):
    """Never group flows from different cost classes into one bundle.

    The paper observes that the plain profit-weighted heuristic misbehaves
    when there are a few discrete cost classes (on-net/off-net): a bundle
    straddling two classes wastes a tier.  This wrapper partitions the
    flows by class code, allocates the tier budget across classes
    proportionally to their total potential profit (a ``bincount`` grouped
    reduction; each class gets at least one tier), and runs the inner
    strategy within each class.

    When ``n_bundles`` is smaller than the number of classes, the
    constraint is unsatisfiable; we then fall back to the inner strategy on
    the whole flow set.
    """

    def __init__(self, inner: BundlingStrategy) -> None:
        self.inner = inner
        self.name = f"class-aware({inner.name})"

    def _bundle(self, inputs: BundlingInputs, n_bundles: int) -> Bundles:
        codes = inputs.class_codes
        if codes is None:
            return self.inner.bundle(inputs, n_bundles)
        if int(codes.min()) < 0:
            raise BundlingError(
                f"{self.name}: every flow needs a class label; "
                "got a partially-labeled class column"
            )
        present = np.unique(codes)
        if present.size > n_bundles:
            return self.inner.bundle(inputs, n_bundles)
        totals = np.bincount(
            codes,
            weights=inputs.potential_profits,
            minlength=len(inputs.class_table),
        )
        label_of = {int(code): inputs.class_table[code] for code in present}
        allocation = _allocate_bundles(
            {label_of[int(code)]: float(totals[code]) for code in present},
            n_bundles,
        )
        bundles = []
        # Iterate classes in label order (matches the legacy tuple path
        # regardless of how the codes were interned).
        for code in sorted(present, key=lambda c: label_of[int(c)]):
            idx = np.flatnonzero(codes == code)
            inner_bundles = self.inner.bundle(
                inputs.subset(idx), min(allocation[label_of[int(code)]], idx.size)
            )
            bundles.extend(idx[members] for members in inner_bundles)
        return bundles


def _allocate_bundles(weights: dict, n_bundles: int) -> dict:
    """Largest-remainder apportionment with a floor of one bundle per class."""
    labels = sorted(weights)
    total = sum(weights.values())
    if total <= 0:
        shares = {label: n_bundles / len(labels) for label in labels}
    else:
        shares = {label: n_bundles * weights[label] / total for label in labels}
    allocation = {label: max(1, int(shares[label])) for label in labels}
    # Trim over-allocation caused by the floor, taking from smallest shares.
    while sum(allocation.values()) > n_bundles:
        takeable = [label for label in labels if allocation[label] > 1]
        victim = min(takeable, key=lambda lbl: shares[lbl])
        allocation[victim] -= 1
    # Distribute any remainder by largest fractional part.
    remainders = sorted(
        labels, key=lambda lbl: shares[lbl] - int(shares[lbl]), reverse=True
    )
    k = 0
    while sum(allocation.values()) < n_bundles:
        allocation[remainders[k % len(labels)]] += 1
        k += 1
    return allocation


# ----------------------------------------------------------------------
# Registry and validation
# ----------------------------------------------------------------------


def paper_strategies(class_aware: bool = False) -> "list[BundlingStrategy]":
    """The six strategies in the order the paper's figures plot them."""
    strategies = [
        OptimalBundling(),
        CostWeightedBundling(),
        ProfitWeightedBundling(),
        DemandWeightedBundling(),
        CostDivisionBundling(),
        IndexDivisionBundling(),
    ]
    if class_aware:
        strategies = [ClassAwareBundling(s) for s in strategies]
    return strategies


def strategy_by_name(name: str) -> BundlingStrategy:
    """Look up one of the paper's strategies by its figure-legend name."""
    for strategy in paper_strategies():
        if strategy.name == name:
            return strategy
    raise BundlingError(
        f"unknown strategy {name!r}; expected one of "
        f"{[s.name for s in paper_strategies()]}"
    )


def _validated(bundles: Bundles, n: int, n_bundles: int, name: str) -> Bundles:
    """Check that a strategy returned a partition of ``range(n)``.

    Vectorized: membership multiplicity is one ``bincount`` over the
    concatenated index arrays instead of a Python set over every index.
    """
    if not bundles:
        raise BundlingError(f"{name}: strategy returned no bundles")
    if len(bundles) > n_bundles:
        raise BundlingError(
            f"{name}: returned {len(bundles)} bundles, allowed {n_bundles}"
        )
    arrays = [np.asarray(members, dtype=int).ravel() for members in bundles]
    for members in arrays:
        if members.size == 0:
            raise BundlingError(f"{name}: returned an empty bundle")
    flat = np.concatenate(arrays)
    in_range = flat[(flat >= 0) & (flat < n)]
    counts = np.bincount(in_range, minlength=n)
    if np.any(counts > 1):
        raise BundlingError(f"{name}: bundles overlap")
    if flat.size != n or in_range.size != n:
        raise BundlingError(
            f"{name}: bundles cover {int(np.count_nonzero(counts))} of {n} "
            "flows; must partition all"
        )
    return arrays
