"""repro — reproduction of "How Many Tiers? Pricing in the Internet
Transit Market" (Valancius et al., SIGCOMM 2011).

The library models a wholesale Internet transit market: it fits demand and
cost models to observed traffic, then runs counterfactuals over tiered
pricing structures to measure how much profit an ISP captures with a given
number of pricing tiers and a given bundling strategy.

Quickstart::

    from repro import CEDDemand, LinearDistanceCost, Market, load_dataset
    from repro import ProfitWeightedBundling

    flows = load_dataset("eu_isp", seed=1)
    market = Market(flows, CEDDemand(alpha=1.1),
                    LinearDistanceCost(theta=0.2), blended_rate=20.0)
    outcome = market.tiered_outcome(ProfitWeightedBundling(), n_bundles=3)
    print(outcome.profit_capture)   # ~0.9 with three well-chosen tiers

Subpackages:

* :mod:`repro.core` — demand/cost models, bundling, the calibrated market.
* :mod:`repro.netflow` — NetFlow-style records, sampling, aggregation.
* :mod:`repro.geo` — coordinates, synthetic GeoIP, region classification.
* :mod:`repro.topology` — PoP graphs, link routing, distances.
* :mod:`repro.synth` — synthetic datasets calibrated to the paper's Table 1.
* :mod:`repro.peering` — blended-vs-tiered worked example and the
  direct-peering bypass model.
* :mod:`repro.accounting` — BGP tier tagging, link- and flow-based
  accounting, billing.
* :mod:`repro.experiments` — drivers that regenerate every paper table
  and figure.
* :mod:`repro.obs` — tracing (spans across processes and threads) and
  the process-global metrics registry.
* :mod:`repro.fleet` — sharded multi-process quote serving over
  shared-memory snapshot segments, with an asyncio socket front door.
* :mod:`repro.config` — typed configuration objects
  (:class:`RuntimeConfig`, :class:`ExecutorConfig`,
  :class:`StreamConfig`, :class:`ServeConfig`, :class:`FleetConfig`,
  :class:`EcosystemConfig`, :class:`ObsConfig`) with one explicit >
  CLI > env > default precedence chain.
* :mod:`repro.ecosystem` — AS-level internet ecosystem generation:
  seeded multi-AS worlds with valley-free routing whose every AS emits
  NetFlow and can run measure → model → design.
* :mod:`repro.mechanisms` — pluggable pricing mechanisms behind one
  ``design/capture/snapshot`` protocol: posted tiers (the paper's
  pipeline, byte-identical), per-window spot auctions, paid peering,
  and a posted+spot hybrid.
"""

from repro.core import (
    BundlingInputs,
    BundlingStrategy,
    CEDDemand,
    ClassAwareBundling,
    CommitContract,
    CommitMarket,
    CompetitionEquilibrium,
    Firm,
    LogitCompetition,
    ConcaveDistanceCost,
    CostDivisionBundling,
    CostModel,
    CostWeightedBundling,
    DemandModel,
    DemandWeightedBundling,
    DestinationTypeCost,
    Flow,
    FlowSet,
    FlowTable,
    IndexDivisionBundling,
    LinearDistanceCost,
    LogitDemand,
    Market,
    OptimalBundling,
    ProfitWeightedBundling,
    RegionalCost,
    TieredOutcome,
    TierSummary,
    capture_table,
    fit_concave_price_curve,
    paper_strategies,
    strategy_by_name,
)
from repro.config import (
    EcosystemConfig,
    ExecutorConfig,
    FleetConfig,
    MechanismConfig,
    ObsConfig,
    RuntimeConfig,
    ServeConfig,
    StreamConfig,
)
from repro.errors import (
    AccountingError,
    BundlingError,
    CalibrationError,
    ConfigurationError,
    DataError,
    ExecutorError,
    MechanismError,
    ModelParameterError,
    OptimizationError,
    QuoteTimeoutError,
    ReproError,
    SnapshotUnavailableError,
    TopologyError,
    WorkerLostError,
    exit_code_for,
)
from repro.mechanisms import (
    MECHANISM_NAMES,
    Hybrid,
    Mechanism,
    MechanismDesign,
    PaidPeering,
    PostedTiers,
    SpotAuction,
    mechanism_by_name,
)
from repro.obs import (
    METRICS,
    Metrics,
    NoopTracer,
    Span,
    TraceContext,
    TraceExporter,
    Tracer,
    configure_tracing,
    get_tracer,
    read_trace,
    summarize_trace,
)
from repro.io import (
    load_design,
    load_flowset,
    save_design,
    save_flowset,
)
from repro.synth import DATASET_NAMES, load_dataset

__version__ = "1.0.0"

__all__ = [
    "AccountingError",
    "BundlingError",
    "BundlingInputs",
    "BundlingStrategy",
    "CEDDemand",
    "CalibrationError",
    "ClassAwareBundling",
    "ConfigurationError",
    "EcosystemConfig",
    "ExecutorConfig",
    "ExecutorError",
    "CommitContract",
    "CommitMarket",
    "CompetitionEquilibrium",
    "Firm",
    "LogitCompetition",
    "ConcaveDistanceCost",
    "CostDivisionBundling",
    "CostModel",
    "CostWeightedBundling",
    "DATASET_NAMES",
    "DataError",
    "DemandModel",
    "DemandWeightedBundling",
    "DestinationTypeCost",
    "FleetConfig",
    "Flow",
    "FlowSet",
    "FlowTable",
    "IndexDivisionBundling",
    "LinearDistanceCost",
    "LogitDemand",
    "MECHANISM_NAMES",
    "METRICS",
    "Market",
    "Mechanism",
    "MechanismConfig",
    "MechanismDesign",
    "MechanismError",
    "Metrics",
    "ModelParameterError",
    "NoopTracer",
    "ObsConfig",
    "OptimalBundling",
    "OptimizationError",
    "PaidPeering",
    "PostedTiers",
    "ProfitWeightedBundling",
    "QuoteTimeoutError",
    "RegionalCost",
    "ReproError",
    "RuntimeConfig",
    "ServeConfig",
    "SnapshotUnavailableError",
    "Span",
    "SpotAuction",
    "StreamConfig",
    "TieredOutcome",
    "TierSummary",
    "TopologyError",
    "TraceContext",
    "TraceExporter",
    "Tracer",
    "WorkerLostError",
    "capture_table",
    "configure_tracing",
    "exit_code_for",
    "fit_concave_price_curve",
    "get_tracer",
    "load_dataset",
    "load_design",
    "load_flowset",
    "mechanism_by_name",
    "read_trace",
    "save_design",
    "save_flowset",
    "summarize_trace",
    "paper_strategies",
    "strategy_by_name",
    "__version__",
]
