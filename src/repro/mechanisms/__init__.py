"""Pluggable pricing mechanisms: posted tiers, spot, peering, hybrid.

One seam for every market design (see :mod:`repro.mechanisms.base`): a
:class:`Mechanism` turns columnar flows into a :class:`MechanismDesign`
whose tier-shaped output every downstream layer — streaming repricer,
pricing snapshots, quote serving, ecosystem — consumes unchanged.  The
default :class:`PostedTiers` reproduces the paper's pipeline
byte-for-byte; :class:`SpotAuction`, :class:`PaidPeering`, and
:class:`Hybrid` add the PAPERS.md result families behind the same
protocol.
"""

from repro.mechanisms.base import (
    ASSIGN_PEERED,
    ASSIGN_POSTED,
    ASSIGN_SPOT,
    DEFAULT_MECHANISM,
    MECHANISM_NAMES,
    Mechanism,
    MechanismDesign,
    mechanism_by_name,
    score_partition,
    tag_config_digest,
)
from repro.mechanisms.hybrid import Hybrid
from repro.mechanisms.peering import PaidPeering, PeeringTerms
from repro.mechanisms.posted import PostedTiers
from repro.mechanisms.spot import SpotAuction, cleared_supply, clearing_price

__all__ = [
    "ASSIGN_PEERED",
    "ASSIGN_POSTED",
    "ASSIGN_SPOT",
    "DEFAULT_MECHANISM",
    "MECHANISM_NAMES",
    "Hybrid",
    "Mechanism",
    "MechanismDesign",
    "PaidPeering",
    "PeeringTerms",
    "PostedTiers",
    "SpotAuction",
    "cleared_supply",
    "clearing_price",
    "mechanism_by_name",
    "score_partition",
    "tag_config_digest",
]
