"""Spot-auction transit: uniform-price per-window clearing.

Models the *Spot Transit* result family (PAPERS.md): instead of posting
a small tier book, the ISP runs a uniform-price auction per delivery
window.  Demand bids are the calibrated CED curves — at clearing price
``p`` flow ``i`` takes ``(v_i/p)^alpha`` — so clearing supply ``S``
means solving ``sum_i (v_i/p)^alpha = S``, which has the closed form

.. math::  p_c(S) = (\\sum_i v_i^\\alpha / S)^{1/\\alpha}

(:func:`clearing_price` — strictly decreasing in supply).  A
profit-maximizing auctioneer offers the supply whose clearing price is
the bundle's Eq. 5 uniform optimum, so each auction lot prices at
``demand_model.uniform_price`` of its members — which is also what makes
the mechanism exact for non-CED demand families.

Lots are contiguous runs of the cost-sorted flow order (cheap routes
clear cheap, long hauls clear dear), one lot per auction window.  With
many windows the lot prices approach per-flow optimal pricing, which is
why spot beats a 3-tier posted book on elastic (cost-dominated) demand
— but by Jensen's inequality spot revenue can never exceed the per-flow
posted optimum (``p^{1-alpha}`` is convex), the invariant the tests pin.

Everything is vectorized over the FlowTable columns: one argsort, one
``array_split``, closed-form prices per lot.
"""

from __future__ import annotations

import numpy as np

from repro.core.market import Market
from repro.errors import MechanismError
from repro.mechanisms.base import (
    ASSIGN_SPOT,
    Mechanism,
    MechanismDesign,
    score_partition,
)


def clearing_price(valuations, supply: float, alpha: float) -> float:
    """Uniform price at which CED bids absorb exactly ``supply`` Mbps.

    Solves ``sum_i (v_i/p)^alpha = S`` for ``p``; strictly decreasing in
    ``S``.  Valuations are normalized before exponentiation so large
    ``alpha`` does not overflow (same trick as the CED closed forms).
    """
    v = np.asarray(valuations, dtype=float)
    if v.size == 0 or np.any(v <= 0) or not np.all(np.isfinite(v)):
        raise MechanismError("clearing_price requires finite positive valuations")
    if not np.isfinite(supply) or supply <= 0:
        raise MechanismError(f"supply must be positive, got {supply}")
    if alpha <= 1.0:
        raise MechanismError(f"clearing requires alpha > 1, got {alpha}")
    vmax = float(v.max())
    w_sum = float(np.sum((v / vmax) ** alpha))
    return vmax * (w_sum / float(supply)) ** (1.0 / alpha)


def cleared_supply(valuations, price: float, alpha: float) -> float:
    """Total CED demand (Mbps) absorbed at a uniform price — the inverse
    of :func:`clearing_price`."""
    v = np.asarray(valuations, dtype=float)
    if v.size == 0 or np.any(v <= 0) or not np.all(np.isfinite(v)):
        raise MechanismError("cleared_supply requires finite positive valuations")
    if not np.isfinite(price) or price <= 0:
        raise MechanismError(f"price must be positive, got {price}")
    if alpha <= 1.0:
        raise MechanismError(f"clearing requires alpha > 1, got {alpha}")
    return float(np.sum((v / float(price)) ** alpha))


class SpotAuction(Mechanism):
    """Uniform-price per-window auction over cost-ordered lots.

    Args:
        windows: Auction windows per billing period; each window clears
            one contiguous lot of the cost-sorted flows.  More windows
            means finer price discrimination (→ per-flow optimal as
            ``windows -> n_flows``).
    """

    name = "spot-auction"
    reclears = True

    def __init__(self, windows: int = 24) -> None:
        if int(windows) < 1:
            raise MechanismError(f"windows must be >= 1, got {windows}")
        self.windows = int(windows)

    def lots(self, costs: np.ndarray) -> "list[np.ndarray]":
        """Cost-ordered contiguous auction lots (index arrays)."""
        order = np.argsort(np.asarray(costs, dtype=float), kind="stable")
        k = min(self.windows, order.size)
        return list(np.array_split(order, k))

    def design_on(self, market: Market, provider_asn: int = 64500) -> MechanismDesign:
        bundles = self.lots(market.costs)
        prices = market.demand_model.bundle_prices(
            market.valuations, market.costs, bundles
        )
        assignment = np.full(market.n_flows, ASSIGN_SPOT, dtype=np.int8)
        return score_partition(
            market,
            bundles,
            prices,
            mechanism=self.name,
            posted_tiers=0,
            provider_asn=provider_asn,
            assignment=assignment,
        )

    def describe(self) -> str:
        return f"{self.name}(W={self.windows})"
