"""The pricing-mechanism seam: one protocol, many market designs.

The paper prices transit one way — posted tiered prices derived from a
bundling strategy — and that assumption used to be hardwired through
every layer (core design, streaming repricer, serve snapshots, ecosystem
pricing).  :class:`Mechanism` extracts the seam: a mechanism turns a
calibrated :class:`~repro.core.market.Market` into a
:class:`MechanismDesign` — per-flow prices, a frozen
:class:`~repro.accounting.tier_designer.TierDesign`, and the paper's
profit-capture score — and every downstream consumer (repricer,
snapshot, quote engine, ecosystem) works off that design without caring
how the prices were formed.

The crucial representational trick: *every* mechanism emits its result
as a tier design.  A spot auction's per-window lots are tiers whose
rates happen to be clearing prices; a paid-peering split is a two-tier
design whose first tier is the negotiated peering rate; a hybrid is a
posted book followed by spot lots.  Because the wire format downstream
(:class:`~repro.serve.snapshot.PricingSnapshot`, the fleet shared-memory
segments) already speaks tiers, no new formats are needed — a snapshot
built from a spot design quotes spot flows exactly like posted ones.

Mechanism provenance rides in the snapshot's ``config_digest``: the
default posted-tiers mechanism leaves digests byte-identical to the
pre-mechanism code (warm caches survive), while any other mechanism
appends a readable ``|mechanism=<name>`` tag (see
:func:`tag_config_digest`).
"""

from __future__ import annotations

import abc
import dataclasses
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.accounting.tier_designer import TierDesign
from repro.core.cost import CostModel
from repro.core.demand import DemandModel
from repro.core.flow import FlowSet
from repro.core.market import Market, TierSummary
from repro.errors import MechanismError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serve -> stream)
    from repro.serve.snapshot import PricingSnapshot

#: Registered mechanism names, in presentation order.  Kept in sync with
#: :data:`repro.config.MECHANISMS` (a literal copy there avoids importing
#: this package from the config layer); a test asserts they match.
MECHANISM_NAMES = ("posted-tiers", "spot-auction", "paid-peering", "hybrid")

#: The default mechanism — the paper's posted tiered prices.  Designs,
#: captures, and digests under this name are byte-identical to the
#: pre-mechanism code paths.
DEFAULT_MECHANISM = "posted-tiers"

#: Per-flow assignment codes carried by :attr:`MechanismDesign.assignment`.
ASSIGN_POSTED = 0
ASSIGN_SPOT = 1
ASSIGN_PEERED = 2


def tag_config_digest(config_digest: str, mechanism_name: str) -> str:
    """Stamp mechanism provenance into a snapshot/stream config digest.

    The default posted-tiers mechanism returns the digest unchanged, so
    every pre-mechanism digest (and the warm caches keyed on them) stays
    valid.  Any other mechanism appends a readable ``|mechanism=<name>``
    suffix; downstream consumers treat the digest as an opaque string, so
    the tag changes identity without changing any wire format.
    """
    if mechanism_name == DEFAULT_MECHANISM:
        return str(config_digest)
    return f"{config_digest}|mechanism={mechanism_name}"


@dataclasses.dataclass(frozen=True)
class MechanismDesign:
    """What a mechanism produced on one calibrated market.

    Attributes:
        mechanism: Name of the mechanism that produced it.
        prices: Per-flow unit prices ($/Mbps/month; equal within a tier).
        profit: Absolute ISP profit at those prices ($/month).
        profit_capture: Fraction of the blended-to-max profit gap closed.
        consumer_surplus: Aggregate customer surplus at those prices.
        tiers: Per-tier summaries sorted by price (posted + spot alike).
        tier_design: The frozen, operable design (rates + destination
            map) every downstream consumer speaks — ``None`` when the
            flows carry no destination addresses (pure counterfactual
            datasets), in which case the design can be scored but not
            published or snapshotted.
        posted_tiers: Leading tiers (ids ``1..posted_tiers``) that are
            posted contracts governed by the drift gate; the rest are
            spot lots re-cleared every window.
        assignment: Optional per-flow mechanism assignment
            (:data:`ASSIGN_POSTED` / :data:`ASSIGN_SPOT` /
            :data:`ASSIGN_PEERED`), ``None`` when every flow trades the
            same way.
        gamma / blended_rate / reference_distance_miles / provider_asn:
            Calibration frame needed to publish the design (mirrors
            :class:`~repro.stream.repricer.DesignPublication`).
    """

    mechanism: str
    prices: np.ndarray
    profit: float
    profit_capture: float
    consumer_surplus: float
    tiers: "list[TierSummary]"
    tier_design: "Optional[TierDesign]"
    posted_tiers: int
    gamma: float
    blended_rate: float
    reference_distance_miles: float
    provider_asn: int
    assignment: "Optional[np.ndarray]" = None

    @property
    def n_tiers(self) -> int:
        return len(self.tiers)

    @property
    def tier_prices(self) -> "tuple[float, ...]":
        """Per-tier rates sorted ascending (works without destinations)."""
        return tuple(t.price for t in self.tiers)

    @property
    def spot_tiers(self) -> int:
        """Trailing tiers that re-clear every window (spot lots)."""
        return self.n_tiers - self.posted_tiers

    @property
    def welfare(self) -> float:
        """Social welfare: ISP profit plus consumer surplus."""
        return self.profit + self.consumer_surplus


class Mechanism(abc.ABC):
    """A market design: turns a calibrated market into priced tiers.

    Subclasses set :attr:`name` (their registry key) and implement
    :meth:`design_on`.  :attr:`reclears` marks mechanisms whose prices
    are re-cleared every stream window (spot and hybrid): the repricer
    publishes their designs every priced window, while the drift gate
    keeps governing only the posted component.
    """

    #: Registry name (one of :data:`MECHANISM_NAMES`).
    name: str = ""
    #: True when the mechanism re-clears prices every stream window.
    reclears: bool = False

    @abc.abstractmethod
    def design_on(self, market: Market, provider_asn: int = 64500) -> MechanismDesign:
        """Design prices on an already-calibrated market."""

    def design(
        self,
        flows: FlowSet,
        demand_model: DemandModel,
        cost_model: CostModel,
        blended_rate: float = 20.0,
        provider_asn: int = 64500,
    ) -> MechanismDesign:
        """Calibrate a market on columnar flows, then design prices.

        This is the protocol entry point named in the seam:
        ``design(FlowTable, DemandModel, CostModel) -> MechanismDesign``.
        """
        market = Market(flows, demand_model, cost_model, blended_rate)
        return self.design_on(market, provider_asn=provider_asn)

    def capture(
        self,
        flows: FlowSet,
        demand_model: DemandModel,
        cost_model: CostModel,
        blended_rate: float = 20.0,
    ) -> float:
        """Profit capture of this mechanism on columnar flows."""
        return self.design(flows, demand_model, cost_model, blended_rate).profit_capture

    def reclear_on(
        self,
        market: Market,
        prior_design: TierDesign,
        posted_tiers: int,
        provider_asn: int = 64500,
    ) -> MechanismDesign:
        """Re-clear the spot component, holding the posted book fixed.

        Called by the repricer on windows where the drift gate *holds*
        but the mechanism :attr:`reclears`: spot lots re-price at the
        window's clearing prices while posted contracts keep their
        rates.  The default is a full redesign, correct for mechanisms
        with no posted component (pure spot); :class:`~repro.mechanisms.
        hybrid.Hybrid` overrides it to pin the held posted book.
        """
        del prior_design, posted_tiers  # no posted component by default
        return self.design_on(market, provider_asn=provider_asn)

    def snapshot(
        self,
        design: MechanismDesign,
        *,
        version: int,
        config_digest: str,
        published_at_ms: int = 0,
    ) -> "PricingSnapshot":
        """Freeze a design into a quote-ready, mechanism-tagged snapshot.

        Same wire format as every posted-tiers snapshot — the mechanism
        tag lives inside the (opaque) config digest — so ``QuoteEngine``
        and the fleet shared-memory path serve spot and peering designs
        unchanged.
        """
        from repro.serve.snapshot import PricingSnapshot

        if design.tier_design is None:
            raise MechanismError(
                "cannot snapshot a design without destination addresses"
            )
        return PricingSnapshot.build(
            design.tier_design,
            version=version,
            config_digest=tag_config_digest(config_digest, self.name),
            blended_rate=design.blended_rate,
            gamma=design.gamma,
            reference_distance_miles=design.reference_distance_miles,
            published_at_ms=published_at_ms,
        )

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debug nicety
        return f"{type(self).__name__}({self.describe()!r})"


def score_partition(
    market: Market,
    bundles: list,
    prices: np.ndarray,
    *,
    mechanism: str,
    posted_tiers: int,
    provider_asn: int = 64500,
    assignment: "Optional[np.ndarray]" = None,
) -> MechanismDesign:
    """Score an arbitrary partition + price vector into a MechanismDesign.

    The mechanism-layer analogue of :meth:`Market.tiered_outcome`: same
    profit / capture / surplus / tier-summary computations (so posted
    mechanisms reproduce legacy numbers bit-for-bit), but over any
    partition — spot lots, peering splits, hybrid books.
    """
    if not bundles:
        raise MechanismError(f"{mechanism}: empty partition")
    profit = market.profit_at(prices)
    scale = market.demand_model.population(market.flows.demands)
    surplus = scale * market.demand_model.consumer_surplus(
        market.valuations, prices
    )
    quantities = market.quantities(prices)
    tiers = sorted(
        (
            TierSummary(
                price=float(prices[members[0]]),
                n_flows=int(members.size),
                demand_mbps=float(np.sum(quantities[members])),
                mean_cost=float(np.mean(market.costs[members])),
            )
            for members in bundles
        ),
        key=lambda t: t.price,
    )
    tier_design = None
    if market.flows.dsts is not None:
        tier_design = TierDesign.from_bundles(
            market, bundles, prices, provider_asn=provider_asn
        )
    return MechanismDesign(
        mechanism=mechanism,
        prices=prices,
        profit=profit,
        profit_capture=market.profit_capture(profit),
        consumer_surplus=float(surplus),
        tiers=tiers,
        tier_design=tier_design,
        posted_tiers=int(posted_tiers),
        gamma=float(market.gamma),
        blended_rate=float(market.blended_rate),
        reference_distance_miles=float(market.flows.distances.max()),
        provider_asn=int(provider_asn),
        assignment=assignment,
    )


def mechanism_by_name(
    name: str,
    *,
    strategy=None,
    n_tiers: int = 3,
    spot_windows: int = 24,
    elasticity_split: float = 0.5,
    exchange_radius_miles: "Optional[float]" = None,
    bargaining: float = 0.5,
) -> Mechanism:
    """Build a registered mechanism from its name.

    Each mechanism consumes the subset of the keyword knobs it
    understands (the rest are ignored), so one call site — the CLI, the
    config layer, ``design_for_as`` — can hold a single knob set.

    Raises:
        MechanismError: For an unregistered name.
    """
    from repro.mechanisms.hybrid import Hybrid
    from repro.mechanisms.peering import PaidPeering
    from repro.mechanisms.posted import PostedTiers
    from repro.mechanisms.spot import SpotAuction

    if name == "posted-tiers":
        return PostedTiers(strategy=strategy, n_tiers=n_tiers)
    if name == "spot-auction":
        return SpotAuction(windows=spot_windows)
    if name == "paid-peering":
        return PaidPeering(
            exchange_radius_miles=exchange_radius_miles, bargaining=bargaining
        )
    if name == "hybrid":
        return Hybrid(
            strategy=strategy,
            n_tiers=n_tiers,
            spot_windows=spot_windows,
            elasticity_split=elasticity_split,
        )
    raise MechanismError(
        f"unknown mechanism {name!r}; expected one of {MECHANISM_NAMES}"
    )
