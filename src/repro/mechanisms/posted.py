"""Posted tiered prices — the paper's mechanism, behind the new seam.

:class:`PostedTiers` wraps :meth:`Market.tiered_outcome` and
:meth:`TierDesign.from_outcome` *unchanged*: the partition comes from
one of the six bundling strategies, each tier is priced at its
profit-maximizing uniform price, and the frozen design is the same
object the pre-mechanism code produced.  A test asserts designs,
capture tables, and snapshot digests are byte-identical to the legacy
direct path — this class adds provenance, not behavior.
"""

from __future__ import annotations

from repro.core.bundling import BundlingStrategy, ProfitWeightedBundling
from repro.core.market import Market
from repro.errors import MechanismError
from repro.mechanisms.base import Mechanism, MechanismDesign, score_partition


class PostedTiers(Mechanism):
    """The default mechanism: posted tiers from a bundling strategy.

    Args:
        strategy: Bundling strategy (default: profit-weighted, the
            paper's recommendation).
        n_tiers: Tier budget.
    """

    name = "posted-tiers"
    reclears = False

    def __init__(
        self, strategy: "BundlingStrategy | None" = None, n_tiers: int = 3
    ) -> None:
        if n_tiers < 1:
            raise MechanismError(f"n_tiers must be >= 1, got {n_tiers}")
        self.strategy = strategy or ProfitWeightedBundling()
        self.n_tiers = int(n_tiers)

    def design_on(self, market: Market, provider_asn: int = 64500) -> MechanismDesign:
        outcome = market.tiered_outcome(self.strategy, self.n_tiers)
        design = score_partition(
            market,
            outcome.bundles,
            outcome.prices,
            mechanism=self.name,
            posted_tiers=len(outcome.bundles),
            provider_asn=provider_asn,
        )
        # Paranoia, cheaply: the seam must not drift from the legacy
        # scoring (both go through the same profit/capture code, so this
        # can only fire if someone forks score_partition).
        assert design.profit == outcome.profit
        return design

    def describe(self) -> str:
        return f"{self.name}({self.strategy.name}, B={self.n_tiers})"
