"""Paid peering priced against transit via advertising-profit valuations.

Extends the §2.2.2 bypass economics (:mod:`repro.peering.bypass`) into a
full pricing mechanism, following the *From advertising profits to
bandwidth prices* direction in PAPERS.md: the peer is a content network
whose willingness to pay for premium interconnection is capped by the
advertising profit its traffic earns — which is exactly what the
calibrated valuations ``v_i`` encode (demand observed at the blended
rate reveals value).  The negotiation:

* **Eligible flows** terminate within the exchange catchment *and* would
  bypass the blended rate — their self-provisioned link (amortized at
  ``direct_cost_factor`` times the ISP's cost) undercuts ``P0``.  This
  is :attr:`BypassScenario.customer_bypasses`, vectorized.
* **Floor**: the ISP's tiered reservation price ``(M+1)·c + A``
  (:attr:`BypassScenario.tiered_price`) on the eligible flows'
  demand-weighted unit cost.
* **Cap**: the peer's best outside option — the smaller of its direct
  build cost and the advertising-profit monopoly price the ISP could
  post on those valuations (``demand_model.uniform_price``), never above
  the blended rate it pays today.
* **Rate**: a Nash split of ``[floor, cap]`` at the ISP's bargaining
  weight.

The design is a two-tier book — tier 1 the negotiated peering rate on
eligible flows, tier 2 the uniform-optimal transit rate on the rest —
so every downstream consumer (snapshots, quotes, fleet) serves it
unchanged.  Both tiers are posted contracts: the mechanism does not
re-clear per window, the drift gate governs it whole.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.core.market import Market
from repro.errors import MechanismError
from repro.mechanisms.base import (
    ASSIGN_PEERED,
    ASSIGN_POSTED,
    Mechanism,
    MechanismDesign,
    score_partition,
)
from repro.peering.bypass import BypassScenario


@dataclasses.dataclass(frozen=True)
class PeeringTerms:
    """The negotiated terms, for provenance and rendering.

    ``outcome`` is the :meth:`BypassScenario.outcome` of the aggregate
    eligible bundle — the regime the negotiation happened in.
    """

    rate: float
    floor: float
    cap: float
    ad_value: float
    build_cost: float
    outcome: str
    n_peered: int
    n_transit: int


class PaidPeering(Mechanism):
    """Premium peering negotiated against transit for bypass-prone flows.

    Args:
        exchange_radius_miles: Physical catchment of the exchange; flows
            at or under this haul distance can peer.  ``None`` (default)
            uses the median flow distance — "the nearer half of the
            traffic" — which stays non-degenerate on any traffic matrix.
        bargaining: ISP bargaining weight in ``[0, 1]``; 0 prices at the
            floor (peer captures the surplus), 1 at the cap.
        direct_cost_factor: The peer's self-provisioning cost premium
            over the ISP's unit cost (> 0; 1.5 = 50 % less efficient).
        margin: ISP margin ``M`` in the tiered reservation price.
        accounting_overhead: Per-unit overhead ``A`` of the peering
            contract.
    """

    name = "paid-peering"
    reclears = False

    def __init__(
        self,
        exchange_radius_miles: Optional[float] = None,
        bargaining: float = 0.5,
        direct_cost_factor: float = 1.5,
        margin: float = 0.25,
        accounting_overhead: float = 0.0,
    ) -> None:
        if exchange_radius_miles is not None and exchange_radius_miles <= 0:
            raise MechanismError("exchange_radius_miles must be positive")
        if not 0.0 <= bargaining <= 1.0:
            raise MechanismError(f"bargaining must be in [0, 1], got {bargaining}")
        if direct_cost_factor <= 0:
            raise MechanismError("direct_cost_factor must be positive")
        self.exchange_radius_miles = (
            None if exchange_radius_miles is None else float(exchange_radius_miles)
        )
        self.bargaining = float(bargaining)
        self.direct_cost_factor = float(direct_cost_factor)
        self.margin = float(margin)
        self.accounting_overhead = float(accounting_overhead)

    # ------------------------------------------------------------------

    def eligible_flows(self, market: Market) -> np.ndarray:
        """Indices of flows that can (and would) move to paid peering.

        Vectorized bypass test over the FlowTable columns: within the
        exchange catchment and ``direct cost < blended rate``.
        """
        distances = market.flows.distances
        radius = self.exchange_radius_miles
        if radius is None:
            radius = float(np.median(distances))
        local = distances <= radius
        would_bypass = self.direct_cost_factor * market.costs < market.blended_rate
        return np.flatnonzero(local & would_bypass)

    def negotiate(self, market: Market) -> PeeringTerms:
        """Run the negotiation on the eligible bundle (no design yet)."""
        eligible = self.eligible_flows(market)
        if eligible.size == 0:
            raise MechanismError(
                "paid peering degenerates: no flow is both exchange-local "
                "and bypass-prone at this blended rate"
            )
        if eligible.size == market.n_flows:
            raise MechanismError(
                "paid peering degenerates: every flow would peer; "
                "no transit side to price against"
            )
        demands = market.flows.demands[eligible]
        c_peer = float(
            np.sum(market.costs[eligible] * demands) / np.sum(demands)
        )
        build_cost = self.direct_cost_factor * c_peer
        # The advertising-profit cap: the monopoly uniform price posted
        # tiers would extract from the eligible flows' fitted valuations.
        ad_value = float(
            market.demand_model.uniform_price(
                market.valuations[eligible], market.costs[eligible]
            )
        )
        scenario = BypassScenario(
            blended_rate=market.blended_rate,
            isp_unit_cost=c_peer,
            direct_unit_cost=build_cost,
            margin=self.margin,
            accounting_overhead=self.accounting_overhead,
        )
        floor = scenario.tiered_price
        cap = min(ad_value, build_cost, market.blended_rate)
        rate = floor + self.bargaining * (cap - floor) if cap > floor else floor
        return PeeringTerms(
            rate=float(rate),
            floor=float(floor),
            cap=float(cap),
            ad_value=ad_value,
            build_cost=float(build_cost),
            outcome=scenario.outcome(),
            n_peered=int(eligible.size),
            n_transit=int(market.n_flows - eligible.size),
        )

    def design_on(self, market: Market, provider_asn: int = 64500) -> MechanismDesign:
        terms = self.negotiate(market)
        eligible = self.eligible_flows(market)
        mask = np.zeros(market.n_flows, dtype=bool)
        mask[eligible] = True
        transit = np.flatnonzero(~mask)
        bundles = [eligible, transit]
        prices = np.empty(market.n_flows, dtype=float)
        prices[eligible] = terms.rate
        prices[transit] = market.demand_model.uniform_price(
            market.valuations[transit], market.costs[transit]
        )
        assignment = np.where(mask, ASSIGN_PEERED, ASSIGN_POSTED).astype(np.int8)
        return score_partition(
            market,
            bundles,
            prices,
            mechanism=self.name,
            posted_tiers=len(bundles),
            provider_asn=provider_asn,
            assignment=assignment,
        )

    def describe(self) -> str:
        radius = (
            "median" if self.exchange_radius_miles is None
            else f"{self.exchange_radius_miles:g}mi"
        )
        return f"{self.name}({radius}, b={self.bargaining:g})"
