"""Hybrid mechanism: a posted tier book with spot overflow.

Real transit markets are not all-posted or all-auction: contracted
customers buy committed tiers while price-sensitive, substitutable
traffic chases the spot rate.  :class:`Hybrid` models that split
per flow, by an elasticity proxy:

* **Assignment** — rank flows by cost-to-valuation ratio ``c_i / v_i``.
  A flow with a thin margin between what the route costs and what the
  customer values it at responds sharply to price — the elastic tail.
  The top ``elasticity_split`` fraction trades on spot; the rest buy
  posted tiers.
* **Posted side** — the configured bundling strategy runs on the posted
  subset (via :meth:`BundlingInputs.subset`), priced at uniform optima:
  tiers ``1..B``.
* **Spot side** — cost-ordered contiguous lots, one per auction window,
  each at its clearing price (see :mod:`repro.mechanisms.spot`): tiers
  ``B+1..B+W``.

In the streaming repricer the two halves age differently: the drift
gate governs only the posted book (:meth:`reclear_on` pins held posted
rates), while spot lots — and any *overflow*, destinations that appear
in a window but are not in the held posted book — re-clear every
window.
"""

from __future__ import annotations

import numpy as np

from repro.accounting.tier_designer import TierDesign
from repro.core.bundling import BundlingStrategy, ProfitWeightedBundling
from repro.core.market import Market
from repro.errors import MechanismError
from repro.mechanisms.base import (
    ASSIGN_POSTED,
    ASSIGN_SPOT,
    Mechanism,
    MechanismDesign,
    score_partition,
)


class Hybrid(Mechanism):
    """Posted tiers for committed flows, spot lots for the elastic tail.

    Args:
        strategy: Bundling strategy for the posted book.
        n_tiers: Posted tier budget.
        spot_windows: Auction windows for the spot side.
        elasticity_split: Fraction of flows (most elastic first) sent to
            spot; 0 is pure posted, 1 pure spot.
    """

    name = "hybrid"
    reclears = True

    def __init__(
        self,
        strategy: "BundlingStrategy | None" = None,
        n_tiers: int = 3,
        spot_windows: int = 24,
        elasticity_split: float = 0.5,
    ) -> None:
        if n_tiers < 1:
            raise MechanismError(f"n_tiers must be >= 1, got {n_tiers}")
        if int(spot_windows) < 1:
            raise MechanismError(f"spot_windows must be >= 1, got {spot_windows}")
        if not 0.0 <= elasticity_split <= 1.0:
            raise MechanismError(
                f"elasticity_split must be in [0, 1], got {elasticity_split}"
            )
        self.strategy = strategy or ProfitWeightedBundling()
        self.n_tiers = int(n_tiers)
        self.spot_windows = int(spot_windows)
        self.elasticity_split = float(elasticity_split)

    # ------------------------------------------------------------------

    def spot_flows(self, market: Market) -> np.ndarray:
        """Indices of the flows assigned to spot (sorted ascending).

        Deterministic: a stable argsort of ``c/v`` decides, so equal
        ratios break by flow index.
        """
        n = market.n_flows
        if self.elasticity_split <= 0.0:
            return np.empty(0, dtype=np.intp)
        if self.elasticity_split >= 1.0:
            return np.arange(n)
        n_spot = int(round(self.elasticity_split * n))
        n_spot = min(max(n_spot, 1), n - 1)
        ratio = market.costs / market.valuations
        order = np.argsort(ratio, kind="stable")
        return np.sort(order[n - n_spot:])

    def _spot_lots(self, market: Market, spot_idx: np.ndarray) -> "list[np.ndarray]":
        by_cost = spot_idx[np.argsort(market.costs[spot_idx], kind="stable")]
        k = min(self.spot_windows, by_cost.size)
        return list(np.array_split(by_cost, k))

    def design_on(self, market: Market, provider_asn: int = 64500) -> MechanismDesign:
        spot_idx = self.spot_flows(market)
        mask = np.zeros(market.n_flows, dtype=bool)
        mask[spot_idx] = True
        posted_idx = np.flatnonzero(~mask)

        posted_bundles: "list[np.ndarray]" = []
        if posted_idx.size:
            budget = min(self.n_tiers, int(posted_idx.size))
            sub = self.strategy.bundle(
                market.bundling_inputs().subset(posted_idx), budget
            )
            posted_bundles = [posted_idx[members] for members in sub]
        spot_bundles = self._spot_lots(market, spot_idx) if spot_idx.size else []

        bundles = posted_bundles + spot_bundles
        prices = market.demand_model.bundle_prices(
            market.valuations, market.costs, bundles
        )
        assignment = np.where(mask, ASSIGN_SPOT, ASSIGN_POSTED).astype(np.int8)
        return score_partition(
            market,
            bundles,
            prices,
            mechanism=self.name,
            posted_tiers=len(posted_bundles),
            provider_asn=provider_asn,
            assignment=assignment,
        )

    def reclear_on(
        self,
        market: Market,
        prior_design: TierDesign,
        posted_tiers: int,
        provider_asn: int = 64500,
    ) -> MechanismDesign:
        """Re-clear spot against this window, pinning the held posted book.

        Flows toward destinations in the held posted tiers keep their
        posted rates; everything else — the spot-assigned tail *and*
        overflow destinations the posted book has never seen — clears
        on fresh cost-ordered lots at this window's prices.
        """
        dsts = market.flows.dsts
        if dsts is None or posted_tiers <= 0:
            return self.design_on(market, provider_asn=provider_asn)
        tier_of = prior_design.tier_of_destination
        held = np.asarray(
            [tier_of.get(dst, 0) for dst in dsts], dtype=np.int64
        )
        held[held > posted_tiers] = 0  # prior spot lots do not pin prices

        posted_bundles = []
        posted_rates = []
        for tier in sorted(set(held[held > 0].tolist())):
            posted_bundles.append(np.flatnonzero(held == tier))
            posted_rates.append(prior_design.rates[int(tier)])
        spot_idx = np.flatnonzero(held == 0)
        spot_bundles = self._spot_lots(market, spot_idx) if spot_idx.size else []
        bundles = posted_bundles + spot_bundles
        if not bundles:
            raise MechanismError("hybrid reclear: window has no flows")

        prices = np.empty(market.n_flows, dtype=float)
        for members, rate in zip(posted_bundles, posted_rates):
            prices[members] = rate
        for members in spot_bundles:
            prices[members] = market.demand_model.uniform_price(
                market.valuations[members], market.costs[members]
            )
        assignment = np.where(held > 0, ASSIGN_POSTED, ASSIGN_SPOT).astype(np.int8)
        return score_partition(
            market,
            bundles,
            prices,
            mechanism=self.name,
            posted_tiers=len(posted_bundles),
            provider_asn=provider_asn,
            assignment=assignment,
        )

    def describe(self) -> str:
        return (
            f"{self.name}({self.strategy.name}, B={self.n_tiers}, "
            f"W={self.spot_windows}, split={self.elasticity_split:g})"
        )
