"""The paper's Figure 1 worked example: blended versus tiered pricing.

Two destinations with identical constant-elasticity shape (``alpha = 2``)
but different valuations and costs.  Charging one blended rate forces the
profit-maximizing price to ``P0 = $1.2/Mbps``; pricing the two flows
separately moves prices to ``$2`` and ``$1``, raising ISP profit from
$2.08 to $2.25 **and** consumer surplus from $4.17 to $4.50 — both sides
of the market gain (the blended market failure of §2.2.1).

Note on the published text: the PDF prints "P1 = $2.7"; with the figure's
own parameters (``alpha = 2``, ``c1 = $1``) Eq. 4 gives ``p* = 2 c = $2``,
and only ``P1 = $2`` reproduces the figure's profit and surplus dollar
values exactly, so we treat the "$2.7" as an OCR/typesetting artifact.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.ced import CEDDemand

#: The figure's parameters.
ALPHA = 2.0
VALUATIONS = (1.0, 2.0)
COSTS = (1.0, 0.5)


@dataclasses.dataclass(frozen=True)
class MarketSnapshot:
    """Prices and welfare at one pricing structure."""

    prices: tuple
    quantities: tuple
    profit: float
    consumer_surplus: float

    @property
    def welfare(self) -> float:
        return self.profit + self.consumer_surplus


@dataclasses.dataclass(frozen=True)
class WorkedExample:
    """The full Figure 1 comparison."""

    blended: MarketSnapshot
    tiered: MarketSnapshot

    @property
    def profit_gain(self) -> float:
        return self.tiered.profit - self.blended.profit

    @property
    def surplus_gain(self) -> float:
        return self.tiered.consumer_surplus - self.blended.consumer_surplus

    @property
    def welfare_gain(self) -> float:
        return self.tiered.welfare - self.blended.welfare


def figure1_example(
    alpha: float = ALPHA,
    valuations: tuple = VALUATIONS,
    costs: tuple = COSTS,
) -> WorkedExample:
    """Compute the Figure 1 numbers (or the same comparison for any inputs).

    Returns the blended-rate market (single profit-maximizing price for
    both flows) and the tiered market (each flow at its Eq. 4 optimum).
    """
    model = CEDDemand(alpha)
    v = np.asarray(valuations, dtype=float)
    c = np.asarray(costs, dtype=float)

    blended_price = model.uniform_price(v, c)
    blended_prices = np.full(v.size, blended_price)
    tiered_prices = model.optimal_prices(v, c)

    def snapshot(prices: np.ndarray) -> MarketSnapshot:
        return MarketSnapshot(
            prices=tuple(float(p) for p in prices),
            quantities=tuple(float(q) for q in model.quantities(v, prices)),
            profit=model.profit(v, c, prices),
            consumer_surplus=model.consumer_surplus(v, prices),
        )

    return WorkedExample(
        blended=snapshot(blended_prices),
        tiered=snapshot(tiered_prices),
    )
