"""Peering economics: worked example, bypass model, product taxonomy."""

from repro.peering.bypass import (
    BypassScenario,
    BypassSweepPoint,
    failure_window,
    sweep_direct_costs,
)
from repro.peering.offerings import (
    BlendedRateOffering,
    OfferingResult,
    PaidPeeringOffering,
    RegionalPricingOffering,
    backplane_bundles,
    compare_offerings,
    render_offerings,
)
from repro.peering.worked_example import (
    ALPHA,
    COSTS,
    MarketSnapshot,
    VALUATIONS,
    WorkedExample,
    figure1_example,
)

__all__ = [
    "ALPHA",
    "BlendedRateOffering",
    "BypassScenario",
    "BypassSweepPoint",
    "COSTS",
    "MarketSnapshot",
    "OfferingResult",
    "PaidPeeringOffering",
    "RegionalPricingOffering",
    "VALUATIONS",
    "WorkedExample",
    "backplane_bundles",
    "compare_offerings",
    "failure_window",
    "figure1_example",
    "render_offerings",
    "sweep_direct_costs",
]
