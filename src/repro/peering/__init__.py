"""Peering economics: worked example, bypass model, product taxonomy."""

from repro.peering.bypass import (
    OUTCOME_LABELS,
    BypassScenario,
    BypassSweepPoint,
    BypassTable,
    bypass_for_flows,
    failure_window,
    sweep_direct_costs,
)
from repro.peering.offerings import (
    BlendedRateOffering,
    OfferingResult,
    PaidPeeringOffering,
    RegionalPricingOffering,
    backplane_bundles,
    compare_offerings,
    offerings_for_flows,
    render_offerings,
)
from repro.peering.worked_example import (
    ALPHA,
    COSTS,
    MarketSnapshot,
    VALUATIONS,
    WorkedExample,
    figure1_example,
)

__all__ = [
    "ALPHA",
    "BlendedRateOffering",
    "BypassScenario",
    "BypassSweepPoint",
    "BypassTable",
    "COSTS",
    "MarketSnapshot",
    "OUTCOME_LABELS",
    "OfferingResult",
    "PaidPeeringOffering",
    "RegionalPricingOffering",
    "VALUATIONS",
    "WorkedExample",
    "backplane_bundles",
    "bypass_for_flows",
    "compare_offerings",
    "failure_window",
    "figure1_example",
    "offerings_for_flows",
    "render_offerings",
    "sweep_direct_costs",
]
