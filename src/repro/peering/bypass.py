"""Direct-peering bypass economics (paper §2.2.2, Figure 2).

A customer (say a CDN with a backbone presence at the ISP's NYC PoP) pays
the blended rate ``R`` for *all* traffic, including cheap short-haul flows
to a nearby exchange.  If the customer can procure a private link to that
exchange at amortized unit cost ``c_direct < R``, it will bypass the ISP.

Bypass is *efficient* when the customer genuinely delivers the traffic
more cheaply; it is a **market failure** when the customer pays more than
the ISP would have needed to charge in a tiered market:

    ``c_direct > (M + 1) * c_isp + A``

where ``c_isp`` is the ISP's unit cost for that traffic, ``M`` its profit
margin, and ``A`` the per-unit accounting overhead of tiered pricing.  In
that regime the blended rate pushed a customer onto a strictly more
expensive path — capacity was deployed at a higher cost than the tiered
price would have been.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.errors import ModelParameterError


@dataclasses.dataclass(frozen=True)
class BypassScenario:
    """One customer-vs-ISP interconnection decision.

    Attributes:
        blended_rate: The ISP's blended price ``R`` ($/Mbps/month).
        isp_unit_cost: The ISP's true unit cost ``c_isp`` for the flows
            the customer would offload.
        direct_unit_cost: The customer's amortized unit cost ``c_direct``
            of the private link (capex amortization + opex, per Mbps).
        margin: The ISP's profit margin ``M`` (0.25 = 25 %).
        accounting_overhead: Per-unit cost ``A`` of operating a tiered
            contract (extra sessions, metering, billing).
    """

    blended_rate: float
    isp_unit_cost: float
    direct_unit_cost: float
    margin: float = 0.25
    accounting_overhead: float = 0.0

    def __post_init__(self) -> None:
        for name in ("blended_rate", "isp_unit_cost", "direct_unit_cost"):
            if getattr(self, name) <= 0:
                raise ModelParameterError(f"{name} must be positive")
        if self.margin < 0:
            raise ModelParameterError(f"margin must be >= 0, got {self.margin}")
        if self.accounting_overhead < 0:
            raise ModelParameterError("accounting_overhead must be >= 0")

    @property
    def tiered_price(self) -> float:
        """What the ISP could profitably charge in a tiered market:
        ``(M + 1) * c_isp + A``."""
        return (self.margin + 1.0) * self.isp_unit_cost + self.accounting_overhead

    @property
    def customer_bypasses(self) -> bool:
        """The customer provisions its own link iff ``c_direct < R``."""
        return self.direct_unit_cost < self.blended_rate

    @property
    def is_market_failure(self) -> bool:
        """Bypass happens *and* wastes resources: the customer's link costs
        more than the tiered price the ISP could have offered."""
        return self.customer_bypasses and self.direct_unit_cost > self.tiered_price

    @property
    def efficiency_loss_per_mbps(self) -> float:
        """Extra cost per Mbps society pays when the failure occurs."""
        if not self.is_market_failure:
            return 0.0
        return self.direct_unit_cost - self.tiered_price

    def outcome(self) -> str:
        """One of ``"stays"``, ``"efficient-bypass"``, ``"market-failure"``."""
        if not self.customer_bypasses:
            return "stays"
        return "market-failure" if self.is_market_failure else "efficient-bypass"


@dataclasses.dataclass(frozen=True)
class BypassSweepPoint:
    """One point of a ``c_direct`` sweep (for the Figure 2 bench)."""

    direct_unit_cost: float
    outcome: str
    efficiency_loss_per_mbps: float


def sweep_direct_costs(
    blended_rate: float,
    isp_unit_cost: float,
    direct_unit_costs: Sequence[float],
    margin: float = 0.25,
    accounting_overhead: float = 0.0,
) -> "list[BypassSweepPoint]":
    """Evaluate the bypass decision across a range of private-link costs.

    The sweep exposes the three regimes of §2.2.2: below the tiered price
    the bypass is efficient, between the tiered price and the blended rate
    it is a market failure, and above the blended rate the customer stays.
    """
    points = []
    for c_direct in direct_unit_costs:
        scenario = BypassScenario(
            blended_rate=blended_rate,
            isp_unit_cost=isp_unit_cost,
            direct_unit_cost=float(c_direct),
            margin=margin,
            accounting_overhead=accounting_overhead,
        )
        points.append(
            BypassSweepPoint(
                direct_unit_cost=float(c_direct),
                outcome=scenario.outcome(),
                efficiency_loss_per_mbps=scenario.efficiency_loss_per_mbps,
            )
        )
    return points


def failure_window(
    blended_rate: float,
    isp_unit_cost: float,
    margin: float = 0.25,
    accounting_overhead: float = 0.0,
) -> "tuple[float, float]":
    """The ``c_direct`` interval in which blended pricing causes waste.

    Returns ``(lo, hi)`` with ``lo = (M+1) c_isp + A`` and
    ``hi = R``; the window is empty (``lo >= hi``) when the blended rate
    is already close to cost — i.e. tiering would not retain the traffic.
    """
    scenario = BypassScenario(
        blended_rate=blended_rate,
        isp_unit_cost=isp_unit_cost,
        direct_unit_cost=blended_rate,  # placeholder, unused
        margin=margin,
        accounting_overhead=accounting_overhead,
    )
    return scenario.tiered_price, blended_rate
