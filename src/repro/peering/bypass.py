"""Direct-peering bypass economics (paper §2.2.2, Figure 2).

A customer (say a CDN with a backbone presence at the ISP's NYC PoP) pays
the blended rate ``R`` for *all* traffic, including cheap short-haul flows
to a nearby exchange.  If the customer can procure a private link to that
exchange at amortized unit cost ``c_direct < R``, it will bypass the ISP.

Bypass is *efficient* when the customer genuinely delivers the traffic
more cheaply; it is a **market failure** when the customer pays more than
the ISP would have needed to charge in a tiered market:

    ``c_direct > (M + 1) * c_isp + A``

where ``c_isp`` is the ISP's unit cost for that traffic, ``M`` its profit
margin, and ``A`` the per-unit accounting overhead of tiered pricing.  In
that regime the blended rate pushed a customer onto a strictly more
expensive path — capacity was deployed at a higher cost than the tiered
price would have been.

Two evaluation surfaces:

* :class:`BypassScenario` — one scalar customer-vs-ISP decision (the
  worked-example form, also the rate floor in
  :class:`repro.mechanisms.PaidPeering`).
* :class:`BypassTable` — the columnar form: every candidate evaluated at
  once over NumPy columns, built either from an explicit ``c_direct``
  sweep (:meth:`BypassTable.evaluate`) or straight from a calibrated
  market's per-flow cost columns (:meth:`BypassTable.from_market`,
  :func:`bypass_for_flows`), no per-object Python loop.

.. deprecated::
    :func:`sweep_direct_costs` (one ``BypassScenario`` object per sweep
    point) is a shim over :meth:`BypassTable.evaluate` and will be
    removed; call the columnar API directly.
"""

from __future__ import annotations

import dataclasses
import warnings
from collections.abc import Sequence

import numpy as np

from repro.errors import ModelParameterError


@dataclasses.dataclass(frozen=True)
class BypassScenario:
    """One customer-vs-ISP interconnection decision.

    Attributes:
        blended_rate: The ISP's blended price ``R`` ($/Mbps/month).
        isp_unit_cost: The ISP's true unit cost ``c_isp`` for the flows
            the customer would offload.
        direct_unit_cost: The customer's amortized unit cost ``c_direct``
            of the private link (capex amortization + opex, per Mbps).
        margin: The ISP's profit margin ``M`` (0.25 = 25 %).
        accounting_overhead: Per-unit cost ``A`` of operating a tiered
            contract (extra sessions, metering, billing).
    """

    blended_rate: float
    isp_unit_cost: float
    direct_unit_cost: float
    margin: float = 0.25
    accounting_overhead: float = 0.0

    def __post_init__(self) -> None:
        for name in ("blended_rate", "isp_unit_cost", "direct_unit_cost"):
            if getattr(self, name) <= 0:
                raise ModelParameterError(f"{name} must be positive")
        if self.margin < 0:
            raise ModelParameterError(f"margin must be >= 0, got {self.margin}")
        if self.accounting_overhead < 0:
            raise ModelParameterError("accounting_overhead must be >= 0")

    @property
    def tiered_price(self) -> float:
        """What the ISP could profitably charge in a tiered market:
        ``(M + 1) * c_isp + A``."""
        return (self.margin + 1.0) * self.isp_unit_cost + self.accounting_overhead

    @property
    def customer_bypasses(self) -> bool:
        """The customer provisions its own link iff ``c_direct < R``."""
        return self.direct_unit_cost < self.blended_rate

    @property
    def is_market_failure(self) -> bool:
        """Bypass happens *and* wastes resources: the customer's link costs
        more than the tiered price the ISP could have offered."""
        return self.customer_bypasses and self.direct_unit_cost > self.tiered_price

    @property
    def efficiency_loss_per_mbps(self) -> float:
        """Extra cost per Mbps society pays when the failure occurs."""
        if not self.is_market_failure:
            return 0.0
        return self.direct_unit_cost - self.tiered_price

    def outcome(self) -> str:
        """One of ``"stays"``, ``"efficient-bypass"``, ``"market-failure"``."""
        if not self.customer_bypasses:
            return "stays"
        return "market-failure" if self.is_market_failure else "efficient-bypass"


@dataclasses.dataclass(frozen=True)
class BypassSweepPoint:
    """One point of a ``c_direct`` sweep (for the Figure 2 bench)."""

    direct_unit_cost: float
    outcome: str
    efficiency_loss_per_mbps: float


#: Outcome labels in :attr:`BypassTable.outcomes` code order.
OUTCOME_LABELS = ("stays", "efficient-bypass", "market-failure")
OUTCOME_STAYS, OUTCOME_EFFICIENT, OUTCOME_FAILURE = 0, 1, 2


@dataclasses.dataclass(frozen=True)
class BypassTable:
    """Columnar bypass decisions: every candidate evaluated at once.

    Struct-of-arrays counterpart of a list of :class:`BypassScenario`
    objects — same §2.2.2 economics, but one vectorized pass over NumPy
    columns instead of a per-object Python loop, so it prices a
    million-flow matrix as readily as a 25-point figure sweep.

    Attributes:
        direct_unit_costs: Candidate ``c_direct`` column ($/Mbps).
        tiered_prices: Per-candidate ``(M+1) c_isp + A`` column.
        outcomes: Int8 codes into :data:`OUTCOME_LABELS`.
        efficiency_loss_per_mbps: Zero except where the code is
            :data:`OUTCOME_FAILURE`, there ``c_direct - tiered_price``.
    """

    direct_unit_costs: np.ndarray
    tiered_prices: np.ndarray
    outcomes: np.ndarray
    efficiency_loss_per_mbps: np.ndarray

    def __len__(self) -> int:
        return int(self.direct_unit_costs.size)

    @classmethod
    def evaluate(
        cls,
        blended_rate: float,
        isp_unit_costs,
        direct_unit_costs,
        margin: float = 0.25,
        accounting_overhead: float = 0.0,
    ) -> "BypassTable":
        """Vectorized bypass decision over cost columns.

        ``isp_unit_costs`` and ``direct_unit_costs`` broadcast against
        each other, so this covers both the figure sweep (scalar ISP
        cost, swept ``c_direct``) and the per-flow case (both columns).
        """
        if blended_rate <= 0:
            raise ModelParameterError("blended_rate must be positive")
        if margin < 0:
            raise ModelParameterError(f"margin must be >= 0, got {margin}")
        if accounting_overhead < 0:
            raise ModelParameterError("accounting_overhead must be >= 0")
        isp = np.atleast_1d(np.asarray(isp_unit_costs, dtype=np.float64))
        direct = np.atleast_1d(np.asarray(direct_unit_costs, dtype=np.float64))
        if isp.size == 0 or direct.size == 0:
            raise ModelParameterError("cost columns must be non-empty")
        if np.any(isp <= 0):
            raise ModelParameterError("isp_unit_cost must be positive")
        if np.any(direct <= 0):
            raise ModelParameterError("direct_unit_cost must be positive")
        isp, direct = np.broadcast_arrays(isp, direct)
        tiered = (margin + 1.0) * isp + accounting_overhead
        bypasses = direct < blended_rate
        failure = bypasses & (direct > tiered)
        outcomes = np.where(
            failure,
            np.int8(OUTCOME_FAILURE),
            np.where(bypasses, np.int8(OUTCOME_EFFICIENT), np.int8(OUTCOME_STAYS)),
        ).astype(np.int8)
        loss = np.where(failure, direct - tiered, 0.0)
        return cls(
            direct_unit_costs=np.ascontiguousarray(direct),
            tiered_prices=np.ascontiguousarray(tiered),
            outcomes=outcomes,
            efficiency_loss_per_mbps=loss,
        )

    @classmethod
    def from_market(
        cls,
        market,
        direct_cost_factor: float = 1.5,
        margin: float = 0.25,
        accounting_overhead: float = 0.0,
    ) -> "BypassTable":
        """Per-flow bypass decisions on a calibrated market's columns.

        Each flow's ISP unit cost is the market's calibrated ``gamma *
        relative_cost`` column; the customer's private-link cost is
        modeled as ``direct_cost_factor`` times that (building a single
        link is more expensive than riding the ISP's amortized backbone).
        """
        if direct_cost_factor <= 0:
            raise ModelParameterError("direct_cost_factor must be positive")
        return cls.evaluate(
            blended_rate=market.blended_rate,
            isp_unit_costs=market.costs,
            direct_unit_costs=direct_cost_factor * market.costs,
            margin=margin,
            accounting_overhead=accounting_overhead,
        )

    def counts(self) -> "dict[str, int]":
        """Outcome label -> candidate count (all labels always present)."""
        tallies = np.bincount(self.outcomes, minlength=len(OUTCOME_LABELS))
        return {
            label: int(tallies[code])
            for code, label in enumerate(OUTCOME_LABELS)
        }

    def total_loss(self, demands_mbps=None) -> float:
        """Aggregate efficiency loss, optionally demand-weighted ($/mo)."""
        if demands_mbps is None:
            return float(np.sum(self.efficiency_loss_per_mbps))
        return float(
            np.dot(self.efficiency_loss_per_mbps, np.asarray(demands_mbps))
        )

    def points(self) -> "list[BypassSweepPoint]":
        """Per-object compat view (what :func:`sweep_direct_costs` returned)."""
        return [
            BypassSweepPoint(
                direct_unit_cost=float(self.direct_unit_costs[i]),
                outcome=OUTCOME_LABELS[self.outcomes[i]],
                efficiency_loss_per_mbps=float(self.efficiency_loss_per_mbps[i]),
            )
            for i in range(len(self))
        ]


def bypass_for_flows(
    flows,
    demand_model,
    cost_model,
    blended_rate: float = 20.0,
    direct_cost_factor: float = 1.5,
    margin: float = 0.25,
    accounting_overhead: float = 0.0,
) -> BypassTable:
    """Per-flow bypass decisions straight from columnar flows.

    Calibrates a :class:`~repro.core.market.Market` (for the ``gamma``
    that turns relative costs into $/Mbps) and evaluates every flow's
    bypass decision in one vectorized pass — the FlowTable-direct entry
    point the figure drivers and the paid-peering mechanism share.
    """
    from repro.core.market import Market

    market = Market(flows, demand_model, cost_model, blended_rate)
    return BypassTable.from_market(
        market,
        direct_cost_factor=direct_cost_factor,
        margin=margin,
        accounting_overhead=accounting_overhead,
    )


def sweep_direct_costs(
    blended_rate: float,
    isp_unit_cost: float,
    direct_unit_costs: Sequence[float],
    margin: float = 0.25,
    accounting_overhead: float = 0.0,
) -> "list[BypassSweepPoint]":
    """Evaluate the bypass decision across a range of private-link costs.

    The sweep exposes the three regimes of §2.2.2: below the tiered price
    the bypass is efficient, between the tiered price and the blended rate
    it is a market failure, and above the blended rate the customer stays.

    .. deprecated::
        One ``BypassScenario`` object per point; use
        :meth:`BypassTable.evaluate` (same numbers, columnar).
    """
    warnings.warn(
        "repro.peering.sweep_direct_costs is deprecated; use "
        "BypassTable.evaluate(...) (columnar, byte-identical)",
        DeprecationWarning,
        stacklevel=2,
    )
    return BypassTable.evaluate(
        blended_rate=blended_rate,
        isp_unit_costs=isp_unit_cost,
        direct_unit_costs=np.asarray(direct_unit_costs, dtype=np.float64),
        margin=margin,
        accounting_overhead=accounting_overhead,
    ).points()


def failure_window(
    blended_rate: float,
    isp_unit_cost: float,
    margin: float = 0.25,
    accounting_overhead: float = 0.0,
) -> "tuple[float, float]":
    """The ``c_direct`` interval in which blended pricing causes waste.

    Returns ``(lo, hi)`` with ``lo = (M+1) c_isp + A`` and
    ``hi = R``; the window is empty (``lo >= hi``) when the blended rate
    is already close to cost — i.e. tiering would not retain the traffic.
    """
    scenario = BypassScenario(
        blended_rate=blended_rate,
        isp_unit_cost=isp_unit_cost,
        direct_unit_cost=blended_rate,  # placeholder, unused
        margin=margin,
        accounting_overhead=accounting_overhead,
    )
    return scenario.tiered_price, blended_rate
