"""The §2.1 product taxonomy as executable pricing structures.

The paper's background section catalogs what transit ISPs actually sell.
Each offering is, in this library's terms, a *constraint on the bundling*
of a calibrated market — so the whole taxonomy can be priced and compared
on one traffic matrix:

* **conventional transit** — one blended rate: a single bundle;
* **paid peering** — on-net routes discounted vs off-net: two bundles by
  destination type (requires the destination-type cost model's classes);
* **backplane peering** — traffic the ISP can hand to settlement-free
  peers at the exchange vs traffic carried across its backbone: two
  bundles split by a distance threshold (exchange-local vs long-haul);
* **regional pricing** — one bundle per metro/national/international
  region (requires region labels);
* **fine-grained tiers** — the paper's proposal: profit-weighted bundles.

:func:`compare_offerings` prices every applicable offering on a market
and reports profit and capture, reproducing §2.2's argument that the
ad-hoc offerings are stepping stones toward (but short of) demand+cost
aware tiers.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.core.bundling import (
    BundlingStrategy,
    Bundles,
    BundlingInputs,
    ProfitWeightedBundling,
)
from repro.core.market import Market
from repro.errors import BundlingError


def _bundles_by_class(
    codes: np.ndarray, table: "tuple[str, ...]"
) -> "tuple[list, list]":
    """One index bundle per present class code, ordered by label.

    A grouped reduction over the columnar class codes — one ``unique``
    plus one boolean mask per present class, no per-flow Python.
    """
    present = np.unique(codes)
    present = present[present >= 0]
    ordered = sorted((int(c) for c in present), key=lambda c: table[c])
    return [np.flatnonzero(codes == c) for c in ordered], [table[c] for c in ordered]


class BlendedRateOffering(BundlingStrategy):
    """Conventional transit: every destination at one rate."""

    name = "conventional-transit"

    def _bundle(self, inputs: BundlingInputs, n_bundles: int) -> Bundles:
        del n_bundles
        return [np.arange(inputs.n_flows)]


class PaidPeeringOffering(BundlingStrategy):
    """On-net routes at a discount, off-net transit at the full rate.

    Splits by the flow-set's cost-class labels (``on-net``/``off-net``,
    produced by the destination-type cost model).
    """

    name = "paid-peering"

    def _bundle(self, inputs: BundlingInputs, n_bundles: int) -> Bundles:
        del n_bundles
        if inputs.class_codes is None:
            raise BundlingError(
                "paid peering needs on-net/off-net class labels; use the "
                "destination-type cost model"
            )
        bundles, labels = _bundles_by_class(inputs.class_codes, inputs.class_table)
        if len(labels) < 2:
            raise BundlingError(
                f"paid peering needs two destination classes, got {labels}"
            )
        return bundles


def backplane_bundles(
    market: Market, exchange_radius_miles: float = 25.0
) -> Bundles:
    """Backplane peering: two bundles split at the exchange radius.

    Destinations within ``exchange_radius_miles`` can be offloaded to the
    ISP's settlement-free peers at the exchange (discount bundle);
    everything else rides its backbone at the full rate.  Works on the
    market's stored flow distances, so it applies to any cost model.
    """
    if exchange_radius_miles <= 0:
        raise BundlingError("exchange radius must be positive")
    distances = market.flows.distances
    local = np.flatnonzero(distances <= exchange_radius_miles)
    remote = np.flatnonzero(distances > exchange_radius_miles)
    bundles = [b for b in (local, remote) if b.size]
    if len(bundles) < 2:
        raise BundlingError(
            f"no traffic on one side of the {exchange_radius_miles}-mile "
            "exchange radius; backplane peering degenerates to a blended rate"
        )
    return bundles


class RegionalPricingOffering(BundlingStrategy):
    """One bundle per destination region (metro/national/international)."""

    name = "regional-pricing"

    def _bundle(self, inputs: BundlingInputs, n_bundles: int) -> Bundles:
        del n_bundles
        if inputs.class_codes is None:
            raise BundlingError(
                "regional pricing needs region classes; use the regional "
                "cost model (or flows with region labels)"
            )
        bundles, _ = _bundles_by_class(inputs.class_codes, inputs.class_table)
        return bundles


@dataclasses.dataclass(frozen=True)
class OfferingResult:
    """Profit and capture of one §2.1 product structure."""

    offering: str
    n_tiers: int
    profit: float
    profit_capture: float
    tier_prices: tuple


def compare_offerings(
    market: Market,
    exchange_radius_miles: Optional[float] = 25.0,
    proposal_tiers: int = 3,
) -> "list[OfferingResult]":
    """Price every applicable §2.1 offering on one calibrated market.

    Offerings that need labels the market lacks are skipped.  The paper's
    proposal (profit-weighted tiers at ``proposal_tiers``) is always
    included last for comparison.
    """
    results = []

    def evaluate(name: str, bundles: Bundles) -> None:
        prices = market.demand_model.bundle_prices(
            market.valuations, market.costs, list(bundles)
        )
        profit = market.profit_at(prices)
        tier_prices = tuple(
            sorted({round(float(prices[b[0]]), 6) for b in bundles})
        )
        results.append(
            OfferingResult(
                offering=name,
                n_tiers=len(bundles),
                profit=profit,
                profit_capture=market.profit_capture(profit),
                tier_prices=tier_prices,
            )
        )

    evaluate("conventional-transit", [np.arange(market.n_flows)])

    if market.class_codes is not None:
        by_class, labels = _bundles_by_class(market.class_codes, market.class_table)
        if set(labels) == {"on-net", "off-net"}:
            evaluate("paid-peering", by_class)
        elif len(labels) >= 2:
            evaluate("regional-pricing", by_class)

    if exchange_radius_miles is not None:
        try:
            evaluate(
                "backplane-peering",
                backplane_bundles(market, exchange_radius_miles),
            )
        except BundlingError:
            pass  # degenerate split: offering not applicable to this matrix

    proposal = ProfitWeightedBundling()
    evaluate(
        f"profit-weighted-{proposal_tiers}-tiers",
        proposal.bundle(market.bundling_inputs(), proposal_tiers),
    )
    return results


def offerings_for_flows(
    flows,
    demand_model,
    cost_model,
    blended_rate: float = 20.0,
    exchange_radius_miles: Optional[float] = 25.0,
    proposal_tiers: int = 3,
) -> "list[OfferingResult]":
    """Price the §2.1 taxonomy straight from columnar flows.

    The FlowTable-direct entry point: calibrates one
    :class:`~repro.core.market.Market` on the columns and hands it to
    :func:`compare_offerings` — no per-object flow round-trip.
    """
    return compare_offerings(
        Market(flows, demand_model, cost_model, blended_rate),
        exchange_radius_miles=exchange_radius_miles,
        proposal_tiers=proposal_tiers,
    )


def render_offerings(results: "list[OfferingResult]") -> str:
    """Aligned comparison table of the offering taxonomy."""
    header = f"{'offering':<28}{'tiers':>6}{'profit $':>16}{'capture':>9}"
    lines = [header, "-" * len(header)]
    for result in results:
        lines.append(
            f"{result.offering:<28}{result.n_tiers:>6}"
            f"{result.profit:>16,.0f}{result.profit_capture:>9.3f}"
        )
    return "\n".join(lines)
