"""The public configuration surface: typed configs, one precedence chain.

Before this module, each subsystem grew its own configuration dialect —
``--jobs``/``REPRO_JOBS`` for the experiment runtime, a kwarg soup for
the stream pipeline, ``--workers/--queue-depth/--timeout-ms`` for the
quote server.  Everything now resolves through frozen dataclasses:

* :class:`RuntimeConfig` — experiment fan-out and caching
  (``jobs``/``cache``/``cache_dir``/``metrics``);
* :class:`ExecutorConfig` — sweep execution backend and wire knobs
  (``backend``/``jobs``/``host``/``port``/``heartbeat_ms``/
  ``lease_timeout_ms``/``max_retries``/``spawn``);
* :class:`StreamConfig` — the streaming repricing knobs (windows, queue,
  drift gate), also re-exported from :mod:`repro.stream`;
* :class:`ServeConfig` — the quote server (``workers``/``queue_depth``/
  ``timeout_ms``/``max_batch``);
* :class:`FleetConfig` — the sharded multi-process quote fleet
  (``shards``/``host``/``port``/``queue_depth``/``max_batch``/
  ``timeout_ms``/``heartbeat_ms``);
* :class:`EcosystemConfig` — generated AS-level worlds
  (``ases``/``ixps``/``seed``);
* :class:`MechanismConfig` — pricing-mechanism selection
  (``mechanism``/``spot_windows``/``elasticity_split``/
  ``exchange_radius_miles``/``bargaining``);
* :class:`ObsConfig` — tracing (``trace`` file path).

Each class offers ``resolve(cli=None, **explicit)`` with one precedence
chain, highest first:

1. **explicit kwargs** passed to ``resolve()``;
2. **CLI flags** read off the argparse namespace passed as ``cli``
   (``None``-valued attributes count as "not given");
3. **``REPRO_*`` environment variables** (see each field's listing);
4. the field's **default**.

Malformed environment values raise
:class:`~repro.errors.ConfigurationError` naming the variable, never a
bare ``ValueError``.  Naming is canonical here: ``RuntimeConfig.jobs``
is the fan-out width and ``ServeConfig.workers`` is the serving thread
count — the CLI accepts the historical cross-spellings
(``repro serve --jobs``, ``repro figure --workers``) as deprecated
aliases only.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Callable, Optional

from repro.errors import ConfigurationError

#: Deprecation-shim message prefix; the pytest gate allowlists warnings
#: that start with this, while every other DeprecationWarning errors.
DEPRECATION_PREFIX = "repro."


def _env_int(name: str, text: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be an integer, got {text!r}"
        ) from None


def _env_float(name: str, text: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be a number, got {text!r}"
        ) from None


def _env_str(name: str, text: str) -> str:
    del name
    return text


def cfg_field(
    default: Any,
    env: "Optional[str]" = None,
    parse: "Callable[[str, str], Any]" = _env_str,
    cli: "Optional[str | Callable]" = None,
    **kwargs: Any,
):
    """A dataclass field carrying its resolution spec in metadata.

    Args:
        default: The lowest-precedence value.
        env: ``REPRO_*`` variable consulted when neither explicit kwarg
            nor CLI flag supplied the field (empty/whitespace = unset).
        parse: ``(env_name, text) -> value`` for the env string.
        cli: Attribute name on the argparse namespace (defaults to the
            field name), or a callable ``namespace -> value | None`` for
            flags that need translation (``None`` = not given).
    """
    return dataclasses.field(
        default=default,
        metadata={"env": env, "parse": parse, "cli": cli},
        **kwargs,
    )


class _Resolvable:
    """Mixin providing the explicit > CLI > env > default chain."""

    @classmethod
    def resolve(cls, cli=None, **explicit):
        """Build a config through the documented precedence chain.

        Args:
            cli: Optional argparse namespace (or any object) whose
                attributes supply flag values; missing or ``None``
                attributes fall through to the environment.
            **explicit: Highest-precedence field values; ``None`` means
                "not given" and falls through.

        Raises:
            ConfigurationError: Unknown explicit kwarg, or a malformed
                environment value.
        """
        field_names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(explicit) - field_names
        if unknown:
            raise ConfigurationError(
                f"unknown {cls.__name__} field(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(field_names)}"
            )
        values = {}
        for f in dataclasses.fields(cls):
            if explicit.get(f.name) is not None:
                values[f.name] = explicit[f.name]
                continue
            spec = f.metadata
            cli_spec = spec.get("cli") if spec else None
            if cli is not None:
                if callable(cli_spec):
                    flag_value = cli_spec(cli)
                else:
                    flag_value = getattr(cli, cli_spec or f.name, None)
                if flag_value is not None:
                    values[f.name] = flag_value
                    continue
            env_name = spec.get("env") if spec else None
            if env_name:
                text = os.environ.get(env_name, "").strip()
                if text:
                    values[f.name] = spec["parse"](env_name, text)
        return cls(**values)


# ----------------------------------------------------------------------
# Runtime (experiment fan-out + caching)
# ----------------------------------------------------------------------


def _parse_jobs(name: str, text: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be an integer worker count "
            f"(0 or negative = all cores), got {text!r}"
        ) from None


def _cli_cache(namespace) -> "Optional[bool]":
    """``--no-cache`` is a store-true flag: only its True state is a signal."""
    return False if getattr(namespace, "no_cache", False) else None


@dataclasses.dataclass(frozen=True)
class RuntimeConfig(_Resolvable):
    """How experiment work runs: fan-out width, caching, metrics output.

    Attributes:
        jobs: Worker processes for experiment fan-out.  ``None`` = serial
            (one worker); ``0`` or negative = one per CPU core.  Env:
            ``REPRO_JOBS``; CLI: ``--jobs``.
        cache: Content-addressed dataset/market/result caching.  Env:
            ``REPRO_NO_CACHE`` (any non-empty value disables); CLI:
            ``--no-cache``.
        cache_dir: On-disk cache mirror location (``None`` = memory
            only).  Env: ``REPRO_CACHE_DIR``.
        metrics: Path for the post-run metrics/span JSON report (``-``
            = stderr, ``None`` = off).  CLI: ``--metrics``.
    """

    jobs: "Optional[int]" = cfg_field(None, env="REPRO_JOBS", parse=_parse_jobs)
    cache: bool = cfg_field(
        True, env="REPRO_NO_CACHE", parse=lambda name, text: False,
        cli=_cli_cache,
    )
    cache_dir: "Optional[str]" = cfg_field(None, env="REPRO_CACHE_DIR")
    metrics: "Optional[str]" = cfg_field(None)

    def worker_count(self) -> int:
        """The concrete pool width (resolves the 0-means-all-cores rule)."""
        if self.jobs is None:
            return 1
        if self.jobs <= 0:
            return os.cpu_count() or 1
        return self.jobs


# ----------------------------------------------------------------------
# Executor (pluggable sweep execution)
# ----------------------------------------------------------------------

#: Executor backends selectable via ``--executor`` / ``REPRO_EXECUTOR``.
EXECUTOR_BACKENDS = ("serial", "pool", "socket")


def _parse_backend(name: str, text: str) -> str:
    if text not in EXECUTOR_BACKENDS:
        raise ConfigurationError(
            f"{name} must be one of {', '.join(EXECUTOR_BACKENDS)}, "
            f"got {text!r}"
        )
    return text


def _cli_backend(namespace) -> "Optional[str]":
    return getattr(namespace, "executor", None)


@dataclasses.dataclass(frozen=True)
class ExecutorConfig(_Resolvable):
    """How experiment sweeps execute: which backend, how wide, what wire.

    This is the single resolution point for sweep fan-out — the old
    ``resolve_jobs`` helper is gone and ``--jobs``/``REPRO_JOBS`` land
    here (same precedence chain, same :class:`ConfigurationError` on
    malformed values).

    Attributes:
        backend: Executor implementation — ``serial`` (inline),
            ``pool`` (process pool, the default) or ``socket``
            (work-stealing coordinator + socket workers).  Env:
            ``REPRO_EXECUTOR``; CLI: ``--executor``.
        jobs: Worker count.  ``None`` = one worker (the pool backend
            then runs inline, exactly like the historical serial path);
            ``0`` or negative = one per CPU core.  Env: ``REPRO_JOBS``;
            CLI: ``--jobs``.
        host: Socket-coordinator listen address.  Env:
            ``REPRO_EXECUTOR_HOST``.
        port: Socket-coordinator listen port; ``0`` = ephemeral (the
            bound port is reported after start).  Env:
            ``REPRO_EXECUTOR_PORT``.
        heartbeat_ms: Worker lease-heartbeat cadence.  Env:
            ``REPRO_EXECUTOR_HEARTBEAT_MS``.
        lease_timeout_ms: A lease with no heartbeat for this long is
            reclaimed and its spec re-queued.  Env:
            ``REPRO_EXECUTOR_LEASE_TIMEOUT_MS``.
        max_retries: Times one spec's lost lease is re-queued before the
            sweep fails with :class:`~repro.errors.WorkerLostError`.
            Env: ``REPRO_EXECUTOR_MAX_RETRIES``.
        spawn: Local worker processes the socket coordinator forks at
            start (``None`` = ``worker_count()``, ``0`` = none — wait
            for remote ``repro workers`` joins).  Env:
            ``REPRO_EXECUTOR_SPAWN``.
    """

    backend: str = cfg_field(
        "pool", env="REPRO_EXECUTOR", parse=_parse_backend, cli=_cli_backend
    )
    jobs: "Optional[int]" = cfg_field(None, env="REPRO_JOBS", parse=_parse_jobs)
    host: str = cfg_field("127.0.0.1", env="REPRO_EXECUTOR_HOST")
    port: int = cfg_field(0, env="REPRO_EXECUTOR_PORT", parse=_env_int)
    heartbeat_ms: float = cfg_field(
        1000.0, env="REPRO_EXECUTOR_HEARTBEAT_MS", parse=_env_float
    )
    lease_timeout_ms: float = cfg_field(
        30_000.0, env="REPRO_EXECUTOR_LEASE_TIMEOUT_MS", parse=_env_float
    )
    max_retries: int = cfg_field(
        2, env="REPRO_EXECUTOR_MAX_RETRIES", parse=_env_int
    )
    spawn: "Optional[int]" = cfg_field(
        None, env="REPRO_EXECUTOR_SPAWN", parse=_env_int
    )

    def __post_init__(self) -> None:
        if self.backend not in EXECUTOR_BACKENDS:
            raise ConfigurationError(
                f"executor backend must be one of "
                f"{', '.join(EXECUTOR_BACKENDS)}, got {self.backend!r}"
            )
        if not self.host:
            raise ConfigurationError("executor host must be non-empty")
        if not 0 <= self.port <= 65535:
            raise ConfigurationError(
                f"port must be in [0, 65535], got {self.port}"
            )
        if self.heartbeat_ms <= 0:
            raise ConfigurationError(
                f"heartbeat_ms must be positive, got {self.heartbeat_ms}"
            )
        if self.lease_timeout_ms <= 0:
            raise ConfigurationError(
                f"lease_timeout_ms must be positive, got "
                f"{self.lease_timeout_ms}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.spawn is not None and self.spawn < 0:
            raise ConfigurationError(
                f"spawn must be >= 0, got {self.spawn}"
            )

    def worker_count(self) -> int:
        """The concrete worker width (resolves the 0-means-all-cores rule)."""
        if self.jobs is None:
            return 1
        if self.jobs <= 0:
            return os.cpu_count() or 1
        return self.jobs

    def spawn_count(self) -> int:
        """Local workers the socket coordinator forks (``None`` = width)."""
        if self.spawn is None:
            return self.worker_count()
        return self.spawn


# ----------------------------------------------------------------------
# Stream (the repricing pipeline)
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class StreamConfig(_Resolvable):
    """Knobs of one streaming run (hashed into checkpoint digests).

    Attributes:
        window_ms: Event-time window length.  Env:
            ``REPRO_STREAM_WINDOW_MS``.
        slide_ms: Window start spacing; ``None`` = tumbling.
        reorder_tolerance_ms: Out-of-order arrival tolerance (delays
            window closes by the same amount).
        queue_capacity / queue_policy: Ingest buffer size and full-queue
            behavior (``block`` or ``drop-oldest``).  Env:
            ``REPRO_STREAM_QUEUE``.
        n_tiers: Tier budget for derived designs.
        drift_threshold: Re-tier when the refreshed design's profit
            capture beats the stale design's by more than this.  Env:
            ``REPRO_STREAM_DRIFT``.
        blended_rate: The blended reference price ``P0`` ($/Mbps/month).
        min_demand_mbps: Per-window demand floor (sampling dust filter).
        checkpoint_every: Windows between checkpoint writes.
        provider_asn: ASN stamped into derived designs.
    """

    window_ms: int = cfg_field(
        600_000, env="REPRO_STREAM_WINDOW_MS", parse=_env_int
    )
    slide_ms: "Optional[int]" = cfg_field(None)
    reorder_tolerance_ms: int = cfg_field(0)
    queue_capacity: int = cfg_field(
        4096, env="REPRO_STREAM_QUEUE", parse=_env_int
    )
    queue_policy: str = cfg_field("block")
    n_tiers: int = cfg_field(3)
    drift_threshold: float = cfg_field(
        0.1, env="REPRO_STREAM_DRIFT", parse=_env_float
    )
    blended_rate: float = cfg_field(20.0)
    min_demand_mbps: float = cfg_field(0.0)
    checkpoint_every: int = cfg_field(1)
    provider_asn: int = cfg_field(64500)

    def digest(self, demand_model, cost_model) -> str:
        """Configuration fingerprint guarding checkpoint compatibility.

        The record *source* is not (and cannot be) hashed — resuming a
        checkpoint against a different stream is the operator's contract.
        """
        from repro.runtime.cache import config_hash

        payload = dataclasses.asdict(self)
        payload["demand_model"] = repr(demand_model)
        payload["cost_model"] = repr(cost_model)
        return config_hash(payload)


# ----------------------------------------------------------------------
# Serve (the quote server)
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ServeConfig(_Resolvable):
    """The quote server's operational envelope.

    Attributes:
        workers: Worker threads pricing batches (canonical name; the
            historical ``repro serve --jobs`` spelling is a deprecated
            alias).  Env: ``REPRO_SERVE_WORKERS``.
        queue_depth: Admission-queue capacity; full queues shed the
            oldest request.  Env: ``REPRO_SERVE_QUEUE_DEPTH``.
        timeout_ms: Default per-request deadline.  Env:
            ``REPRO_SERVE_TIMEOUT_MS``.
        max_batch: Largest request batch one worker prices at once.
            Env: ``REPRO_SERVE_MAX_BATCH``.
    """

    workers: int = cfg_field(2, env="REPRO_SERVE_WORKERS", parse=_env_int)
    queue_depth: int = cfg_field(
        256, env="REPRO_SERVE_QUEUE_DEPTH", parse=_env_int
    )
    timeout_ms: float = cfg_field(
        1000.0, env="REPRO_SERVE_TIMEOUT_MS", parse=_env_float
    )
    max_batch: int = cfg_field(64, env="REPRO_SERVE_MAX_BATCH", parse=_env_int)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.timeout_ms <= 0:
            raise ConfigurationError(
                f"timeout_ms must be positive, got {self.timeout_ms}"
            )
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )


# ----------------------------------------------------------------------
# Fleet (sharded multi-process quote serving)
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class FleetConfig(_Resolvable):
    """The sharded quote fleet's operational envelope.

    Attributes:
        shards: Worker processes pricing quote batches; ``0`` or negative
            = one per CPU core.  Env: ``REPRO_FLEET_SHARDS``; CLI:
            ``--shards``.
        host: Front-door listen address.  Env: ``REPRO_FLEET_HOST``.
        port: Front-door listen port; ``0`` = ephemeral (the bound port
            is reported after start).  Env: ``REPRO_FLEET_PORT``; CLI:
            ``--port``.
        queue_depth: Per-shard admission-queue capacity; full queues
            shed the oldest pending request.  Env:
            ``REPRO_FLEET_QUEUE_DEPTH``.
        max_batch: Largest request batch one shard round-trip carries.
            Env: ``REPRO_FLEET_MAX_BATCH``.
        timeout_ms: Default per-request deadline (also bounds one shard
            round-trip before the shard is declared wedged).  Env:
            ``REPRO_FLEET_TIMEOUT_MS``.
        heartbeat_ms: Watchdog ping cadence; a dead shard is respawned
            within roughly one heartbeat.  Env:
            ``REPRO_FLEET_HEARTBEAT_MS``.
    """

    shards: int = cfg_field(2, env="REPRO_FLEET_SHARDS", parse=_env_int)
    host: str = cfg_field("127.0.0.1", env="REPRO_FLEET_HOST")
    port: int = cfg_field(0, env="REPRO_FLEET_PORT", parse=_env_int)
    queue_depth: int = cfg_field(
        1024, env="REPRO_FLEET_QUEUE_DEPTH", parse=_env_int
    )
    max_batch: int = cfg_field(
        512, env="REPRO_FLEET_MAX_BATCH", parse=_env_int
    )
    timeout_ms: float = cfg_field(
        5000.0, env="REPRO_FLEET_TIMEOUT_MS", parse=_env_float
    )
    heartbeat_ms: float = cfg_field(
        100.0, env="REPRO_FLEET_HEARTBEAT_MS", parse=_env_float
    )

    def __post_init__(self) -> None:
        if not self.host:
            raise ConfigurationError("fleet host must be non-empty")
        if not 0 <= self.port <= 65535:
            raise ConfigurationError(
                f"port must be in [0, 65535], got {self.port}"
            )
        if self.queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.timeout_ms <= 0:
            raise ConfigurationError(
                f"timeout_ms must be positive, got {self.timeout_ms}"
            )
        if self.heartbeat_ms <= 0:
            raise ConfigurationError(
                f"heartbeat_ms must be positive, got {self.heartbeat_ms}"
            )

    def shard_count(self) -> int:
        """The concrete shard width (resolves the 0-means-all-cores rule)."""
        if self.shards <= 0:
            return os.cpu_count() or 1
        return self.shards


# ----------------------------------------------------------------------
# Ecosystem (AS-level world generation)
# ----------------------------------------------------------------------


def _cli_ecosystem_seed(namespace) -> "Optional[int]":
    """The ecosystem CLI stores its seed apart from the dataset seed."""
    return getattr(namespace, "ecosystem_seed", None)


@dataclasses.dataclass(frozen=True)
class EcosystemConfig(_Resolvable):
    """Defaults for generated AS-level worlds (see :mod:`repro.ecosystem`).

    Attributes:
        ases: Total AS count, split into kinds by
            ``EcosystemSpec.from_counts``.  Env: ``REPRO_ECOSYSTEM_ASES``;
            CLI: ``--ases``.
        ixps: Internet-exchange sites.  Env: ``REPRO_ECOSYSTEM_IXPS``;
            CLI: ``--ixps``.
        seed: World seed — same (ases, ixps, seed) ⇒ byte-identical
            world.  Env: ``REPRO_ECOSYSTEM_SEED``; CLI: ``--seed``.
    """

    ases: int = cfg_field(50, env="REPRO_ECOSYSTEM_ASES", parse=_env_int)
    ixps: int = cfg_field(3, env="REPRO_ECOSYSTEM_IXPS", parse=_env_int)
    seed: int = cfg_field(
        0, env="REPRO_ECOSYSTEM_SEED", parse=_env_int, cli=_cli_ecosystem_seed
    )

    def __post_init__(self) -> None:
        if self.ases < 5:
            raise ConfigurationError(
                f"ases must be >= 5 for a tiered world, got {self.ases}"
            )
        if self.ixps < 0:
            raise ConfigurationError(f"ixps must be >= 0, got {self.ixps}")


# ----------------------------------------------------------------------
# Mechanism (pricing-mechanism selection)
# ----------------------------------------------------------------------

#: Registered pricing mechanisms selectable via ``--mechanism`` /
#: ``REPRO_MECHANISM``.  A literal copy of
#: :data:`repro.mechanisms.MECHANISM_NAMES` (the config layer must not
#: import the mechanism implementations); a test asserts they match.
MECHANISMS = ("posted-tiers", "spot-auction", "paid-peering", "hybrid")


def _parse_mechanism(name: str, text: str) -> str:
    if text not in MECHANISMS:
        raise ConfigurationError(
            f"{name} must be one of {', '.join(MECHANISMS)}, got {text!r}"
        )
    return text


@dataclasses.dataclass(frozen=True)
class MechanismConfig(_Resolvable):
    """Which pricing mechanism runs, and its knobs.

    The default (``posted-tiers``) reproduces the paper's pipeline
    byte-for-byte — same designs, same cache digests.  Every other value
    selects one of the :mod:`repro.mechanisms` implementations and tags
    downstream config digests with ``|mechanism=<name>``.

    Attributes:
        mechanism: One of :data:`MECHANISMS`.  Env: ``REPRO_MECHANISM``;
            CLI: ``--mechanism``.
        spot_windows: Auction windows per billing period (spot and the
            hybrid's spot side).  Env: ``REPRO_MECHANISM_SPOT_WINDOWS``.
        elasticity_split: Fraction of flows the hybrid sends to spot.
            Env: ``REPRO_MECHANISM_SPLIT``.
        exchange_radius_miles: Paid-peering exchange catchment; ``None``
            = median flow distance.  Env:
            ``REPRO_MECHANISM_PEERING_RADIUS``.
        bargaining: ISP bargaining weight in the peering negotiation.
            Env: ``REPRO_MECHANISM_BARGAINING``.
    """

    mechanism: str = cfg_field(
        "posted-tiers", env="REPRO_MECHANISM", parse=_parse_mechanism
    )
    spot_windows: int = cfg_field(
        24, env="REPRO_MECHANISM_SPOT_WINDOWS", parse=_env_int
    )
    elasticity_split: float = cfg_field(
        0.5, env="REPRO_MECHANISM_SPLIT", parse=_env_float
    )
    exchange_radius_miles: "Optional[float]" = cfg_field(
        None, env="REPRO_MECHANISM_PEERING_RADIUS", parse=_env_float
    )
    bargaining: float = cfg_field(
        0.5, env="REPRO_MECHANISM_BARGAINING", parse=_env_float
    )

    def __post_init__(self) -> None:
        if self.mechanism not in MECHANISMS:
            raise ConfigurationError(
                f"mechanism must be one of {', '.join(MECHANISMS)}, "
                f"got {self.mechanism!r}"
            )
        if self.spot_windows < 1:
            raise ConfigurationError(
                f"spot_windows must be >= 1, got {self.spot_windows}"
            )
        if not 0.0 <= self.elasticity_split <= 1.0:
            raise ConfigurationError(
                f"elasticity_split must be in [0, 1], "
                f"got {self.elasticity_split}"
            )
        if (
            self.exchange_radius_miles is not None
            and self.exchange_radius_miles <= 0
        ):
            raise ConfigurationError(
                f"exchange_radius_miles must be positive, "
                f"got {self.exchange_radius_miles}"
            )
        if not 0.0 <= self.bargaining <= 1.0:
            raise ConfigurationError(
                f"bargaining must be in [0, 1], got {self.bargaining}"
            )

    @property
    def is_default(self) -> bool:
        """True when the paper's posted-tiers mechanism is selected."""
        return self.mechanism == "posted-tiers"

    def build(self, strategy=None, n_tiers: int = 3):
        """Instantiate the selected :class:`~repro.mechanisms.Mechanism`.

        Imported lazily so the config layer stays import-light.
        """
        from repro.mechanisms import mechanism_by_name

        return mechanism_by_name(
            self.mechanism,
            strategy=strategy,
            n_tiers=n_tiers,
            spot_windows=self.spot_windows,
            elasticity_split=self.elasticity_split,
            exchange_radius_miles=self.exchange_radius_miles,
            bargaining=self.bargaining,
        )


# ----------------------------------------------------------------------
# Obs (tracing)
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ObsConfig(_Resolvable):
    """Tracing configuration.

    Attributes:
        trace: JSONL file spans are appended to (``None`` = tracing off,
            the no-op tracer stays installed).  Env: ``REPRO_TRACE``;
            CLI: ``--trace``.
    """

    trace: "Optional[str]" = cfg_field(None, env="REPRO_TRACE")

    @property
    def enabled(self) -> bool:
        return self.trace is not None


__all__ = [
    "DEPRECATION_PREFIX",
    "EXECUTOR_BACKENDS",
    "MECHANISMS",
    "EcosystemConfig",
    "ExecutorConfig",
    "FleetConfig",
    "MechanismConfig",
    "ObsConfig",
    "RuntimeConfig",
    "ServeConfig",
    "StreamConfig",
    "cfg_field",
]
