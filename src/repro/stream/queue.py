"""Bounded ingest queue with an explicit backpressure policy.

The queue sits between a record source and the windower, bounding how
much raw NetFlow the pipeline buffers between window closes.  Two
policies govern a full queue:

* ``block`` — the producer must wait: :meth:`offer` refuses the record
  (returns ``False``) and the caller drains the queue downstream before
  retrying.  Nothing is ever lost; in the in-process replay harness
  "waiting" degenerates to draining immediately, while a socket-fed
  deployment would stop reading from the exporter (TCP/SCTP backpressure).
* ``drop-oldest`` — bounded memory wins over completeness: the oldest
  buffered record is evicted (and counted) to make room, the way a
  fixed-size kernel socket buffer sheds load.

Every drop and forced drain is counted locally and in the global
:data:`~repro.runtime.metrics.METRICS` registry, so lossy runs are
visible in the run report rather than silent.
"""

from __future__ import annotations

import collections

from repro.errors import ConfigurationError
from repro.netflow.records import NetFlowRecord
from repro.obs import METRICS

#: Accepted backpressure policies.
POLICIES = ("block", "drop-oldest")


class BoundedQueue:
    """A FIFO of records with a hard capacity and a full-queue policy."""

    def __init__(self, capacity: int, policy: str = "block") -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"queue capacity must be >= 1, got {capacity}"
            )
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown backpressure policy {policy!r}; expected one of "
                f"{POLICIES}"
            )
        self.capacity = int(capacity)
        self.policy = policy
        self._queue: "collections.deque[NetFlowRecord]" = collections.deque()
        self.dropped = 0
        self.blocked = 0
        self.high_watermark = 0
        #: Optional hook invoked with each record evicted under
        #: ``drop-oldest`` — the quote server uses it to answer shed
        #: requests with a degraded quote instead of losing them silently.
        self.on_evict = None

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    def offer(self, record: NetFlowRecord) -> bool:
        """Try to enqueue one record.

        Returns ``False`` only under the ``block`` policy with a full
        queue — the caller must drain downstream and retry.  Under
        ``drop-oldest`` the record is always accepted, evicting the
        oldest buffered record when full.
        """
        if self.full:
            if self.policy == "block":
                self.blocked += 1
                METRICS.incr("stream.queue_blocked")
                return False
            victim = self._queue.popleft()
            self.dropped += 1
            METRICS.incr("stream.queue_dropped")
            if self.on_evict is not None:
                self.on_evict(victim)
        self._queue.append(record)
        self.high_watermark = max(self.high_watermark, len(self._queue))
        return True

    def drain(self) -> "list[NetFlowRecord]":
        """Remove and return everything buffered, in arrival order."""
        out = list(self._queue)
        self._queue.clear()
        return out

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    def snapshot(self) -> "list[NetFlowRecord]":
        """The buffered records, in order, without removing them."""
        return list(self._queue)

    def counters(self) -> dict:
        return {
            "dropped": self.dropped,
            "blocked": self.blocked,
            "high_watermark": self.high_watermark,
        }

    def restore(
        self, records: "list[NetFlowRecord]", counters: "dict | None" = None
    ) -> None:
        """Refill the queue from a checkpoint snapshot."""
        if len(records) > self.capacity:
            raise ConfigurationError(
                f"checkpoint holds {len(records)} queued records but the "
                f"queue capacity is {self.capacity}"
            )
        self._queue = collections.deque(records)
        counters = counters or {}
        self.dropped = int(counters.get("dropped", 0))
        self.blocked = int(counters.get("blocked", 0))
        self.high_watermark = max(
            int(counters.get("high_watermark", 0)), len(self._queue)
        )
