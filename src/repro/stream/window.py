"""Event-time windowing over NetFlow export timestamps.

The windower assigns each record to tumbling or sliding windows keyed on
its export timestamp (``last_ms``) and closes a window once the event-time
*watermark* — the maximum timestamp seen minus a configurable reorder
tolerance — passes the window's end.  Records that arrive out of order
within the tolerance still land in the right windows; records arriving
after every window covering them has closed are counted and dropped.

Buffering reuses the measurement substrate directly: records sit in one
shared :class:`~repro.netflow.collector.FlowCollector`, each closed
window selects its records by timestamp, and the collector's time-based
:meth:`~repro.netflow.collector.FlowCollector.drain` evicts whatever no
future window can need — the collector stays bounded over an unbounded
stream.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.core.flow import FlowSet
from repro.errors import ConfigurationError
from repro.netflow.aggregation import aggregate_to_flowset
from repro.netflow.collector import FlowCollector
from repro.netflow.records import NetFlowRecord
from repro.obs import METRICS


@dataclasses.dataclass(frozen=True)
class WindowBounds:
    """A half-open event-time interval ``[start_ms, end_ms)``."""

    start_ms: int
    end_ms: int

    def contains(self, ts_ms: int) -> bool:
        return self.start_ms <= ts_ms < self.end_ms

    @property
    def duration_ms(self) -> int:
        return self.end_ms - self.start_ms


@dataclasses.dataclass(frozen=True)
class ClosedWindow:
    """One closed window and the deduplicable records that fell in it."""

    bounds: WindowBounds
    records: tuple

    @property
    def n_records(self) -> int:
        return len(self.records)

    def collector(self) -> FlowCollector:
        """The window's records in a fresh collector (dedup semantics)."""
        collector = FlowCollector()
        collector.ingest_many(self.records)
        return collector

    def flowset(
        self,
        distance_fn: Callable,
        region_fn: "Callable | None" = None,
        min_demand_mbps: float = 0.0,
    ) -> FlowSet:
        """Collect, dedup, and aggregate this window into a flow set.

        Demands are rates over the *window* duration, so a flow exporting
        steadily contributes the same Mbps to every window it spans.

        Raises:
            DataError: If the window holds no records, or none survive
                the demand threshold.
        """
        return aggregate_to_flowset(
            self.collector(),
            window_seconds=self.bounds.duration_ms / 1000.0,
            distance_fn=distance_fn,
            region_fn=region_fn,
            min_demand_mbps=min_demand_mbps,
        )


class Windower:
    """Assigns records to aligned tumbling/sliding windows and closes them.

    Args:
        window_ms: Window length.  Window starts are aligned to multiples
            of ``slide_ms`` from the trace epoch.
        slide_ms: Distance between consecutive window starts; ``None``
            (or ``slide_ms == window_ms``) gives tumbling windows, a
            smaller value gives overlapping sliding windows.
        reorder_tolerance_ms: How far out of order records may arrive and
            still be windowed correctly.  The watermark lags the maximum
            seen timestamp by this much, so closes are delayed by the
            same amount.
    """

    def __init__(
        self,
        window_ms: int,
        slide_ms: "int | None" = None,
        reorder_tolerance_ms: int = 0,
    ) -> None:
        if window_ms < 1:
            raise ConfigurationError(f"window_ms must be >= 1, got {window_ms}")
        slide_ms = window_ms if slide_ms is None else slide_ms
        if not 1 <= slide_ms <= window_ms:
            raise ConfigurationError(
                f"slide_ms must be in [1, window_ms={window_ms}], got {slide_ms}"
            )
        if reorder_tolerance_ms < 0:
            raise ConfigurationError(
                f"reorder_tolerance_ms must be >= 0, got {reorder_tolerance_ms}"
            )
        self.window_ms = int(window_ms)
        self.slide_ms = int(slide_ms)
        self.reorder_tolerance_ms = int(reorder_tolerance_ms)
        self._collector = FlowCollector()
        #: Start of the next window to close; ``None`` until first record.
        self._next_start: "Optional[int]" = None
        self._max_ts = -1
        self.late_dropped = 0

    # ------------------------------------------------------------------
    # Window arithmetic
    # ------------------------------------------------------------------

    def earliest_cover_start(self, ts_ms: int) -> int:
        """Start of the earliest aligned window covering ``ts_ms``."""
        lower = ts_ms - self.window_ms + 1
        return max(0, -(-lower // self.slide_ms) * self.slide_ms)

    def latest_cover_start(self, ts_ms: int) -> int:
        """Start of the latest aligned window covering ``ts_ms``."""
        return (ts_ms // self.slide_ms) * self.slide_ms

    @property
    def next_close_ms(self) -> "Optional[int]":
        """End of the next window to close (``None`` before any record)."""
        if self._next_start is None:
            return None
        return self._next_start + self.window_ms

    def first_close_for(self, ts_ms: int) -> int:
        """Where the first close would land if ``ts_ms`` opened the stream."""
        return self._opening_start(ts_ms) + self.window_ms

    def _opening_start(self, ts_ms: int) -> int:
        """First window start when ``ts_ms`` is the stream's first record.

        Records up to ``reorder_tolerance_ms`` older than the first one
        may still arrive and must be windowable, so the opening window
        covers the watermark, not the first timestamp itself.
        """
        return self.earliest_cover_start(max(0, ts_ms - self.reorder_tolerance_ms))

    @property
    def pending_count(self) -> int:
        """Distinct flow keys currently buffered across open windows."""
        return len(self._collector)

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------

    def ingest(self, record: NetFlowRecord) -> "list[ClosedWindow]":
        """Buffer one record; return any windows this record's time closes."""
        ts = record.last_ms
        if self._next_start is None:
            self._next_start = self._opening_start(ts)
        if self.latest_cover_start(ts) < self._next_start:
            # Every window covering this timestamp has already closed:
            # the record is late beyond the reorder tolerance.
            self.late_dropped += 1
            METRICS.incr("stream.late_dropped")
            return []
        self._collector.ingest(record)
        if ts > self._max_ts:
            self._max_ts = ts
        return self._close_ready()

    def flush(self) -> "list[ClosedWindow]":
        """End of stream: close every window up to the last timestamp."""
        if self._next_start is None:
            return []
        closed = []
        while self._next_start <= self._max_ts:
            closed.append(self._emit())
        return closed

    def _close_ready(self) -> "list[ClosedWindow]":
        closed = []
        watermark = self._max_ts - self.reorder_tolerance_ms
        while self._next_start + self.window_ms <= watermark:
            closed.append(self._emit())
        return closed

    def _emit(self) -> ClosedWindow:
        start = self._next_start
        assert start is not None
        end = start + self.window_ms
        records = tuple(
            r for r in self._collector.iter_records() if start <= r.last_ms < end
        )
        self._next_start = start + self.slide_ms
        # No future window starts before the new cursor, so records whose
        # timestamp precedes it can never be selected again: evict them.
        self._collector.drain(self._next_start)
        METRICS.incr("stream.windows_closed")
        return ClosedWindow(bounds=WindowBounds(start, end), records=records)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    def state(self) -> dict:
        """Everything needed to restore this windower exactly."""
        return {
            "next_start": self._next_start,
            "max_ts": self._max_ts,
            "late_dropped": self.late_dropped,
            "pending": list(self._collector.iter_records()),
        }

    def restore(self, state: dict) -> None:
        """Rebuild buffered state from :meth:`state` output."""
        self._next_start = state["next_start"]
        self._max_ts = state["max_ts"]
        self.late_dropped = state["late_dropped"]
        self._collector = FlowCollector()
        self._collector.ingest_many(state["pending"])
