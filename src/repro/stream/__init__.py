"""Streaming repricing: the paper's pipeline run continuously.

The batch workflow collects 24 h of NetFlow, calibrates the market once,
and derives tiers once.  This package runs the same chain online: record
sources feed a bounded backpressure queue, event-time windows close over
export timestamps, each window recalibrates the market, and tiers are
re-derived only when the measured drift (stale-vs-refreshed profit
capture) crosses a threshold.  Pipelines checkpoint after every window,
so a killed stream resumes mid-flight with bit-identical results.

Entry points: :class:`StreamingPipeline` from Python, or
``python -m repro stream`` from the command line.
"""

from repro.stream.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    PipelineCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.stream.pipeline import (
    StreamConfig,
    StreamingPipeline,
    StreamReport,
)
from repro.stream.queue import BoundedQueue, POLICIES
from repro.stream.repricer import (
    DesignPublication,
    OnlineRepricer,
    STATUS_EMPTY,
    STATUS_PRICED,
    STATUS_SKIPPED,
    WindowResult,
    aggregate_by_destination,
)
from repro.stream.source import (
    DemandShift,
    TraceReplaySource,
    V5PacketSource,
    V9PacketSource,
    arrival_order,
)
from repro.stream.window import ClosedWindow, WindowBounds, Windower

__all__ = [
    "BoundedQueue",
    "CHECKPOINT_FORMAT_VERSION",
    "ClosedWindow",
    "DemandShift",
    "DesignPublication",
    "OnlineRepricer",
    "POLICIES",
    "PipelineCheckpoint",
    "STATUS_EMPTY",
    "STATUS_PRICED",
    "STATUS_SKIPPED",
    "StreamConfig",
    "StreamReport",
    "StreamingPipeline",
    "TraceReplaySource",
    "V5PacketSource",
    "V9PacketSource",
    "WindowBounds",
    "WindowResult",
    "Windower",
    "aggregate_by_destination",
    "arrival_order",
    "load_checkpoint",
    "save_checkpoint",
]
