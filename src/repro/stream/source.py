"""Record sources feeding the streaming pipeline.

A *source* is any iterable of :class:`~repro.netflow.records.NetFlowRecord`
delivered roughly in export-time order.  Three sources cover the pipeline's
inputs:

* :class:`TraceReplaySource` — replays a synthetic
  :class:`~repro.synth.trace.NetworkTrace` as a live export stream.  The
  batch generator emits one record per (flow, router) spanning the whole
  capture; a real router instead re-exports long-lived flows every *active
  timeout*.  The replay source re-chunks each record into export-interval
  slices (byte/packet counters split proportionally, totals conserved
  exactly) and yields them sorted by export timestamp, so windows see a
  continuous stream rather than one end-of-capture burst.
* :class:`V5PacketSource` — decodes binary NetFlow v5 packets
  (:mod:`repro.netflow.codec`) on the fly.
* :class:`V9PacketSource` — decodes template-based NetFlow v9 packets
  through a stateful :class:`~repro.netflow.v9.V9Decoder`.

:class:`DemandShift` injects a deterministic structural demand change at a
chosen instant — the knob the drift tests (and operators rehearsing a
re-tier) use to make the repricer fire.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Iterable, Iterator
from typing import Optional

from repro.errors import DataError
from repro.netflow.codec import EngineMap, decode_packet
from repro.netflow.records import FlowKey, NetFlowRecord
from repro.netflow.v9 import V9Decoder
from repro.synth.trace import NetworkTrace


def arrival_order(record: NetFlowRecord) -> tuple:
    """Deterministic export order: time first, then key, then router."""
    key = record.key
    return (
        record.last_ms,
        record.first_ms,
        key.src_addr,
        key.dst_addr,
        key.src_port,
        key.dst_port,
        key.protocol,
        record.router,
    )


@dataclasses.dataclass(frozen=True)
class DemandShift:
    """A structural demand change injected into a replayed trace.

    From ``at_ms`` on, the byte/packet counters of a deterministic subset
    of flows (the first ``fraction`` of flow keys in canonical key order)
    are scaled by ``factor``.  Because only *some* flows move, the
    relative demand structure changes and a stale tier design starts
    mispricing — exactly the situation drift-triggered re-tiering exists
    for.  A uniform shift (``fraction=1.0``) mostly re-scales the market
    and should *not* fire a well-thresholded repricer.
    """

    at_ms: int
    factor: float
    fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise DataError(f"shift at_ms must be >= 0, got {self.at_ms}")
        if self.factor <= 0:
            raise DataError(f"shift factor must be positive, got {self.factor}")
        if not 0 < self.fraction <= 1:
            raise DataError(
                f"shift fraction must be in (0, 1], got {self.fraction}"
            )

    def selected_keys(self, keys: Iterable[FlowKey]) -> set:
        """The flow keys this shift applies to (deterministic)."""
        ordered = sorted(
            set(keys),
            key=lambda k: (k.src_addr, k.dst_addr, k.src_port, k.dst_port, k.protocol),
        )
        n = max(1, math.ceil(self.fraction * len(ordered)))
        return set(ordered[:n])


class TraceReplaySource:
    """Replay a synthetic trace as a time-ordered export stream.

    Args:
        trace: The generated trace to replay.
        export_interval_ms: Router active timeout — long flows are
            re-exported as one record per interval.
        shift: Optional :class:`DemandShift` applied during the replay.

    Iterating yields re-chunked records sorted by
    :func:`arrival_order`; iteration is repeatable (each ``iter()``
    restarts the replay) and fully deterministic.
    """

    def __init__(
        self,
        trace: NetworkTrace,
        export_interval_ms: int = 60_000,
        shift: Optional[DemandShift] = None,
    ) -> None:
        if export_interval_ms < 1:
            raise DataError(
                f"export_interval_ms must be >= 1, got {export_interval_ms}"
            )
        self.trace = trace
        self.export_interval_ms = int(export_interval_ms)
        self.shift = shift
        self._replay: "list[NetFlowRecord] | None" = None

    def records(self) -> "list[NetFlowRecord]":
        """The full replay, materialized once and cached."""
        if self._replay is None:
            shifted_keys: set = set()
            if self.shift is not None:
                shifted_keys = self.shift.selected_keys(
                    r.key for r in self.trace.records
                )
            chunks: "list[NetFlowRecord]" = []
            for record in self.trace.records:
                chunks.extend(
                    _rechunk(record, self.export_interval_ms, self.shift, shifted_keys)
                )
            chunks.sort(key=arrival_order)
            self._replay = chunks
        return self._replay

    def __iter__(self) -> Iterator[NetFlowRecord]:
        return iter(self.records())

    def __len__(self) -> int:
        return len(self.records())


def _rechunk(
    record: NetFlowRecord,
    interval_ms: int,
    shift: Optional[DemandShift],
    shifted_keys: set,
) -> "list[NetFlowRecord]":
    """Split one record into export-interval slices, conserving counters.

    Counter allocation is cumulative-proportional (``floor(total * t/T)``
    differences), so slice counters sum exactly to the original record's.
    Slices that round down to zero octets are skipped — real routers do
    not export empty flow records.
    """
    span = record.duration_ms + 1
    n_chunks = max(1, math.ceil(span / interval_ms))
    out = []
    prev_octets = 0
    prev_packets = 0
    for i in range(n_chunks):
        first = record.first_ms + i * interval_ms
        last = min(record.last_ms, first + interval_ms - 1)
        elapsed = last - record.first_ms + 1
        cum_octets = record.octets * elapsed // span
        cum_packets = record.packets * elapsed // span
        octets = cum_octets - prev_octets
        packets = cum_packets - prev_packets
        prev_octets, prev_packets = cum_octets, cum_packets
        if shift is not None and record.key in shifted_keys and first >= shift.at_ms:
            octets = int(octets * shift.factor)
            packets = int(packets * shift.factor)
        if octets <= 0:
            continue
        out.append(
            dataclasses.replace(
                record, octets=octets, packets=packets, first_ms=first, last_ms=last
            )
        )
    return out


class V5PacketSource:
    """Decode an iterable of binary NetFlow v5 packets into records."""

    def __init__(self, packets: Iterable[bytes], engines: EngineMap) -> None:
        self._packets = packets
        self._engines = engines
        self.packets_decoded = 0

    def __iter__(self) -> Iterator[NetFlowRecord]:
        for packet in self._packets:
            records = decode_packet(packet, self._engines)
            self.packets_decoded += 1
            yield from records


class V9PacketSource:
    """Decode an iterable of NetFlow v9 packets through a template cache.

    Records buffered behind an unseen template are emitted as soon as the
    template packet arrives (see :class:`~repro.netflow.v9.V9Decoder`).
    """

    def __init__(
        self,
        packets: Iterable[bytes],
        decoder: "V9Decoder | dict",
    ) -> None:
        if isinstance(decoder, dict):
            decoder = V9Decoder(decoder)
        self._packets = packets
        self._decoder = decoder
        self.packets_decoded = 0

    def __iter__(self) -> Iterator[NetFlowRecord]:
        for packet in self._packets:
            records = self._decoder.decode(packet)
            self.packets_decoded += 1
            yield from records
