"""The streaming pipeline: source → queue → windows → repricer.

:class:`StreamingPipeline` runs the paper's full measure→model→design
loop continuously instead of once over a 24-hour batch:

1. records are pulled from a source (trace replay or decoded wire
   packets) into a :class:`~repro.stream.queue.BoundedQueue` with an
   explicit backpressure policy;
2. the queue drains into a :class:`~repro.stream.window.Windower` whenever
   it fills or a window boundary passes, closing tumbling/sliding
   event-time windows;
3. each closed window is aggregated into a flow set and handed to the
   :class:`~repro.stream.repricer.OnlineRepricer`, which recalibrates the
   market and re-derives tiers only when the stale-vs-refreshed profit
   gap crosses the drift threshold;
4. after every ``checkpoint_every`` windows the whole pipeline state is
   checkpointed, so a killed run resumes mid-stream with bit-identical
   results.

The run is deterministic: the same source yields the same window results,
re-tier events, and final design, with or without a kill/restore in the
middle, serial every time (there is no cross-window parallelism — each
window's pricing depends on the design the previous windows left in
force).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro import obs
from repro.config import StreamConfig
from repro.core.bundling import BundlingStrategy, ProfitWeightedBundling
from repro.core.cost import CostModel
from repro.core.demand import DemandModel
from repro.errors import DataError
from repro.obs import METRICS
from repro.stream.checkpoint import (
    PipelineCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.stream.queue import BoundedQueue
from repro.stream.repricer import (
    OnlineRepricer,
    STATUS_PRICED,
    WindowResult,
)
from repro.stream.window import ClosedWindow, Windower
from repro.accounting.tier_designer import TierDesign


# StreamConfig now lives in the unified configuration module; it is
# re-exported here (and from repro.stream) so existing imports keep
# working.  Checkpoint digests are unchanged — same fields, same hash.
__all__ = ["StreamConfig", "StreamReport", "StreamingPipeline"]


@dataclasses.dataclass
class StreamReport:
    """Everything one :meth:`StreamingPipeline.run` produced."""

    results: "list[WindowResult]"
    design: "Optional[TierDesign]"
    records_consumed: int
    queue_dropped: int
    queue_blocked: int
    late_dropped: int
    wall_time_s: float

    @property
    def windows_priced(self) -> int:
        return sum(1 for r in self.results if r.status == STATUS_PRICED)

    @property
    def retier_events(self) -> int:
        return sum(1 for r in self.results if r.retier)

    @property
    def records_per_second(self) -> float:
        return self.records_consumed / max(self.wall_time_s, 1e-9)

    def profit_series(self) -> "list[tuple[int, float]]":
        """(window start, realized profit) per priced window.

        Realized profit is what the design actually in force during the
        window earns: the refreshed design's profit when the window
        re-tiered, the replayed stale design's otherwise.
        """
        series = []
        for r in self.results:
            if r.status != STATUS_PRICED:
                continue
            profit = r.refreshed_profit if r.retier else r.stale_profit
            series.append((r.start_ms, float(profit)))
        return series

    def render(self) -> str:
        lines = [
            f"{'window':>21} {'status':>8} {'records':>8} {'dsts':>6} "
            f"{'profit $/mo':>12} {'cap drop':>9}  event",
        ]
        for r in self.results:
            span = f"[{r.start_ms / 1000:>8.0f},{r.end_ms / 1000:>8.0f})s"
            profit = r.refreshed_profit if r.retier else r.stale_profit
            lines.append(
                f"{span:>21} {r.status:>8} {r.n_records:>8} {r.n_flows:>6} "
                f"{'' if profit is None else format(profit, ',.0f'):>12} "
                f"{'' if r.capture_drop is None else format(r.capture_drop, '.3f'):>9}"
                f"  {'RE-TIER' if r.retier else ''}"
            )
        lines.append(
            f"windows: {len(self.results)} total, {self.windows_priced} priced, "
            f"{self.retier_events} re-tier events; "
            f"records: {self.records_consumed} "
            f"({self.records_per_second:,.0f}/s), "
            f"{self.queue_dropped} dropped, {self.late_dropped} late"
        )
        if self.design is not None:
            lines.append(self.design.describe())
        return "\n".join(lines)


class StreamingPipeline:
    """Drives records from a source through windows into the repricer.

    Args:
        source: Iterable of :class:`~repro.netflow.records.NetFlowRecord`
            in rough export order (see :mod:`repro.stream.source`).
        distance_fn: Flow key -> miles, the per-network cost proxy.
        demand_model / cost_model: The market model for every window.
        config: Streaming knobs (:class:`StreamConfig`).
        region_fn: Optional flow key -> region label.
        strategy: Bundling strategy (default profit-weighted).
        checkpoint_path: When set, state is written there every
            ``config.checkpoint_every`` windows, and an existing file is
            restored from before consuming any records.
        on_design_published: Optional subscriber invoked with a
            :class:`~repro.stream.repricer.DesignPublication` after every
            accepted re-tiering — the hook the quote-serving registry
            hot-swaps snapshots from
            (:meth:`repro.serve.SnapshotRegistry.subscriber`).
        mechanism: Optional :class:`~repro.mechanisms.Mechanism`
            replacing the posted-tiers design path.  ``None`` (or the
            posted-tiers mechanism itself) keeps the legacy pipeline and
            its byte-identical config digest; any other mechanism tags
            the digest ``|mechanism=<name>``, so checkpoints and quote
            snapshots from different regimes never mix.
    """

    def __init__(
        self,
        source,
        distance_fn: Callable,
        demand_model: DemandModel,
        cost_model: CostModel,
        config: StreamConfig,
        region_fn: "Callable | None" = None,
        strategy: "BundlingStrategy | None" = None,
        checkpoint_path=None,
        on_design_published: "Callable | None" = None,
        mechanism=None,
    ) -> None:
        self.source = source
        self.distance_fn = distance_fn
        self.region_fn = region_fn
        self.config = config
        self.checkpoint_path = checkpoint_path
        self._digest = config.digest(demand_model, cost_model)
        if mechanism is not None:
            from repro.mechanisms.base import tag_config_digest

            self._digest = tag_config_digest(self._digest, mechanism.name)

        self.queue = BoundedQueue(config.queue_capacity, config.queue_policy)
        self.windower = Windower(
            config.window_ms,
            config.slide_ms,
            config.reorder_tolerance_ms,
        )
        self.repricer = OnlineRepricer(
            demand_model,
            cost_model,
            blended_rate=config.blended_rate,
            strategy=strategy or ProfitWeightedBundling(),
            n_tiers=config.n_tiers,
            drift_threshold=config.drift_threshold,
            provider_asn=config.provider_asn,
            mechanism=mechanism,
        )
        self.repricer.on_design_published = on_design_published
        self.results: "list[WindowResult]" = []
        self.records_consumed = 0
        self._skip = 0
        self._close_hint: "Optional[int]" = None
        self._windows_since_checkpoint = 0

        if checkpoint_path is not None:
            import pathlib

            if pathlib.Path(checkpoint_path).exists():
                self._restore(load_checkpoint(checkpoint_path, self._digest))

    @property
    def config_digest(self) -> str:
        """The run's configuration fingerprint (checkpoints and quote
        snapshots both embed it, so mixed-regime state is detectable)."""
        return self._digest

    # ------------------------------------------------------------------
    # Checkpoint plumbing
    # ------------------------------------------------------------------

    def _restore(self, checkpoint: PipelineCheckpoint) -> None:
        self.records_consumed = checkpoint.records_consumed
        self._skip = checkpoint.records_consumed
        self.windower.restore(checkpoint.windower_state)
        self.queue.restore(checkpoint.queued_records, checkpoint.queue_counters)
        self.repricer.design = checkpoint.design
        self.results = list(checkpoint.results)
        METRICS.incr("stream.restores")

    def _write_checkpoint(self) -> None:
        if self.checkpoint_path is None:
            return
        save_checkpoint(
            PipelineCheckpoint(
                config_digest=self._digest,
                records_consumed=self.records_consumed,
                windower_state=self.windower.state(),
                queued_records=self.queue.snapshot(),
                queue_counters=self.queue.counters(),
                design=self.repricer.design,
                results=self.results,
            ),
            self.checkpoint_path,
        )
        self._windows_since_checkpoint = 0
        METRICS.incr("stream.checkpoints")

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------

    def run(self, max_windows: "Optional[int]" = None) -> StreamReport:
        """Consume the source (or resume a checkpoint) to completion.

        Args:
            max_windows: Stop (with a checkpoint) once this many windows
                have been emitted — the hook the kill/restore tests and
                bounded smoke runs use.  ``None`` runs the stream dry and
                flushes the remaining open windows.
        """
        import time

        start = time.perf_counter()
        stopped_early = False
        with METRICS.stage("stream.run"), obs.span(
            "stream.run",
            window_ms=self.config.window_ms,
            drift_threshold=self.config.drift_threshold,
        ):
            for record in self.source:
                if self._skip > 0:
                    # Fast-forward over records a restored checkpoint
                    # already accounted for.
                    self._skip -= 1
                    continue
                self.records_consumed += 1
                METRICS.incr("stream.records")
                if not self.queue.offer(record):
                    # Full queue under the block policy: the "producer"
                    # waits by letting the consumer catch up first.
                    self._process_queue()
                    self.queue.offer(record)
                if self._boundary_passed(record.last_ms):
                    self._process_queue()
                if max_windows is not None and len(self.results) >= max_windows:
                    stopped_early = True
                    break
            if not stopped_early:
                self._process_queue()
                for window in self.windower.flush():
                    self._handle_window(window)
            self._write_checkpoint()
        return StreamReport(
            results=list(self.results),
            design=self.repricer.design,
            records_consumed=self.records_consumed,
            queue_dropped=self.queue.dropped,
            queue_blocked=self.queue.blocked,
            late_dropped=self.windower.late_dropped,
            wall_time_s=time.perf_counter() - start,
        )

    def _boundary_passed(self, ts_ms: int) -> bool:
        """Has event time moved past the next window close?"""
        next_close = self.windower.next_close_ms
        if next_close is None:
            if self._close_hint is None:
                self._close_hint = self.windower.first_close_for(ts_ms)
            next_close = self._close_hint
        return ts_ms - self.config.reorder_tolerance_ms >= next_close

    def _process_queue(self) -> None:
        self._close_hint = None
        for record in self.queue.drain():
            for window in self.windower.ingest(record):
                self._handle_window(window)

    def _handle_window(self, window: ClosedWindow) -> None:
        with obs.span(
            "stream.window",
            start_ms=window.bounds.start_ms,
            end_ms=window.bounds.end_ms,
            records=window.n_records,
        ) as span:
            if not window.records:
                result = self.repricer.empty_window(window)
            else:
                try:
                    with METRICS.stage("stream.aggregate"):
                        flows = window.flowset(
                            self.distance_fn,
                            self.region_fn,
                            self.config.min_demand_mbps,
                        )
                except DataError as exc:
                    METRICS.incr("stream.windows_skipped")
                    result = WindowResult.skipped(
                        window.bounds,
                        window.n_records,
                        f"DataError: {exc}",
                        self.repricer.current_tiers,
                    )
                else:
                    result = self.repricer.price_window(window, flows)
            span.set_attribute("status", result.status)
            span.set_attribute("retier", result.retier)
            if result.status != STATUS_PRICED:
                # Empty and skipped windows completed with a fallback
                # answer (the design already in force), not a failure.
                span.set_status(obs.STATUS_DEGRADED)
        self.results.append(result)
        self._windows_since_checkpoint += 1
        if (
            self.checkpoint_path is not None
            and self._windows_since_checkpoint >= self.config.checkpoint_every
        ):
            self._write_checkpoint()
