"""Checkpoint/restore for the streaming pipeline.

A checkpoint is one JSON document capturing everything the pipeline needs
to resume exactly where it stopped: the source cursor (records consumed),
the windower's buffered records and emission cursor, queued-but-unwindowed
records, the tier design in force, every window result so far, and the
backpressure counters.  All values are integers or ``repr``-round-tripping
floats, so a killed-and-restored run replays the remaining stream to
*bit-identical* window results — the end-to-end determinism test asserts
this.

Checkpoints embed a digest of the pipeline configuration; restoring under
a different window size, slide, threshold, or market model raises
:class:`~repro.errors.ConfigurationError` instead of silently mixing
incompatible state.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Optional, Union

from repro.accounting.tier_designer import TierDesign
from repro.errors import ConfigurationError, DataError
from repro.io import design_from_json, design_to_json
from repro.netflow.records import FlowKey, NetFlowRecord
from repro.stream.repricer import WindowResult

#: Schema version written into checkpoint files.
CHECKPOINT_FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


@dataclasses.dataclass
class PipelineCheckpoint:
    """A resumable snapshot of a :class:`~repro.stream.pipeline.StreamingPipeline`."""

    config_digest: str
    records_consumed: int
    windower_state: dict
    queued_records: "list[NetFlowRecord]"
    queue_counters: dict
    design: "Optional[TierDesign]"
    results: "list[WindowResult]"


def record_to_dict(record: NetFlowRecord) -> dict:
    key = record.key
    return {
        "src": key.src_addr,
        "dst": key.dst_addr,
        "sport": key.src_port,
        "dport": key.dst_port,
        "proto": key.protocol,
        "octets": record.octets,
        "packets": record.packets,
        "first_ms": record.first_ms,
        "last_ms": record.last_ms,
        "router": record.router,
        "input_if": record.input_if,
        "output_if": record.output_if,
        "interval": record.sampling_interval,
    }


def record_from_dict(payload: dict) -> NetFlowRecord:
    try:
        return NetFlowRecord(
            key=FlowKey(
                src_addr=str(payload["src"]),
                dst_addr=str(payload["dst"]),
                src_port=int(payload["sport"]),
                dst_port=int(payload["dport"]),
                protocol=int(payload["proto"]),
            ),
            octets=int(payload["octets"]),
            packets=int(payload["packets"]),
            first_ms=int(payload["first_ms"]),
            last_ms=int(payload["last_ms"]),
            router=str(payload["router"]),
            input_if=int(payload["input_if"]),
            output_if=int(payload["output_if"]),
            sampling_interval=int(payload["interval"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(f"checkpoint record is corrupt: {exc!r}") from exc


def checkpoint_to_json(checkpoint: PipelineCheckpoint) -> str:
    windower = dict(checkpoint.windower_state)
    windower["pending"] = [record_to_dict(r) for r in windower["pending"]]
    payload = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "config_digest": checkpoint.config_digest,
        "records_consumed": checkpoint.records_consumed,
        "windower": windower,
        "queue": {
            "records": [record_to_dict(r) for r in checkpoint.queued_records],
            **checkpoint.queue_counters,
        },
        "design": (
            None
            if checkpoint.design is None
            else json.loads(design_to_json(checkpoint.design))
        ),
        "results": [dataclasses.asdict(r) for r in checkpoint.results],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def checkpoint_from_json(text: str, expected_digest: str) -> PipelineCheckpoint:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DataError(f"malformed checkpoint JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise DataError("checkpoint JSON must be an object")
    version = payload.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise DataError(
            f"unsupported checkpoint format_version {version!r} "
            f"(this build reads {CHECKPOINT_FORMAT_VERSION})"
        )
    digest = payload.get("config_digest")
    if digest != expected_digest:
        raise ConfigurationError(
            "checkpoint was written under a different pipeline "
            f"configuration (digest {digest!r} != {expected_digest!r}); "
            "refusing to resume with mixed state"
        )
    try:
        windower = dict(payload["windower"])
        windower["pending"] = [
            record_from_dict(r) for r in windower["pending"]
        ]
        queue = dict(payload["queue"])
        queued = [record_from_dict(r) for r in queue.pop("records")]
        design_payload = payload["design"]
        design = (
            None
            if design_payload is None
            else design_from_json(json.dumps(design_payload))
        )
        results = [WindowResult(**r) for r in payload["results"]]
        consumed = int(payload["records_consumed"])
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(f"checkpoint JSON is missing or corrupt: {exc!r}") from exc
    return PipelineCheckpoint(
        config_digest=digest,
        records_consumed=consumed,
        windower_state=windower,
        queued_records=queued,
        queue_counters=queue,
        design=design,
        results=results,
    )


def save_checkpoint(
    checkpoint: PipelineCheckpoint, path: PathLike
) -> pathlib.Path:
    """Write atomically (write-then-rename) so a kill mid-write never
    leaves a torn checkpoint behind."""
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(checkpoint_to_json(checkpoint))
    tmp.replace(path)
    return path


def load_checkpoint(path: PathLike, expected_digest: str) -> PipelineCheckpoint:
    path = pathlib.Path(path)
    if not path.exists():
        raise DataError(f"no such checkpoint file: {path}")
    return checkpoint_from_json(path.read_text(), expected_digest)
