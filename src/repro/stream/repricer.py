"""Incremental market recalibration and drift-triggered re-tiering.

Each closed window becomes one run of the paper's pipeline in miniature:
the window's flow set recalibrates the market (same demand family, cost
model, and blended reference as the design in force), the current tier
design is replayed as a price vector through the drift machinery
(:func:`~repro.accounting.drift.replay_design_prices`), and a refreshed
design is derived for comparison.  Tiers are *re-derived* — the design in
force replaced and a re-tier event recorded — only when the stale-vs-
refreshed profit-capture gap crosses the configured threshold, so a
stationary stream keeps its tiers and only genuine structural drift
forces repricing.

Destinations are first aggregated (one flow per destination address,
demand-summed, demand-weighted distance) because a tier design prices
*destinations*: two 5-tuples toward the same address must land in the
same tier.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np

from repro.accounting.drift import replay_design_prices
from repro.accounting.tier_designer import TierDesign
from repro.core.bundling import BundlingStrategy, ProfitWeightedBundling
from repro.core.cost import CostModel
from repro.core.demand import DemandModel
from repro.core.flow import NO_LABEL, FlowSet
from repro.core.market import Market
from repro import obs
from repro.errors import MechanismError, ReproError
from repro.obs import METRICS
from repro.stream.window import ClosedWindow, WindowBounds

#: Window statuses a :class:`WindowResult` can report.
STATUS_PRICED = "priced"
STATUS_EMPTY = "empty"
STATUS_SKIPPED = "skipped"


@dataclasses.dataclass(frozen=True)
class WindowResult:
    """What happened to one window.

    ``stale_profit``/``refreshed_profit`` are $/month at the window's
    demand rates; ``capture_drop`` is the profit-capture gap between
    replaying the prior design and re-deriving tiers (the re-tier
    trigger).  On the first priced window there is no prior design, so
    the stale-side fields are ``None`` and ``retier`` is ``True`` with
    reason ``"initial design"``.
    """

    start_ms: int
    end_ms: int
    status: str
    n_records: int
    n_flows: int
    retier: bool
    reason: str
    stale_profit: "Optional[float]" = None
    refreshed_profit: "Optional[float]" = None
    capture_drop: "Optional[float]" = None
    n_tiers: int = 0

    @classmethod
    def empty(cls, bounds: WindowBounds, n_tiers: int) -> "WindowResult":
        return cls(
            start_ms=bounds.start_ms,
            end_ms=bounds.end_ms,
            status=STATUS_EMPTY,
            n_records=0,
            n_flows=0,
            retier=False,
            reason="no traffic",
            n_tiers=n_tiers,
        )

    @classmethod
    def skipped(
        cls, bounds: WindowBounds, n_records: int, reason: str, n_tiers: int
    ) -> "WindowResult":
        return cls(
            start_ms=bounds.start_ms,
            end_ms=bounds.end_ms,
            status=STATUS_SKIPPED,
            n_records=n_records,
            n_flows=0,
            retier=False,
            reason=reason,
            n_tiers=n_tiers,
        )


@dataclasses.dataclass(frozen=True)
class DesignPublication:
    """One accepted re-tiering, as delivered to publish subscribers.

    Carries everything a consumer needs to build a quote-ready view of the
    design without holding a reference to the repricer: the frozen design,
    the calibration scale of the market it was derived on (``gamma`` maps
    relative costs to $/Mbps), the calibration set's maximum haul distance
    (the cost-normalization frame quote costs must be computed in), the
    blended reference rate, the event time the design took effect, and a
    monotonically increasing sequence number.
    """

    design: TierDesign
    gamma: float
    blended_rate: float
    window_end_ms: int
    sequence: int
    reference_distance_miles: "Optional[float]" = None


def aggregate_by_destination(flows: FlowSet) -> FlowSet:
    """One flow per destination: demand summed, distance demand-weighted.

    Flow sets without destination addresses pass through unchanged.
    Output order is sorted by destination, so repeated runs over the same
    window are bit-identical.

    Grouping runs entirely on the destination *code* column: demand sums
    and demand-weighted distances are ``bincount`` reductions over the
    group inverse (which add members in the same index order the old
    per-group Python sums did, so results are bit-identical), and each
    group's dominant-flow region falls out of one ``lexsort``.
    """
    codes = flows.dst_codes
    if codes is None:
        return flows
    uniq, inverse = np.unique(codes, return_inverse=True)
    if uniq.size == codes.size:
        return flows
    demand_sums = np.bincount(inverse, weights=flows.demands)
    distance_means = (
        np.bincount(inverse, weights=flows.demands * flows.distances)
        / demand_sums
    )
    region_codes = None
    if flows.region_codes is not None:
        # Dominant flow per group: highest demand, earliest index on ties.
        by_group = np.lexsort((np.arange(len(flows)), -flows.demands, inverse))
        dominant = by_group[np.unique(inverse[by_group], return_index=True)[1]]
        region_codes = flows.region_codes[dominant]

    # Emit groups sorted by destination label (the legacy iteration order).
    table = flows.dst_table
    labels = [table[c] if c >= 0 else None for c in uniq]
    group_order = sorted(
        range(len(labels)), key=lambda g: (labels[g] is None, labels[g] or "")
    )
    dst_codes = np.empty(len(labels), dtype=np.int32)
    dst_table: list = []
    for position, g in enumerate(group_order):
        if labels[g] is None:
            dst_codes[position] = NO_LABEL
        else:
            dst_codes[position] = len(dst_table)
            dst_table.append(labels[g])
    g_order = np.asarray(group_order)
    return FlowSet.from_columns(
        demand_sums[g_order],
        distance_means[g_order],
        region_codes=None if region_codes is None else region_codes[g_order],
        dst_codes=dst_codes,
        dst_table=tuple(dst_table),
        validate=False,
    )


class OnlineRepricer:
    """Holds the design in force and reprices it window by window.

    Args:
        demand_model / cost_model / blended_rate: The market model every
            window is recalibrated under (keep them fixed across the
            stream, as the drift comparison assumes).
        strategy: Bundling strategy for derived designs.
        n_tiers: Tier budget for derived designs.
        drift_threshold: Re-tier when the refreshed design's profit
            capture exceeds the stale design's by more than this.
        provider_asn: ASN stamped into derived designs.
        mechanism: Optional :class:`~repro.mechanisms.Mechanism`
            replacing the posted-tiers design path.  ``None`` keeps the
            legacy (byte-identical) posted pipeline.  Mechanisms that
            re-clear per window (spot, hybrid) publish every priced
            window; the drift gate then governs only whether the
            *posted* component is re-derived (``retier``), while the
            spot component re-clears regardless via
            :meth:`Mechanism.reclear_on`.
    """

    def __init__(
        self,
        demand_model: DemandModel,
        cost_model: CostModel,
        blended_rate: float = 20.0,
        strategy: "BundlingStrategy | None" = None,
        n_tiers: int = 3,
        drift_threshold: float = 0.1,
        provider_asn: int = 64500,
        mechanism=None,
    ) -> None:
        self.demand_model = demand_model
        self.cost_model = cost_model
        self.blended_rate = float(blended_rate)
        self.strategy = strategy or ProfitWeightedBundling()
        self.n_tiers = int(n_tiers)
        self.drift_threshold = float(drift_threshold)
        self.provider_asn = int(provider_asn)
        self.mechanism = mechanism
        #: Leading tiers of the design in force that are posted contracts
        #: (mechanism mode only; ``None`` after a checkpoint restore, in
        #: which case the next re-clear falls back to a full redesign).
        self._posted_tiers: "Optional[int]" = None
        #: The tier design currently in force (``None`` before the first
        #: successfully priced window).
        self.design: "Optional[TierDesign]" = None
        #: Optional subscriber invoked with a :class:`DesignPublication`
        #: after every accepted re-tiering (the checkpoint write used to be
        #: the only way to observe a new design; the serving layer
        #: subscribes here instead of polling).  Publishing is best-effort:
        #: a failing subscriber is counted, not allowed to kill the stream.
        self.on_design_published: "Optional[Callable[[DesignPublication], None]]" = (
            None
        )
        self._subscribers: "list[Callable[[DesignPublication], None]]" = []
        self._publications = 0

    def subscribe(
        self, subscriber: "Callable[[DesignPublication], None]"
    ) -> "Callable[[DesignPublication], None]":
        """Register an *additional* publish subscriber.

        ``on_design_published`` remains the single-subscriber fast path;
        ``subscribe`` lets several consumers (a snapshot registry *and* a
        shard fleet, say) each receive every accepted re-tiering.  Same
        best-effort contract: one failing subscriber is counted
        (``stream.publish_errors``) and the rest still run.  Returns the
        subscriber, so it can be used as a decorator.
        """
        self._subscribers.append(subscriber)
        return subscriber

    @property
    def current_tiers(self) -> int:
        return 0 if self.design is None else self.design.n_tiers

    def price_window(self, window: ClosedWindow, flows: FlowSet) -> WindowResult:
        """Recalibrate on one window's flows and decide whether to re-tier.

        Model-layer failures (calibration on degenerate windows, bundling
        on too-few flows) mark the window ``skipped`` rather than killing
        the stream — live traffic does not get to crash the pricer.
        """
        flows = aggregate_by_destination(flows)
        if self.mechanism is not None:
            return self._price_mechanism_window(window, flows)
        try:
            with METRICS.stage("stream.calibrate"):
                market = Market(
                    flows, self.demand_model, self.cost_model, self.blended_rate
                )
            with METRICS.stage("stream.rebundle"):
                refreshed = market.tiered_outcome(self.strategy, self.n_tiers)
            if self.design is None:
                stale_profit = None
                capture_drop = None
                retier = True
                reason = "initial design"
            else:
                prices, unknown, missing = replay_design_prices(
                    self.design, market
                )
                stale_profit = market.profit_at(prices)
                capture_drop = market.profit_capture(
                    refreshed.profit
                ) - market.profit_capture(stale_profit)
                retier = capture_drop > self.drift_threshold
                reason = (
                    f"capture drop {capture_drop:.3f} "
                    f"{'>' if retier else '<='} threshold "
                    f"{self.drift_threshold:.3f} "
                    f"({unknown} unknown / {missing} churned destinations)"
                )
            # The drift-gate verdict, on the enclosing window span: why
            # this window did (or did not) replace the design in force.
            obs.event(
                "drift.decision",
                retier=retier,
                capture_drop=_opt_float(capture_drop),
                threshold=self.drift_threshold,
                reason=reason,
            )
            if retier:
                with METRICS.stage("stream.retier"):
                    self.design = TierDesign.from_outcome(
                        market, refreshed, provider_asn=self.provider_asn
                    )
                METRICS.incr("stream.retier_events")
        except ReproError as exc:
            METRICS.incr("stream.windows_skipped")
            return WindowResult.skipped(
                window.bounds,
                window.n_records,
                f"{type(exc).__name__}: {exc}",
                self.current_tiers,
            )
        if retier:
            self._publish(market, window)
        METRICS.incr("stream.windows_priced")
        return WindowResult(
            start_ms=window.bounds.start_ms,
            end_ms=window.bounds.end_ms,
            status=STATUS_PRICED,
            n_records=window.n_records,
            n_flows=len(flows),
            retier=retier,
            reason=reason,
            stale_profit=_opt_float(stale_profit),
            refreshed_profit=float(refreshed.profit),
            capture_drop=_opt_float(capture_drop),
            n_tiers=self.current_tiers,
        )

    def _price_mechanism_window(
        self, window: ClosedWindow, flows: FlowSet
    ) -> WindowResult:
        """Mechanism-mode window pricing (posted mode stays untouched).

        Same drift machinery as the legacy path — the design in force is
        replayed and compared against a fresh design — but the re-tier
        verdict only governs re-*derivation*.  Mechanisms with a spot
        component (:attr:`Mechanism.reclears`) additionally re-clear
        that component at every priced window, pinning the held posted
        book, and publish the result.
        """
        mechanism = self.mechanism
        try:
            with METRICS.stage("stream.calibrate"):
                market = Market(
                    flows, self.demand_model, self.cost_model, self.blended_rate
                )
            with METRICS.stage("stream.rebundle"):
                refreshed = mechanism.design_on(
                    market, provider_asn=self.provider_asn
                )
            if refreshed.tier_design is None:
                raise MechanismError(
                    "streaming mechanisms need destination addresses"
                )
            adopted: "Optional[object]" = None
            if self.design is None:
                stale_profit = None
                capture_drop = None
                retier = True
                reason = "initial design"
                adopted = refreshed
            else:
                prices, unknown, missing = replay_design_prices(
                    self.design, market
                )
                stale_profit = market.profit_at(prices)
                capture_drop = market.profit_capture(
                    refreshed.profit
                ) - market.profit_capture(stale_profit)
                retier = capture_drop > self.drift_threshold
                reason = (
                    f"capture drop {capture_drop:.3f} "
                    f"{'>' if retier else '<='} threshold "
                    f"{self.drift_threshold:.3f} "
                    f"({unknown} unknown / {missing} churned destinations)"
                )
                if retier:
                    adopted = refreshed
                elif mechanism.reclears:
                    with METRICS.stage("stream.reclear"):
                        adopted = mechanism.reclear_on(
                            market,
                            self.design,
                            self._posted_tiers or 0,
                            provider_asn=self.provider_asn,
                        )
                    reason += "; spot re-cleared"
            obs.event(
                "drift.decision",
                retier=retier,
                capture_drop=_opt_float(capture_drop),
                threshold=self.drift_threshold,
                reason=reason,
            )
            if adopted is not None:
                if adopted.tier_design is None:
                    raise MechanismError(
                        "streaming mechanisms need destination addresses"
                    )
                with METRICS.stage("stream.retier"):
                    self.design = adopted.tier_design
                    self._posted_tiers = adopted.posted_tiers
                if retier:
                    METRICS.incr("stream.retier_events")
                else:
                    METRICS.incr("stream.reclear_events")
        except ReproError as exc:
            METRICS.incr("stream.windows_skipped")
            return WindowResult.skipped(
                window.bounds,
                window.n_records,
                f"{type(exc).__name__}: {exc}",
                self.current_tiers,
            )
        if adopted is not None:
            self._publish(market, window)
        METRICS.incr("stream.windows_priced")
        return WindowResult(
            start_ms=window.bounds.start_ms,
            end_ms=window.bounds.end_ms,
            status=STATUS_PRICED,
            n_records=window.n_records,
            n_flows=len(flows),
            retier=retier,
            reason=reason,
            stale_profit=_opt_float(stale_profit),
            refreshed_profit=float(refreshed.profit),
            capture_drop=_opt_float(capture_drop),
            n_tiers=self.current_tiers,
        )

    def _publish(self, market: Market, window: ClosedWindow) -> None:
        """Deliver the design now in force to every publish subscriber."""
        targets = [
            target
            for target in [self.on_design_published, *self._subscribers]
            if target is not None
        ]
        if not targets:
            return
        self._publications += 1
        publication = DesignPublication(
            design=self.design,
            gamma=float(market.gamma),
            blended_rate=self.blended_rate,
            window_end_ms=window.bounds.end_ms,
            sequence=self._publications,
            reference_distance_miles=float(market.flows.distances.max()),
        )
        delivered = 0
        for target in targets:
            try:
                target(publication)
            except Exception:  # noqa: BLE001 - subscriber bugs must not kill the stream
                METRICS.incr("stream.publish_errors")
            else:
                delivered += 1
        if delivered:
            METRICS.incr("stream.designs_published")

    def empty_window(self, window: ClosedWindow) -> WindowResult:
        """Record a window with no (surviving) traffic: never a re-tier."""
        METRICS.incr("stream.windows_empty")
        return WindowResult.empty(window.bounds, self.current_tiers)


def _opt_float(value: "float | np.floating | None") -> "Optional[float]":
    return None if value is None else float(value)
