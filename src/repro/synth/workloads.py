"""Workload shaping on top of the base datasets.

The base datasets (:mod:`repro.synth.datasets`) are static traffic
matrices — all the paper's economics needs.  Operating tiered pricing
also needs *time series* (95th-percentile billing, SNMP polling) and
structured flow mixes, so this module adds:

* :func:`diurnal_profile` — a normalized 24-hour traffic shape with a
  configurable peak-to-trough ratio (the classic eyeball-network curve);
* :class:`TrafficTimeSeries` — expand a static matrix into per-interval
  volumes following a profile, with multiplicative noise;
* :func:`elephants_and_mice` — a two-population flow mix with an explicit
  heavy-hitter share, for stress-testing bundling heuristics beyond the
  lognormal shape the datasets use.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Sequence

import numpy as np

from repro.core.flow import FlowSet
from repro.errors import DataError


def diurnal_profile(
    n_intervals: int,
    peak_to_trough: float = 3.0,
    peak_hour: float = 20.0,
) -> np.ndarray:
    """A normalized 24-hour load shape (mean exactly 1).

    A raised cosine with its maximum at ``peak_hour``; ``peak_to_trough``
    sets the max/min ratio.  Multiply a mean rate by the profile to get
    per-interval rates.
    """
    if n_intervals < 1:
        raise DataError("n_intervals must be >= 1")
    if peak_to_trough < 1.0:
        raise DataError("peak_to_trough must be >= 1")
    if not 0.0 <= peak_hour < 24.0:
        raise DataError("peak_hour must be in [0, 24)")
    hours = np.arange(n_intervals) * 24.0 / n_intervals
    # shape in [-1, 1], peaking at peak_hour
    shape = np.cos((hours - peak_hour) / 24.0 * 2.0 * math.pi)
    ratio = peak_to_trough
    # Map to [min, max] with max/min = ratio and mean 1:
    # values = 1 + a*shape with a chosen from the ratio.
    amplitude = (ratio - 1.0) / (ratio + 1.0)
    profile = 1.0 + amplitude * shape
    return profile / profile.mean()


@dataclasses.dataclass(frozen=True)
class TrafficTimeSeries:
    """Per-flow, per-interval traffic volumes over a billing window.

    Attributes:
        flows: The underlying static matrix (mean rates).
        interval_seconds: Length of each interval (300 s = SNMP norm).
        rates_mbps: Array of shape (n_intervals, n_flows).
    """

    flows: FlowSet
    interval_seconds: float
    rates_mbps: np.ndarray

    @property
    def n_intervals(self) -> int:
        return int(self.rates_mbps.shape[0])

    def octets(self, interval: int, flow: int) -> int:
        """Bytes carried by one flow during one interval."""
        rate = float(self.rates_mbps[interval, flow])
        return int(rate * 1e6 / 8.0 * self.interval_seconds)

    def total_octets(self, flow: int) -> int:
        """Bytes carried by one flow over the whole window."""
        return sum(self.octets(i, flow) for i in range(self.n_intervals))

    def window_seconds(self) -> float:
        return self.n_intervals * self.interval_seconds

    def percentile_rate(self, flow: int, percentile: float = 95.0) -> float:
        """The flow's own 95th-percentile rate (Mbps)."""
        ordered = np.sort(self.rates_mbps[:, flow])
        rank = max(1, math.ceil(ordered.size * percentile / 100.0))
        return float(ordered[rank - 1])


def expand_to_time_series(
    flows: FlowSet,
    n_intervals: int = 288,
    interval_seconds: float = 300.0,
    peak_to_trough: float = 3.0,
    noise_cv: float = 0.1,
    seed: int = 0,
) -> TrafficTimeSeries:
    """Expand a static matrix into a diurnal per-interval series.

    Every flow follows the same normalized profile (scaled by its mean
    rate) with independent lognormal multiplicative noise, so each flow's
    window *average* stays close to the matrix entry while its peak runs
    well above it — exactly the regime where 95th-percentile and mean-rate
    billing diverge.
    """
    if interval_seconds <= 0:
        raise DataError("interval_seconds must be positive")
    if noise_cv < 0:
        raise DataError("noise_cv must be >= 0")
    profile = diurnal_profile(n_intervals, peak_to_trough=peak_to_trough)
    rng = np.random.default_rng(seed)
    base = np.outer(profile, flows.demands)
    if noise_cv > 0:
        sigma = math.sqrt(math.log(1.0 + noise_cv * noise_cv))
        noise = rng.lognormal(-0.5 * sigma * sigma, sigma, size=base.shape)
        base = base * noise
    return TrafficTimeSeries(
        flows=flows, interval_seconds=interval_seconds, rates_mbps=base
    )


def elephants_and_mice(
    n_flows: int,
    aggregate_mbps: float,
    elephant_fraction: float = 0.1,
    elephant_share: float = 0.8,
    distances_miles: Sequence[float] = (),
    seed: int = 0,
) -> FlowSet:
    """A two-population traffic matrix with explicit heavy hitters.

    Args:
        n_flows: Total number of flows.
        aggregate_mbps: Total traffic.
        elephant_fraction: Fraction of flows that are elephants.
        elephant_share: Fraction of traffic the elephants carry.
        distances_miles: Optional per-flow distances (defaults to a
            lognormal around 100 miles).
        seed: RNG seed.
    """
    if not 0.0 < elephant_fraction < 1.0:
        raise DataError("elephant_fraction must be in (0, 1)")
    if not 0.0 < elephant_share < 1.0:
        raise DataError("elephant_share must be in (0, 1)")
    if aggregate_mbps <= 0:
        raise DataError("aggregate_mbps must be positive")
    n_elephants = max(1, int(round(n_flows * elephant_fraction)))
    n_mice = n_flows - n_elephants
    if n_mice < 1:
        raise DataError("need at least one mouse flow; lower elephant_fraction")
    rng = np.random.default_rng(seed)

    def population(count: int, total: float) -> np.ndarray:
        raw = rng.lognormal(0.0, 0.4, count)
        return raw * (total / raw.sum())

    demands = np.concatenate(
        (
            population(n_elephants, aggregate_mbps * elephant_share),
            population(n_mice, aggregate_mbps * (1.0 - elephant_share)),
        )
    )
    if len(distances_miles) == 0:
        distances = rng.lognormal(math.log(100.0), 0.8, n_flows)
    else:
        distances = np.asarray(distances_miles, dtype=float)
        if distances.size != n_flows:
            raise DataError(
                f"got {distances.size} distances for {n_flows} flows"
            )
    # Both columns are freshly generated positive arrays; adopt them
    # zero-copy on the columnar fast path.
    return FlowSet.from_columns(demands, np.asarray(distances, dtype=float))
