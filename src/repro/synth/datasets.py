"""Synthetic stand-ins for the paper's three proprietary datasets (§4.1.1).

The paper drives its evaluation with 24-hour sampled NetFlow captures from
an EU transit ISP, a global CDN, and Internet2, summarized in Table 1:

=========== ========== =================== ============ ============== ==========
dataset     date       w-avg distance (mi) distance CV  aggregate Gbps demand CV
=========== ========== =================== ============ ============== ==========
EU ISP      11/12/09   54                  0.70         37             1.71
CDN         12/02/09   1988                0.59         96             2.28
Internet2   12/02/09   660                 0.54         4              4.53
=========== ========== =================== ============ ============== ==========

Those traces are proprietary, so :func:`load_dataset` generates seeded
synthetic flow sets whose *finite-sample* statistics match the Table 1 row
exactly (see :mod:`repro.synth.distributions` for the calibration).  The
pricing model consumes flows only through (demand, distance, labels), and
the paper's findings are expressed in terms of exactly these aggregate
statistics ("networks with higher CV of demand need more bundles", ...),
so matching them preserves the behaviour the evaluation studies.

For end-to-end realism — and to exercise the NetFlow/GeoIP/topology
substrate — :func:`repro.synth.trace.generate_network_trace` builds the
same datasets the long way: endpoint traffic over a PoP topology, sampled
NetFlow export, multi-router dedup, and the per-network distance
heuristics.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np

from repro.core.flow import FlowSet, FlowTable
from repro.errors import DataError
from repro.geo.regions import region_codes_by_distance
from repro.runtime.cache import cached
from repro.obs import METRICS
from repro.synth.distributions import (
    calibrate_positive,
    calibrate_total,
    gaussian_copula_pair,
    lognormal_sigma_for_cv,
)
from repro.topology.builders import (
    build_cdn_topology,
    build_eu_isp_topology,
    build_internet2_topology,
)
from repro.topology.network import Topology


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """Targets and generation knobs for one synthetic dataset.

    Attributes:
        name: Dataset key (``eu_isp`` / ``cdn`` / ``internet2``).
        capture_date: The paper's capture date (documentation only).
        w_avg_distance_miles: Table 1 demand-weighted mean flow distance.
        distance_cv: Table 1 demand-weighted distance CV.
        aggregate_gbps: Table 1 total traffic.
        demand_cv: Table 1 per-flow demand CV.
        demand_distance_rho: Gaussian-copula correlation between demand
            and distance (negative: local traffic is heavier).
        metro_miles / national_miles: Region-classification thresholds at
            this network's geographic scale.
        topology_builder: Builds the network's PoP graph (used by the
            trace pipeline and the accounting examples).
    """

    name: str
    capture_date: str
    w_avg_distance_miles: float
    distance_cv: float
    aggregate_gbps: float
    demand_cv: float
    demand_distance_rho: float
    metro_miles: float
    national_miles: float
    topology_builder: Callable[[], Topology]


DATASETS = {
    "eu_isp": DatasetSpec(
        name="eu_isp",
        capture_date="2009-11-12",
        w_avg_distance_miles=54.0,
        distance_cv=0.70,
        aggregate_gbps=37.0,
        demand_cv=1.71,
        demand_distance_rho=-0.3,
        metro_miles=10.0,
        national_miles=100.0,
        topology_builder=build_eu_isp_topology,
    ),
    "cdn": DatasetSpec(
        name="cdn",
        capture_date="2009-12-02",
        w_avg_distance_miles=1988.0,
        distance_cv=0.59,
        aggregate_gbps=96.0,
        demand_cv=2.28,
        demand_distance_rho=-0.2,
        metro_miles=50.0,
        national_miles=2800.0,
        topology_builder=build_cdn_topology,
    ),
    "internet2": DatasetSpec(
        name="internet2",
        capture_date="2009-12-02",
        w_avg_distance_miles=660.0,
        distance_cv=0.54,
        aggregate_gbps=4.0,
        demand_cv=4.53,
        demand_distance_rho=0.0,
        metro_miles=50.0,
        national_miles=2800.0,
        topology_builder=build_internet2_topology,
    ),
}

#: Public dataset keys in the paper's Table 1 order.
DATASET_NAMES = ("eu_isp", "cdn", "internet2")


def dataset_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by key."""
    try:
        return DATASETS[name]
    except KeyError as exc:
        raise DataError(
            f"unknown dataset {name!r}; expected one of {DATASET_NAMES}"
        ) from exc


#: Distance models :func:`load_dataset`/:func:`generate_flow_table` accept.
DISTANCE_MODELS = ("synthetic", "ecosystem")


def _dataset_cache_key(
    name: str, n_flows: int, seed: int, distance_model: str
) -> dict:
    """Cache identity; the default model keeps pre-existing digests."""
    key = {"name": name, "n_flows": n_flows, "seed": seed}
    if distance_model != "synthetic":
        key["distance_model"] = distance_model
    return key


def load_dataset(
    name: str,
    n_flows: int = 200,
    seed: int = 0,
    distance_model: str = "synthetic",
) -> FlowSet:
    """A seeded synthetic flow set matching the dataset's Table 1 row.

    Demands and distances are drawn from heavy-tailed lognormals coupled
    by the spec's copula correlation, then calibrated so the sample's
    aggregate traffic, demand CV, demand-weighted mean distance, and
    demand-weighted distance CV match Table 1 exactly.  Region labels are
    attached with the network's distance thresholds.

    Generation is memoized through the runtime cache: ``(name, n_flows,
    seed, distance_model)`` fully determines the flows, and
    :class:`FlowSet` is immutable, so every caller shares one instance
    per configuration.

    Args:
        name: ``eu_isp``, ``cdn``, or ``internet2``.
        n_flows: Number of destination aggregates (the paper's model also
            operates on aggregated flows for tractability).
        seed: RNG seed; the same (name, n_flows, seed) always yields the
            same flows.
        distance_model: ``"synthetic"`` calibrates lognormal distances to
            Table 1 (the default); ``"ecosystem"`` draws flow endpoints
            from a generated AS-level world and derives distances from
            its valley-free path lengths (see :mod:`repro.ecosystem`),
            rescaled to the dataset's demand-weighted mean.
    """
    dataset_spec(name)  # fail fast on unknown names, even on a cache hit
    _check_distance_model(distance_model)
    return cached(
        "dataset",
        _dataset_cache_key(name, n_flows, seed, distance_model),
        lambda: _generate_dataset(name, n_flows, seed, distance_model),
    )


#: Above this size, generated datasets are not written to the disk cache
#: (a 10^6-flow table is ~16 MB of columns and regenerates in well under a
#: second; caching it would just churn the cache directory).
_DISK_CACHE_MAX_FLOWS = 100_000


def generate_flow_table(
    name: str,
    size: int,
    seed: int = 0,
    distance_model: str = "synthetic",
) -> FlowTable:
    """A ``size``-scalable columnar dataset generator (million-flow path).

    Identical statistics machinery to :func:`load_dataset` — same copula,
    same Table 1 calibration, same region thresholds — but framed for
    scale: ``size`` is the flow count, results above
    ``_DISK_CACHE_MAX_FLOWS`` skip the disk cache, and the returned
    :class:`~repro.core.flow.FlowTable` is built column-at-a-time without
    ever materializing a :class:`~repro.core.flow.Flow` object, so
    ``generate_flow_table("eu_isp", size=1_000_000)`` is a handful of
    numpy allocations.

    ``distance_model="ecosystem"`` swaps the calibrated lognormal
    distances for valley-free path lengths over a generated AS-level
    substrate world (see :mod:`repro.ecosystem` and ``docs/scaling.md``).
    """
    dataset_spec(name)  # fail fast on unknown names, even on a cache hit
    _check_distance_model(distance_model)
    return cached(
        "dataset",
        _dataset_cache_key(name, size, seed, distance_model),
        lambda: _generate_dataset(name, size, seed, distance_model),
        disk=size <= _DISK_CACHE_MAX_FLOWS,
    )


def _check_distance_model(distance_model: str) -> None:
    if distance_model not in DISTANCE_MODELS:
        raise DataError(
            f"unknown distance model {distance_model!r}; expected one of "
            f"{DISTANCE_MODELS}"
        )


def _generate_dataset(
    name: str, n_flows: int, seed: int, distance_model: str = "synthetic"
) -> FlowSet:
    """The uncached generation path behind :func:`load_dataset`."""
    METRICS.incr("datasets_generated")
    spec = dataset_spec(name)
    # A finite sample of n positive values has CV strictly below
    # sqrt(n - 1) (all mass on one point), so matching the dataset's
    # demand CV needs enough flows.
    min_flows = max(4, int(spec.demand_cv**2) + 2)
    if n_flows < min_flows:
        raise DataError(
            f"{name} targets a demand CV of {spec.demand_cv}, which needs "
            f"at least {min_flows} flows (CV of n samples is < sqrt(n-1)); "
            f"got n_flows={n_flows}"
        )
    rng = np.random.default_rng(_dataset_seed(spec.name, n_flows, seed))

    if spec.demand_distance_rho != 0.0:
        u_demand, u_distance = gaussian_copula_pair(
            rng, n_flows, spec.demand_distance_rho
        )
    else:
        u_demand = rng.uniform(size=n_flows)
        u_distance = rng.uniform(size=n_flows)

    from scipy.stats import norm

    sigma_q = lognormal_sigma_for_cv(spec.demand_cv)
    sigma_d = lognormal_sigma_for_cv(spec.distance_cv)
    raw_demand = np.exp(sigma_q * norm.ppf(np.clip(u_demand, 1e-12, 1 - 1e-12)))
    raw_distance = np.exp(sigma_d * norm.ppf(np.clip(u_distance, 1e-12, 1 - 1e-12)))

    demands = calibrate_total(
        raw_demand,
        cv_target=spec.demand_cv,
        total_target=spec.aggregate_gbps * 1000.0,
    )
    if distance_model == "ecosystem":
        distances, region_codes = _ecosystem_distances(
            spec, demands, n_flows, seed
        )
    else:
        distances = _calibrated_distances(raw_distance, demands, spec)
        region_codes = region_codes_by_distance(
            distances,
            metro_miles=spec.metro_miles,
            national_miles=spec.national_miles,
        )
    # Columns come straight out of the calibration (finite, positive by
    # construction) and codes from the classifier, so adopt them zero-copy
    # without re-validating or materializing any Flow objects.
    return FlowSet.from_columns(
        demands, distances, region_codes=region_codes, validate=False
    )


#: Largest believable max/min flow-distance ratio for any real network.
_DISTANCE_RATIO_CAP = 1e5


def _calibrated_distances(
    raw_distance: np.ndarray, demands: np.ndarray, spec: DatasetSpec
) -> np.ndarray:
    """Distance calibration with a degenerate-sample fallback.

    Matching the *demand-weighted* distance statistics exactly requires
    enough effective sample size; with few flows and a very heavy-tailed
    demand (Internet2's CV of 4.5), one flow can carry nearly all the
    weight and the exact solution stretches distances to absurd values.
    When that happens, fall back to calibrating the unweighted CV and
    pinning only the weighted mean — the weighted CV then matches the
    target approximately instead of exactly.
    """
    distances = calibrate_positive(
        raw_distance,
        mean_target=spec.w_avg_distance_miles,
        cv_target=spec.distance_cv,
        weights=demands,
    )
    if distances.max() / distances.min() <= _DISTANCE_RATIO_CAP:
        return distances
    shaped = calibrate_positive(
        raw_distance,
        mean_target=spec.w_avg_distance_miles,
        cv_target=spec.distance_cv,
    )
    weighted = float(np.average(shaped, weights=demands))
    return shaped * (spec.w_avg_distance_miles / weighted)


#: The substrate world behind ``distance_model="ecosystem"``: big enough
#: for a real hierarchy, small enough that endpoint sampling dominates.
_SUBSTRATE_ASES = 60
_SUBSTRATE_IXPS = 3
_SUBSTRATE_SEED = 0


def _ecosystem_distances(
    spec: DatasetSpec, demands: np.ndarray, n_flows: int, seed: int
) -> "tuple[np.ndarray, np.ndarray]":
    """Distances/regions drawn from a generated AS-level world.

    Flow endpoints sample (src, dst) AS pairs of a fixed substrate
    ecosystem; each flow's distance is its valley-free path length times
    the endpoint region's hop miles, rescaled so the demand-weighted mean
    hits the dataset's Table 1 value.  The distance *distribution* (and
    its CV) is then emergent from the topology instead of calibrated.
    """
    from repro.core.flow import REGION_CODE
    from repro.ecosystem import EcosystemSpec, build_ecosystem
    from repro.ecosystem.traffic import HOP_MILES
    from repro.geo.regions import classify_by_endpoints

    eco = build_ecosystem(
        EcosystemSpec.from_counts(
            ases=_SUBSTRATE_ASES, ixps=_SUBSTRATE_IXPS, seed=_SUBSTRATE_SEED
        )
    )
    n = eco.n_ases
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=(seed, n_flows, 0x65636F))
    )
    src = rng.integers(0, n, size=n_flows)
    dst = rng.integers(0, n, size=n_flows)
    dst = np.where(dst == src, (dst + 1) % n, dst)
    lens = eco.tables.path_len[src, dst].astype(float)
    if lens.min() < 0:
        raise DataError("substrate ecosystem has unreachable AS pairs")
    region_matrix = np.array(
        [
            [
                REGION_CODE[classify_by_endpoints(a.home, b.home)]
                for b in eco.ases
            ]
            for a in eco.ases
        ],
        dtype=np.int32,
    )
    region_codes = region_matrix[src, dst]
    hop_miles = np.array(
        [HOP_MILES[label] for label in REGION_CODE], dtype=float
    )[region_codes]
    raw = np.maximum(lens, 1.0) * hop_miles
    weighted = float(np.average(raw, weights=demands))
    distances = raw * (spec.w_avg_distance_miles / weighted)
    return distances, region_codes


def table1_row(name: str, n_flows: int = 200, seed: int = 0) -> dict:
    """Paper-vs-synthetic Table 1 comparison for one dataset."""
    spec = dataset_spec(name)
    measured = load_dataset(name, n_flows=n_flows, seed=seed).table1_row()
    return {
        "dataset": spec.name,
        "date": spec.capture_date,
        "paper": {
            "w_avg_distance_miles": spec.w_avg_distance_miles,
            "distance_cv": spec.distance_cv,
            "aggregate_gbps": spec.aggregate_gbps,
            "demand_cv": spec.demand_cv,
        },
        "measured": measured,
    }


def _dataset_seed(name: str, n_flows: int, seed: int) -> np.random.SeedSequence:
    """Stable per-dataset seeding so datasets differ even at equal seeds."""
    name_code = sum(ord(ch) * (31**i) for i, ch in enumerate(name)) % (2**31)
    return np.random.SeedSequence(entropy=(seed, n_flows, name_code))
