"""End-to-end synthetic trace generation (the full §4.1.1 pipeline).

Where :func:`repro.synth.datasets.load_dataset` produces model-ready flow
sets directly, this module builds them *the long way*, exercising every
substrate the paper's methodology touches:

1. endpoint traffic is laid onto the network's PoP topology;
2. every core router on a flow's path exports **sampled** NetFlow records;
3. the collector deduplicates multi-router exports;
4. aggregation converts byte volumes to Mbps demands; and
5. the per-network distance heuristic is applied — entry/exit geographic
   distance (EU ISP), GeoIP endpoint distance (CDN), or summed link
   lengths along the routed path (Internet2).

The resulting flow sets are statistically similar (not identical) to the
paper's Table 1 rows; the figure-generation experiments use the calibrated
:func:`~repro.synth.datasets.load_dataset` path instead.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.flow import FlowSet
from repro.errors import DataError
from repro.geo.coords import WORLD_CITIES, City, city_distance_miles
from repro.geo.geoip import GeoIPDatabase
from repro.geo.regions import classify_by_distance, classify_by_endpoints
from repro.netflow.aggregation import aggregate_to_flowset
from repro.netflow.collector import FlowCollector
from repro.netflow.records import FlowKey, NetFlowRecord, PROTO_TCP
from repro.netflow.sampling import PacketSampler
from repro.synth.datasets import DatasetSpec, dataset_spec
from repro.synth.distributions import sample_lognormal
from repro.topology.network import Topology

#: Mean packet size used to convert bytes to packets (bytes).
MEAN_PACKET_BYTES = 800


@dataclasses.dataclass(frozen=True)
class GroundTruthFlow:
    """One true endpoint flow before measurement."""

    key: FlowKey
    src_city: City
    dst_city: City
    entry_pop: str
    exit_pop: str
    path: tuple
    demand_mbps: float


@dataclasses.dataclass
class NetworkTrace:
    """A generated trace plus everything needed to analyze it."""

    spec: DatasetSpec
    topology: Topology
    geoip: GeoIPDatabase
    ground_truth: "list[GroundTruthFlow]"
    records: "list[NetFlowRecord]"
    duration_seconds: float
    sampling_interval: int

    def collector(self) -> FlowCollector:
        """Ingest all exported records into a fresh collector."""
        collector = FlowCollector()
        collector.ingest_many(self.records)
        return collector

    def distance_for(self, key: FlowKey) -> float:
        """The paper's distance heuristic for this network."""
        flow = self._by_key(key)
        if self.spec.name == "eu_isp":
            return self.topology.geographic_distance(flow.entry_pop, flow.exit_pop)
        if self.spec.name == "cdn":
            src = self.geoip.lookup(key.src_addr)
            dst = self.geoip.lookup(key.dst_addr)
            if src is None or dst is None:
                raise DataError(f"GeoIP cannot locate endpoints of {key}")
            return city_distance_miles(src, dst)
        # Internet2: sum of traversed link lengths.
        return sum(
            link.length_miles for link in self.topology.path_links(flow.path)
        )

    def region_for(self, key: FlowKey) -> str:
        flow = self._by_key(key)
        if self.spec.name == "eu_isp":
            return classify_by_distance(
                self.distance_for(key),
                metro_miles=self.spec.metro_miles,
                national_miles=self.spec.national_miles,
            )
        return classify_by_endpoints(flow.src_city, flow.dst_city)

    def to_flowset(self, min_demand_mbps: float = 0.0) -> FlowSet:
        """Run collection, dedup, and aggregation on the exported records."""
        return aggregate_to_flowset(
            self.collector(),
            window_seconds=self.duration_seconds,
            distance_fn=self.distance_for,
            region_fn=self.region_for,
            min_demand_mbps=min_demand_mbps,
        )

    def _by_key(self, key: FlowKey) -> GroundTruthFlow:
        try:
            return self._key_index[key]
        except AttributeError:
            self._key_index = {flow.key: flow for flow in self.ground_truth}
            return self._key_index[key]
        except KeyError as exc:
            raise DataError(f"unknown flow key {key}") from exc


def generate_network_trace(
    name: str,
    n_flows: int = 150,
    seed: int = 0,
    duration_seconds: float = 3600.0,
    sampling_interval: int = 100,
) -> NetworkTrace:
    """Generate a full synthetic trace for one of the three networks.

    Args:
        name: ``eu_isp``, ``cdn``, or ``internet2``.
        n_flows: Number of distinct endpoint flows.
        seed: RNG seed (deterministic output).
        duration_seconds: Capture window (the paper uses 24 h; an hour is
            plenty for tests).
        sampling_interval: Routers export 1-in-N sampled NetFlow.
    """
    spec = dataset_spec(name)
    if n_flows < 1:
        raise DataError(f"n_flows must be >= 1, got {n_flows}")
    if duration_seconds <= 0:
        raise DataError("duration_seconds must be positive")
    rng = np.random.default_rng(np.random.SeedSequence(entropy=(seed, n_flows, 7)))
    topology = spec.topology_builder()

    endpoint_cities = {pop.city.key: pop.city for pop in topology.pops}
    if spec.name == "cdn":
        for city in WORLD_CITIES:
            endpoint_cities.setdefault(city.key, city)
    geoip = GeoIPDatabase(list(endpoint_cities.values()), blocks_per_city=2)

    demands = sample_lognormal(
        rng,
        n_flows,
        mean=spec.aggregate_gbps * 1000.0 / n_flows,
        cv=spec.demand_cv,
    )

    ground_truth = []
    used_keys = set()
    pop_codes = topology.pop_codes
    for i in range(n_flows):
        entry, exit_, src_city, dst_city = _pick_endpoints(spec, topology, rng)
        key = _fresh_key(geoip, src_city, dst_city, rng, used_keys)
        path = tuple(topology.shortest_path(entry, exit_))
        ground_truth.append(
            GroundTruthFlow(
                key=key,
                src_city=src_city,
                dst_city=dst_city,
                entry_pop=entry,
                exit_pop=exit_,
                path=path,
                demand_mbps=float(demands[i]),
            )
        )
    del pop_codes

    sampler = PacketSampler(sampling_interval, rng)
    records = []
    window_ms = int(duration_seconds * 1000)
    for flow in ground_truth:
        true_octets = int(flow.demand_mbps * 1e6 / 8.0 * duration_seconds)
        true_packets = max(1, true_octets // MEAN_PACKET_BYTES)
        start = int(rng.integers(0, max(1, window_ms // 10)))
        for hop, router in enumerate(flow.path):
            counters = sampler.sample(true_packets, true_octets)
            if counters.packets == 0:
                continue
            records.append(
                NetFlowRecord(
                    key=flow.key,
                    octets=counters.octets,
                    packets=counters.packets,
                    first_ms=start,
                    last_ms=window_ms - 1,
                    router=router,
                    input_if=hop,
                    output_if=hop + 1,
                    sampling_interval=counters.sampling_interval,
                )
            )
    return NetworkTrace(
        spec=spec,
        topology=topology,
        geoip=geoip,
        ground_truth=ground_truth,
        records=records,
        duration_seconds=duration_seconds,
        sampling_interval=sampling_interval,
    )


def _pick_endpoints(
    spec: DatasetSpec, topology: Topology, rng: np.random.Generator
) -> tuple:
    """Choose (entry PoP, exit PoP, src city, dst city) for one flow."""
    codes = topology.pop_codes
    if spec.name == "eu_isp":
        # National ISP: strong locality — nearby exits are far more likely,
        # and a slice of traffic stays inside the entry metro.
        entry = codes[int(rng.integers(len(codes)))]
        if rng.uniform() < 0.35:
            exit_ = entry
        else:
            weights = np.array(
                [
                    np.exp(-topology.geographic_distance(entry, code) / 150.0)
                    if code != entry
                    else 0.0
                    for code in codes
                ]
            )
            weights /= weights.sum()
            exit_ = codes[int(rng.choice(len(codes), p=weights))]
        return entry, exit_, topology.pop(entry).city, topology.pop(exit_).city
    if spec.name == "cdn":
        # CDN: source is a serving PoP, destination is any eyeball city;
        # traffic egresses at the PoP nearest the destination.
        entry = codes[int(rng.integers(len(codes)))]
        dst_city = WORLD_CITIES[int(rng.integers(len(WORLD_CITIES)))]
        exit_ = min(
            codes,
            key=lambda code: city_distance_miles(topology.pop(code).city, dst_city),
        )
        return entry, exit_, topology.pop(entry).city, dst_city
    # Internet2: uniform PoP pairs, no self-loops.
    entry, exit_ = rng.choice(len(codes), size=2, replace=False)
    entry, exit_ = codes[int(entry)], codes[int(exit_)]
    return entry, exit_, topology.pop(entry).city, topology.pop(exit_).city


def _fresh_key(
    geoip: GeoIPDatabase,
    src_city: City,
    dst_city: City,
    rng: np.random.Generator,
    used: set,
) -> FlowKey:
    """A 5-tuple with endpoints in the right cities, unique in the trace."""
    for _ in range(1000):
        key = FlowKey(
            src_addr=geoip.address_in(src_city, rng),
            dst_addr=geoip.address_in(dst_city, rng),
            src_port=int(rng.integers(1024, 65536)),
            dst_port=int(rng.choice([80, 443, 8080])),
            protocol=PROTO_TCP,
        )
        if key not in used:
            used.add(key)
            return key
    raise DataError("could not generate a unique flow key")
