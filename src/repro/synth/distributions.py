"""Statistical primitives for synthetic trace generation.

The paper characterizes each dataset by four aggregate statistics
(Table 1): demand-weighted mean flow distance, demand-weighted CV of
distance, aggregate traffic, and CV of per-flow demand.  The generators in
:mod:`repro.synth.datasets` draw heavy-tailed samples and then *calibrate*
them so the finite sample matches those targets exactly:

* a **power transform** ``x -> x**lam`` tunes the coefficient of variation
  (monotone in ``lam`` for positive data, solved with Brent's method);
* a **scale** then pins the mean (or the total) without disturbing the CV.

Both steps preserve positivity and the sample's rank order, so any
injected demand/distance correlation survives calibration.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy import optimize

from repro.errors import DataError


def lognormal_sigma_for_cv(cv: float) -> float:
    """The lognormal shape whose theoretical CV equals ``cv``."""
    if cv <= 0:
        raise DataError(f"cv must be positive, got {cv}")
    return math.sqrt(math.log(1.0 + cv * cv))


def sample_lognormal(
    rng: np.random.Generator, n: int, mean: float, cv: float
) -> np.ndarray:
    """Draw ``n`` lognormal values with the given theoretical mean and CV."""
    if n < 1:
        raise DataError(f"n must be >= 1, got {n}")
    if mean <= 0:
        raise DataError(f"mean must be positive, got {mean}")
    sigma = lognormal_sigma_for_cv(cv)
    mu = math.log(mean) - 0.5 * sigma * sigma
    return rng.lognormal(mean=mu, sigma=sigma, size=n)


def weighted_mean(values: np.ndarray, weights: Optional[np.ndarray] = None) -> float:
    values = np.asarray(values, dtype=float)
    if weights is None:
        return float(values.mean())
    return float(np.average(values, weights=np.asarray(weights, dtype=float)))


def weighted_cv(values: np.ndarray, weights: Optional[np.ndarray] = None) -> float:
    """Coefficient of variation, optionally demand-weighted."""
    values = np.asarray(values, dtype=float)
    mean = weighted_mean(values, weights)
    if mean == 0:
        return 0.0
    if weights is None:
        return float(values.std()) / mean
    var = float(np.average((values - mean) ** 2, weights=weights))
    return math.sqrt(var) / mean


def calibrate_positive(
    values: np.ndarray,
    mean_target: float,
    cv_target: float,
    weights: Optional[np.ndarray] = None,
    lam_bracket: "tuple[float, float]" = (1e-3, 20.0),
) -> np.ndarray:
    """Transform positive samples to hit a target (weighted) mean and CV.

    Applies ``x -> scale * (x / gmean)**lam`` with ``lam`` solved so the
    CV matches and ``scale`` so the mean matches.

    The transform has a supremum CV determined by the sample's shape: as
    ``lam`` grows, all mass concentrates on the largest value(s), so e.g.
    a sample with three copies of its maximum out of four points can never
    exceed CV ``sqrt(1/3)``.  Raises :class:`~repro.errors.DataError` when
    the requested CV is unreachable (including the degenerate all-equal
    sample with a positive CV target).
    """
    x = np.asarray(values, dtype=float)
    if np.any(x <= 0) or not np.all(np.isfinite(x)):
        raise DataError("values must be finite and positive")
    if mean_target <= 0 or cv_target < 0:
        raise DataError("targets must be positive (cv may be zero)")
    if x.size == 1 or np.allclose(x, x[0]):
        if cv_target > 1e-12:
            raise DataError("cannot reach a positive CV from a constant sample")
        return np.full_like(x, mean_target)

    # Work with log values shifted so the maximum is zero: the transformed
    # sample exp(lam * shifted) then lives in (0, 1], the CV computation
    # cannot overflow (CV is scale-invariant), and capping lam by the log
    # range keeps the smallest value a positive float.
    log_x = np.log(x)
    shifted = log_x - log_x.max()
    log_range = float(-shifted.min())
    lam_cap = 700.0 / log_range

    def transformed(lam: float) -> np.ndarray:
        return np.exp(lam * shifted)

    def cv_of(lam: float) -> float:
        return weighted_cv(transformed(lam), weights)

    if cv_target == 0:
        calibrated = np.ones_like(shifted)
    else:
        lo = min(lam_bracket[0], lam_cap / 2.0)
        hi = min(lam_bracket[1], lam_cap)
        for _ in range(60):
            if cv_of(lo) < cv_target:
                break
            lo /= 2.0
        while hi < lam_cap and cv_of(hi) <= cv_target:
            hi = min(lam_cap, hi * 2.0)
        if not cv_of(lo) < cv_target < cv_of(hi):
            raise DataError(
                f"CV target {cv_target} is unreachable for this sample shape "
                f"(achievable range is about [{cv_of(lo):.4g}, {cv_of(hi):.4g}]); "
                "provide a sample with more weight off its maximum"
            )
        lam = optimize.brentq(lambda L: cv_of(L) - cv_target, lo, hi, xtol=1e-12)
        calibrated = transformed(lam)
    scale = mean_target / weighted_mean(calibrated, weights)
    result = calibrated * scale
    if np.any(result <= 0) or not np.all(np.isfinite(result)):
        raise DataError(
            f"CV target {cv_target} drove the transform out of float range; "
            "it is effectively unreachable for this sample shape"
        )
    return result


def calibrate_total(
    values: np.ndarray,
    cv_target: float,
    total_target: float,
) -> np.ndarray:
    """Like :func:`calibrate_positive` but pins the *sum* instead of the mean."""
    if total_target <= 0:
        raise DataError(f"total must be positive, got {total_target}")
    x = np.asarray(values, dtype=float)
    calibrated = calibrate_positive(x, mean_target=1.0, cv_target=cv_target)
    return calibrated * (total_target / calibrated.sum())


def gaussian_copula_pair(
    rng: np.random.Generator, n: int, rho: float
) -> "tuple[np.ndarray, np.ndarray]":
    """Two uniform samples with Gaussian-copula correlation ``rho``.

    Used to couple flow demand and distance (e.g. local traffic tends to
    be heavier on a national ISP) while keeping the marginals intact.
    """
    if not -1.0 < rho < 1.0:
        raise DataError(f"rho must be in (-1, 1), got {rho}")
    z1 = rng.standard_normal(n)
    z2 = rho * z1 + math.sqrt(1.0 - rho * rho) * rng.standard_normal(n)
    from scipy.stats import norm

    return norm.cdf(z1), norm.cdf(z2)
