"""Synthetic-data substrate: calibrated datasets and full trace generation."""

from repro.synth.datasets import (
    DATASET_NAMES,
    DATASETS,
    DISTANCE_MODELS,
    DatasetSpec,
    dataset_spec,
    generate_flow_table,
    load_dataset,
    table1_row,
)
from repro.synth.distributions import (
    calibrate_positive,
    calibrate_total,
    gaussian_copula_pair,
    lognormal_sigma_for_cv,
    sample_lognormal,
    weighted_cv,
    weighted_mean,
)
from repro.synth.trace import (
    GroundTruthFlow,
    MEAN_PACKET_BYTES,
    NetworkTrace,
    generate_network_trace,
)
from repro.synth.workloads import (
    TrafficTimeSeries,
    diurnal_profile,
    elephants_and_mice,
    expand_to_time_series,
)

__all__ = [
    "DATASETS",
    "DATASET_NAMES",
    "DISTANCE_MODELS",
    "DatasetSpec",
    "GroundTruthFlow",
    "MEAN_PACKET_BYTES",
    "NetworkTrace",
    "TrafficTimeSeries",
    "calibrate_positive",
    "calibrate_total",
    "dataset_spec",
    "diurnal_profile",
    "elephants_and_mice",
    "expand_to_time_series",
    "gaussian_copula_pair",
    "generate_flow_table",
    "generate_network_trace",
    "load_dataset",
    "lognormal_sigma_for_cv",
    "sample_lognormal",
    "table1_row",
    "weighted_cv",
    "weighted_mean",
]
