"""Region classification of flows (paper §3.3, "function of destination region").

Two classifiers mirror the paper exactly:

* :func:`classify_by_endpoints` — GeoIP-style: same city is metro, same
  country is national, otherwise international (used for the CDN and
  Internet2 data, where endpoint identities are known).
* :func:`classify_by_distance` — threshold-style: under 10 miles is metro,
  under 100 miles is national, otherwise international (used for the EU
  ISP, where only entry/exit distances are known).
"""

from __future__ import annotations

from repro.core.flow import INTERNATIONAL, METRO, NATIONAL
from repro.errors import DataError
from repro.geo.coords import City

#: The paper's EU-ISP thresholds (miles).
DEFAULT_METRO_MILES = 10.0
DEFAULT_NATIONAL_MILES = 100.0


def classify_by_endpoints(src: City, dst: City) -> str:
    """Metro if same city, national if same country, else international."""
    if src.key == dst.key:
        return METRO
    if src.country == dst.country:
        return NATIONAL
    return INTERNATIONAL


def classify_by_distance(
    distance_miles: float,
    metro_miles: float = DEFAULT_METRO_MILES,
    national_miles: float = DEFAULT_NATIONAL_MILES,
) -> str:
    """The paper's EU-ISP distance thresholds."""
    if distance_miles < 0:
        raise DataError(f"distance must be non-negative, got {distance_miles}")
    if not 0 < metro_miles < national_miles:
        raise DataError(
            f"need 0 < metro_miles < national_miles, got {metro_miles}, {national_miles}"
        )
    if distance_miles < metro_miles:
        return METRO
    if distance_miles < national_miles:
        return NATIONAL
    return INTERNATIONAL
