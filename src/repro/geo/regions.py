"""Region classification of flows (paper §3.3, "function of destination region").

Two classifiers mirror the paper exactly:

* :func:`classify_by_endpoints` — GeoIP-style: same city is metro, same
  country is national, otherwise international (used for the CDN and
  Internet2 data, where endpoint identities are known).
* :func:`classify_by_distance` — threshold-style: under 10 miles is metro,
  under 100 miles is national, otherwise international (used for the EU
  ISP, where only entry/exit distances are known).

:func:`region_codes_by_distance` is the columnar form of the latter: one
``searchsorted`` over a whole distance column, emitting ``int32`` codes
into :data:`~repro.core.flow.VALID_REGIONS` for zero-copy
:meth:`FlowSet.from_columns <repro.core.flow.FlowSet.from_columns>`
construction.
"""

from __future__ import annotations

import numpy as np

from repro.core.flow import INTERNATIONAL, METRO, NATIONAL
from repro.errors import DataError
from repro.geo.coords import City

#: The paper's EU-ISP thresholds (miles).
DEFAULT_METRO_MILES = 10.0
DEFAULT_NATIONAL_MILES = 100.0


def classify_by_endpoints(src: City, dst: City) -> str:
    """Metro if same city, national if same country, else international."""
    if src.key == dst.key:
        return METRO
    if src.country == dst.country:
        return NATIONAL
    return INTERNATIONAL


def classify_by_distance(
    distance_miles: float,
    metro_miles: float = DEFAULT_METRO_MILES,
    national_miles: float = DEFAULT_NATIONAL_MILES,
) -> str:
    """The paper's EU-ISP distance thresholds."""
    if distance_miles < 0:
        raise DataError(f"distance must be non-negative, got {distance_miles}")
    if not 0 < metro_miles < national_miles:
        raise DataError(
            f"need 0 < metro_miles < national_miles, got {metro_miles}, {national_miles}"
        )
    if distance_miles < metro_miles:
        return METRO
    if distance_miles < national_miles:
        return NATIONAL
    return INTERNATIONAL


def region_codes_by_distance(
    distances_miles: np.ndarray,
    metro_miles: float = DEFAULT_METRO_MILES,
    national_miles: float = DEFAULT_NATIONAL_MILES,
) -> np.ndarray:
    """Vectorized :func:`classify_by_distance` emitting region *codes*.

    Returns an ``int32`` array indexing
    :data:`~repro.core.flow.VALID_REGIONS` (0 metro, 1 national,
    2 international) — one ``searchsorted`` for the whole column.
    """
    d = np.asarray(distances_miles, dtype=float)
    if d.size and float(d.min()) < 0:
        raise DataError(f"distance must be non-negative, got {float(d.min())}")
    if not 0 < metro_miles < national_miles:
        raise DataError(
            f"need 0 < metro_miles < national_miles, got {metro_miles}, {national_miles}"
        )
    return np.searchsorted(
        np.array([metro_miles, national_miles]), d, side="right"
    ).astype(np.int32)
