"""Geographic coordinates and great-circle distances.

Flow distances proxy for delivery cost throughout the paper, so the whole
pipeline rests on computing distances between points of presence and
between GeoIP-located endpoints.  A small world-city gazetteer provides
realistic coordinates for the synthetic topologies.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import DataError

#: Mean Earth radius in miles (IUGG).
EARTH_RADIUS_MILES = 3958.7613


@dataclasses.dataclass(frozen=True)
class GeoPoint:
    """A point on the Earth's surface (degrees)."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise DataError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise DataError(f"longitude out of range: {self.lon}")


@dataclasses.dataclass(frozen=True)
class City:
    """A gazetteer entry: a city with country and coordinates."""

    name: str
    country: str
    location: GeoPoint

    @property
    def key(self) -> str:
        """Stable identifier, e.g. ``"frankfurt-de"``."""
        return f"{self.name.lower().replace(' ', '_')}-{self.country.lower()}"


def haversine_miles(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points in miles."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(
        dlon / 2.0
    ) ** 2
    return 2.0 * EARTH_RADIUS_MILES * math.asin(math.sqrt(min(1.0, h)))


def city_distance_miles(a: City, b: City) -> float:
    """Great-circle distance between two gazetteer cities."""
    return haversine_miles(a.location, b.location)


def _c(name: str, country: str, lat: float, lon: float) -> City:
    return City(name=name, country=country, location=GeoPoint(lat=lat, lon=lon))


#: European cities used by the EU-ISP synthetic topology.
EUROPEAN_CITIES = (
    _c("Amsterdam", "NL", 52.37, 4.90),
    _c("Rotterdam", "NL", 51.92, 4.48),
    _c("The Hague", "NL", 52.08, 4.31),
    _c("Utrecht", "NL", 52.09, 5.12),
    _c("Eindhoven", "NL", 51.44, 5.47),
    _c("Brussels", "BE", 50.85, 4.35),
    _c("Antwerp", "BE", 51.22, 4.40),
    _c("Frankfurt", "DE", 50.11, 8.68),
    _c("Dusseldorf", "DE", 51.23, 6.78),
    _c("Hamburg", "DE", 53.55, 9.99),
    _c("Berlin", "DE", 52.52, 13.40),
    _c("Munich", "DE", 48.14, 11.58),
    _c("Paris", "FR", 48.86, 2.35),
    _c("London", "GB", 51.51, -0.13),
    _c("Manchester", "GB", 53.48, -2.24),
    _c("Zurich", "CH", 47.37, 8.54),
    _c("Geneva", "CH", 46.20, 6.14),
    _c("Vienna", "AT", 48.21, 16.37),
    _c("Milan", "IT", 45.46, 9.19),
    _c("Madrid", "ES", 40.42, -3.70),
    _c("Stockholm", "SE", 59.33, 18.07),
    _c("Copenhagen", "DK", 55.68, 12.57),
    _c("Warsaw", "PL", 52.23, 21.01),
    _c("Prague", "CZ", 50.08, 14.44),
)

#: North-American cities used by the Internet2-like research backbone
#: (the historical Abilene points of presence).
US_RESEARCH_CITIES = (
    _c("Seattle", "US", 47.61, -122.33),
    _c("Sunnyvale", "US", 37.37, -122.04),
    _c("Los Angeles", "US", 34.05, -118.24),
    _c("Salt Lake City", "US", 40.76, -111.89),
    _c("Denver", "US", 39.74, -104.99),
    _c("Kansas City", "US", 39.10, -94.58),
    _c("Houston", "US", 29.76, -95.37),
    _c("Indianapolis", "US", 39.77, -86.16),
    _c("Chicago", "US", 41.88, -87.63),
    _c("Atlanta", "US", 33.75, -84.39),
    _c("Washington", "US", 38.91, -77.04),
    _c("New York", "US", 40.71, -74.01),
)

#: World cities used by the global CDN topology.
WORLD_CITIES = (
    _c("New York", "US", 40.71, -74.01),
    _c("Ashburn", "US", 39.04, -77.49),
    _c("Miami", "US", 25.76, -80.19),
    _c("Chicago", "US", 41.88, -87.63),
    _c("Dallas", "US", 32.78, -96.80),
    _c("Seattle", "US", 47.61, -122.33),
    _c("San Jose", "US", 37.34, -121.89),
    _c("Los Angeles", "US", 34.05, -118.24),
    _c("Toronto", "CA", 43.65, -79.38),
    _c("Sao Paulo", "BR", -23.55, -46.63),
    _c("London", "GB", 51.51, -0.13),
    _c("Amsterdam", "NL", 52.37, 4.90),
    _c("Frankfurt", "DE", 50.11, 8.68),
    _c("Paris", "FR", 48.86, 2.35),
    _c("Madrid", "ES", 40.42, -3.70),
    _c("Milan", "IT", 45.46, 9.19),
    _c("Stockholm", "SE", 59.33, 18.07),
    _c("Moscow", "RU", 55.76, 37.62),
    _c("Johannesburg", "ZA", -26.20, 28.05),
    _c("Dubai", "AE", 25.20, 55.27),
    _c("Mumbai", "IN", 19.08, 72.88),
    _c("Singapore", "SG", 1.35, 103.82),
    _c("Hong Kong", "HK", 22.32, 114.17),
    _c("Tokyo", "JP", 35.68, 139.69),
    _c("Seoul", "KR", 37.57, 126.98),
    _c("Sydney", "AU", -33.87, 151.21),
)


def city_by_key(key: str) -> City:
    """Look up any gazetteer city by its :attr:`City.key`."""
    for table in (EUROPEAN_CITIES, US_RESEARCH_CITIES, WORLD_CITIES):
        for city in table:
            if city.key == key:
                return city
    raise DataError(f"unknown city key {key!r}")
