"""A synthetic GeoIP database (substitute for MaxMind GeoLite, §4.1.1).

The paper locates CDN flow endpoints with a commercial GeoIP database.  We
cannot redistribute one, so this module provides the same *interface* —
longest-prefix IP-to-location lookup — over a synthetic table that assigns
deterministic /16 blocks to gazetteer cities.  Any IPv4 address generated
by :meth:`GeoIPDatabase.address_in` resolves back to its city, which is all
the trace pipeline needs.
"""

from __future__ import annotations

import dataclasses
import ipaddress
from collections.abc import Iterable, Sequence
from typing import Optional

import numpy as np

from repro.errors import DataError
from repro.geo.coords import City


@dataclasses.dataclass(frozen=True)
class GeoIPEntry:
    """One prefix-to-city mapping."""

    network: ipaddress.IPv4Network
    city: City


class GeoIPDatabase:
    """Longest-prefix-match IP geolocation over synthetic allocations.

    Args:
        cities: The cities to allocate address space for.
        blocks_per_city: Number of /16 blocks each city receives.  More
            blocks let the trace generator emit more distinct endpoints.

    The allocation walks ``10.0.0.0/8``-style unique-local space upward
    through ``1.0.0.0/8`` ... so that every block is unambiguous.  The
    mapping is deterministic given the city order.
    """

    def __init__(self, cities: Sequence[City], blocks_per_city: int = 2) -> None:
        if not cities:
            raise DataError("GeoIPDatabase needs at least one city")
        if blocks_per_city < 1:
            raise DataError("blocks_per_city must be >= 1")
        if len(cities) * blocks_per_city > 250 * 256:
            raise DataError("allocation exceeds the synthetic address plan")
        self._entries: list = []
        self._by_city: dict = {}
        block = 0
        for city in cities:
            networks = []
            for _ in range(blocks_per_city):
                first_octet = 1 + block // 256
                second_octet = block % 256
                network = ipaddress.IPv4Network(f"{first_octet}.{second_octet}.0.0/16")
                self._entries.append(GeoIPEntry(network=network, city=city))
                networks.append(network)
                block += 1
            self._by_city[city.key] = networks
        # Sorted by network address for bisect-style matching.
        self._entries.sort(key=lambda e: int(e.network.network_address))
        self._starts = [int(e.network.network_address) for e in self._entries]

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> "list[GeoIPEntry]":
        return list(self._entries)

    def lookup(self, address: str) -> Optional[City]:
        """Locate an IPv4 address, or ``None`` when no prefix covers it."""
        try:
            addr = int(ipaddress.IPv4Address(address))
        except (ipaddress.AddressValueError, ValueError) as exc:
            raise DataError(f"invalid IPv4 address {address!r}") from exc
        # Find the last entry whose network address is <= addr.
        import bisect

        i = bisect.bisect_right(self._starts, addr) - 1
        if i < 0:
            return None
        entry = self._entries[i]
        if addr <= int(entry.network.broadcast_address):
            return entry.city
        return None

    def networks_for(self, city: City) -> "list[ipaddress.IPv4Network]":
        """All blocks allocated to a city."""
        try:
            return list(self._by_city[city.key])
        except KeyError as exc:
            raise DataError(f"city {city.key!r} not in this database") from exc

    def address_in(self, city: City, rng: np.random.Generator) -> str:
        """Draw a random address from one of the city's blocks."""
        networks = self.networks_for(city)
        network = networks[int(rng.integers(len(networks)))]
        host = int(rng.integers(1, network.num_addresses - 1))
        return str(network.network_address + host)

    def cities(self) -> "list[City]":
        """All cities with allocations, in allocation order."""
        seen = set()
        ordered = []
        for entry in self._entries:
            if entry.city.key not in seen:
                seen.add(entry.city.key)
                ordered.append(entry.city)
        return ordered


def database_for(cities: Iterable[City], blocks_per_city: int = 2) -> GeoIPDatabase:
    """Convenience constructor mirroring MaxMind-style usage."""
    return GeoIPDatabase(list(cities), blocks_per_city=blocks_per_city)
