"""Geographic substrate: coordinates, gazetteer, synthetic GeoIP, regions."""

from repro.geo.coords import (
    City,
    EARTH_RADIUS_MILES,
    EUROPEAN_CITIES,
    GeoPoint,
    US_RESEARCH_CITIES,
    WORLD_CITIES,
    city_by_key,
    city_distance_miles,
    haversine_miles,
)
from repro.geo.geoip import GeoIPDatabase, GeoIPEntry, database_for
from repro.geo.regions import (
    DEFAULT_METRO_MILES,
    DEFAULT_NATIONAL_MILES,
    classify_by_distance,
    classify_by_endpoints,
    region_codes_by_distance,
)

__all__ = [
    "City",
    "DEFAULT_METRO_MILES",
    "DEFAULT_NATIONAL_MILES",
    "EARTH_RADIUS_MILES",
    "EUROPEAN_CITIES",
    "GeoIPDatabase",
    "GeoIPEntry",
    "GeoPoint",
    "US_RESEARCH_CITIES",
    "WORLD_CITIES",
    "city_by_key",
    "city_distance_miles",
    "classify_by_distance",
    "classify_by_endpoints",
    "database_for",
    "haversine_miles",
    "region_codes_by_distance",
]
