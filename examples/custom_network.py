#!/usr/bin/env python3
"""Bring your own network: tier analysis on a custom topology and matrix.

Shows the full public API surface for a user with their *own* data: build
a topology, lay out a traffic matrix by hand, and compare demand models
and the sensitivity to the price-elasticity assumption — the §4.3
robustness question, on your data instead of the paper's.

Run:  python examples/custom_network.py
"""

from repro import (
    CEDDemand,
    FlowSet,
    LogitDemand,
    Market,
    OptimalBundling,
    RegionalCost,
)
from repro.geo.coords import City, GeoPoint
from repro.topology import Topology


def build_topology() -> Topology:
    """A small national ISP: four cities, a chain plus one shortcut."""
    cities = {
        "OSL": City("Oslo", "NO", GeoPoint(59.91, 10.75)),
        "BGO": City("Bergen", "NO", GeoPoint(60.39, 5.32)),
        "TRD": City("Trondheim", "NO", GeoPoint(63.43, 10.40)),
        "STO": City("Stockholm", "SE", GeoPoint(59.33, 18.07)),
    }
    topo = Topology("nordic-isp")
    for code, city in cities.items():
        topo.add_pop(code, city)
    for a, b in [("OSL", "BGO"), ("OSL", "TRD"), ("BGO", "TRD"), ("OSL", "STO")]:
        topo.add_link(a, b)
    return topo


def build_traffic(topo: Topology) -> FlowSet:
    """A hand-written traffic matrix over the topology's routed paths."""
    matrix = [
        # (entry, exit, Mbps)
        ("OSL", "OSL", 4000.0),   # metro traffic
        ("OSL", "BGO", 2500.0),
        ("OSL", "TRD", 1500.0),
        ("BGO", "TRD", 600.0),
        ("OSL", "STO", 900.0),    # international
        ("BGO", "STO", 250.0),
        ("TRD", "STO", 150.0),
    ]
    demands, distances, regions = [], [], []
    for entry, exit_, mbps in matrix:
        demands.append(mbps)
        distances.append(
            0.0 if entry == exit_ else topo.routed_distance(entry, exit_)
        )
        same_country = topo.pop(entry).city.country == topo.pop(exit_).city.country
        if entry == exit_:
            regions.append("metro")
        elif same_country:
            regions.append("national")
        else:
            regions.append("international")
    return FlowSet(demands, distances, regions=regions)


def main() -> None:
    topo = build_topology()
    flows = build_traffic(topo)
    print(f"{topo!r}\n{flows!r}\n")

    # Regional cost model: metro/national/international at 1 : 2^t : 3^t.
    cost_model = RegionalCost(theta=1.1)

    print("capture with 1-4 tiers (optimal bundling):")
    header = "model".ljust(24) + "".join(f"{b:>8}" for b in (1, 2, 3, 4))
    print(header)
    print("-" * len(header))
    for label, model in (
        ("CED alpha=1.1 (sticky)", CEDDemand(alpha=1.1)),
        ("CED alpha=3.0 (elastic)", CEDDemand(alpha=3.0)),
        ("logit s0=0.2", LogitDemand(alpha=1.1, s0=0.2)),
        ("logit s0=0.5", LogitDemand(alpha=1.1, s0=0.5)),
    ):
        market = Market(flows, model, cost_model, blended_rate=14.0)
        captures = [
            market.tiered_outcome(OptimalBundling(), b).profit_capture
            for b in (1, 2, 3, 4)
        ]
        print(label.ljust(24) + "".join(f"{c:8.3f}" for c in captures))

    market = Market(flows, CEDDemand(1.1), cost_model, blended_rate=14.0)
    outcome = market.tiered_outcome(OptimalBundling(), 3)
    print("\nthe 3-tier design under CED (one tier per region class):")
    for tier in outcome.tiers:
        print(
            f"  ${tier.price:6.2f}/Mbps  {tier.n_flows} flows  "
            f"{tier.demand_mbps:8.1f} Mbps"
        )
    print(
        "\nWith three region-cost classes, three tiers recover nearly all"
        " achievable profit - whatever the demand model: the structural"
        " finding survives the modeling assumptions (paper §4.3)."
    )


if __name__ == "__main__":
    main()
