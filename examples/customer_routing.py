#!/usr/bin/env python3
"""The customer's side of tier tags: smarter exits than hot-potato (§5.1).

The paper's deployment story ends at the customer's routers: once the
upstream tags routes with their pricing tier, "the customer might choose
to use its own backbone to get closer to destination instead of
performing the default hot-potato routing".  This example quantifies that
choice for a CDN-like customer with a three-PoP US backbone buying from a
tiered provider whose prices fall westward.

Run:  python examples/customer_routing.py
"""

import numpy as np

from repro.geo.coords import US_RESEARCH_CITIES
from repro.topology import ExitSelector, FlowSpec, Topology


def build_backbone() -> Topology:
    def city(name):
        return next(c for c in US_RESEARCH_CITIES if c.name == name)

    topo = Topology("cdn-backbone")
    for code, name in (
        ("NYC", "New York"),
        ("CHI", "Chicago"),
        ("DEN", "Denver"),
        ("HOU", "Houston"),
    ):
        topo.add_pop(code, city(name))
    for a, b in (("NYC", "CHI"), ("CHI", "DEN"), ("CHI", "HOU"), ("DEN", "HOU")):
        topo.add_link(a, b)
    return topo


#: The provider's tier price at each interconnect, $/Mbps/month — the
#: westward exits reach the provider's cheap regional tiers.
TIER_PRICE = {"NYC": 9.0, "CHI": 6.5, "DEN": 4.0, "HOU": 4.5}


def build_traffic(rng) -> list:
    flows = []
    for source in ("NYC", "NYC", "NYC", "CHI", "HOU"):
        for _ in range(8):
            flows.append(
                FlowSpec(
                    source_pop=source,
                    destination=f"dst-{len(flows)}",
                    demand_mbps=float(rng.lognormal(3.0, 1.0)),
                )
            )
    return flows


def main() -> None:
    topo = build_backbone()
    flows = build_traffic(np.random.default_rng(5))
    total = sum(f.demand_mbps for f in flows)
    print(f"{topo!r}; {len(flows)} flows, {total:,.0f} Mbps\n")

    print(
        f"  {'backbone $/mile/Mbps':>21} {'hot-potato $':>13}"
        f" {'tier-aware $':>13} {'savings':>9} {'moved exits':>12}"
    )
    for rate in (0.0005, 0.002, 0.005, 0.02, 0.1):
        selector = ExitSelector(
            topo,
            handoff_pops=list(TIER_PRICE),
            tier_price=lambda exit_pop, dst: TIER_PRICE[exit_pop],
            backbone_cost_per_mile_mbps=rate,
        )
        report = selector.savings(flows)
        moved = sum(
            1
            for hot, aware in zip(
                report["hot_potato"].decisions, report["tier_aware"].decisions
            )
            if hot.exit_pop != aware.exit_pop
        )
        print(
            f"  {rate:>21.4f} {report['hot_potato_cost']:>13,.0f}"
            f" {report['tier_aware_cost']:>13,.0f}"
            f" {report['savings_fraction']:>9.1%} {moved:>12}"
        )

    print(
        "\n  Cheap backbone miles: tier tags pull traffic to the $4 exits"
        " and cut the transit bill by double digits. As backbone cost"
        " rises, tier-aware routing converges back to hot-potato - the"
        " tags cost nothing when they are not worth acting on."
    )


if __name__ == "__main__":
    main()
