#!/usr/bin/env python3
"""When does blended-rate pricing push customers into wasteful bypass?

Walks the paper's §2.2 story end to end:

1. the Figure 1 worked example — a two-destination market where tiering
   raises both ISP profit and customer surplus; and
2. the Figure 2 bypass model — a CDN deciding whether to build a private
   link to a nearby IXP instead of paying the blended rate, including the
   market-failure window where the bypass wastes money that tiered
   pricing would have saved.

Run:  python examples/peering_bypass_analysis.py
"""

import numpy as np

from repro.peering import BypassTable, figure1_example, failure_window


def show_worked_example() -> None:
    example = figure1_example()
    print("Part 1 - the blended-rate market failure (paper Fig. 1)")
    print(
        f"  blended rate ${example.blended.prices[0]:.2f}/Mbps:"
        f" ISP profit ${example.blended.profit:.2f},"
        f" customer surplus ${example.blended.consumer_surplus:.2f}"
    )
    print(
        f"  two tiers (${example.tiered.prices[0]:.2f} /"
        f" ${example.tiered.prices[1]:.2f}):"
        f" ISP profit ${example.tiered.profit:.2f},"
        f" customer surplus ${example.tiered.consumer_surplus:.2f}"
    )
    print(
        f"  -> both sides gain: +${example.profit_gain:.2f} profit,"
        f" +${example.surplus_gain:.2f} surplus,"
        f" +${example.welfare_gain:.2f} welfare\n"
    )


def show_bypass_sweep() -> None:
    blended_rate = 12.0      # $/Mbps blended transit
    isp_unit_cost = 3.0      # ISP's true cost for the NYC->Boston flows
    margin = 0.3             # ISP margin it would keep under tiering
    overhead = 0.4           # accounting overhead of a tiered contract

    print("Part 2 - the direct-peering decision (paper Fig. 2)")
    lo, hi = failure_window(blended_rate, isp_unit_cost, margin, overhead)
    print(
        f"  blended rate R = ${blended_rate:.2f};"
        f" tiered price would be ${lo:.2f}"
    )
    print(f"  market-failure window: private-link cost in (${lo:.2f}, ${hi:.2f})\n")

    print(f"  {'link cost':>10}  {'decision':<18} {'waste $/Mbps':>12}")
    table = BypassTable.evaluate(
        blended_rate,
        isp_unit_costs=isp_unit_cost,
        direct_unit_costs=np.linspace(1.0, 16.0, 16),
        margin=margin,
        accounting_overhead=overhead,
    )
    for point in table.points():
        print(
            f"  {point.direct_unit_cost:>10.2f}  {point.outcome:<18}"
            f" {point.efficiency_loss_per_mbps:>12.2f}"
        )
    print(
        "\n  In the failure window the customer builds a link that costs"
        " society more than the ISP's tiered price — the revenue pressure"
        " that pushes ISPs toward tiered pricing."
    )


def main() -> None:
    show_worked_example()
    show_bypass_sweep()


if __name__ == "__main__":
    main()
