#!/usr/bin/env python3
"""Pricing granularity as a competitive strategy.

The paper analyzes one profit-maximizing ISP; its motivation section,
though, is all about competitive pressure — customers defecting to
rivals or building their own links. This example makes the competition
explicit: two ISPs with identical costs sell the same destinations over
logit demand, and each chooses a pricing *granularity* — a blended rate,
three profit-weighted tiers, or per-flow prices. Best-response dynamics
find the Bertrand-Nash equilibrium of every combination.

Also shown: the other tiering axis from the paper's §2 taxonomy — commit
volume discounts — on a heterogeneous customer population.

Run:  python examples/competition_study.py
"""

import numpy as np

from repro import (
    CommitMarket,
    Firm,
    LinearDistanceCost,
    LogitCompetition,
    LogitDemand,
    Market,
    ProfitWeightedBundling,
    load_dataset,
)

ALPHA = 1.1


def granularity_game() -> None:
    flows = load_dataset("eu_isp", n_flows=60, seed=7)
    market = Market(
        flows, LogitDemand(ALPHA, s0=0.2), LinearDistanceCost(0.2), 20.0
    )
    tiers = ProfitWeightedBundling().bundle(market.bundling_inputs(), 3)
    postures = {
        "blended": [np.arange(market.n_flows)],
        "3-tier": tiers,
        "per-flow": None,
    }

    print("Part 1 - the granularity game (A's equilibrium profit per consumer)\n")
    names = list(postures)
    print("  " + "A \\ B".ljust(10) + "".join(n.rjust(11) for n in names))
    for name_a in names:
        row = "  " + name_a.ljust(10)
        for name_b in names:
            duopoly = LogitCompetition(
                market.valuations,
                firms=[
                    Firm("A", market.costs, bundles=postures[name_a]),
                    Firm("B", market.costs.copy(), bundles=postures[name_b]),
                ],
                alpha=ALPHA,
            )
            eq = duopoly.equilibrium()
            row += f"{eq.profit('A'):>11.4f}"
        print(row)
    print(
        "\n  Reading guide: each row is A's posture, each column B's."
        " Refining your pricing is profitable whatever the rival does"
        " (rows improve downward), and the biggest win is refining"
        " against a blended incumbent - the paper's competitive-pressure"
        " story, played out as an explicit game."
    )


def commitment_menu() -> None:
    rng = np.random.default_rng(3)
    market = CommitMarket(alpha=2.0, unit_cost=1.0)
    valuations = rng.lognormal(mean=1.5, sigma=0.9, size=80)

    blended = market.best_single_price(valuations)
    blended_profit = market.profit(valuations, [blended])
    usages = (valuations / blended.price_per_mbps) ** 2
    commits = [0.0, float(np.quantile(usages, 0.6)), float(np.quantile(usages, 0.9))]
    menu = market.optimize_menu_prices(valuations, commits)

    print("\nPart 2 - commit volume discounts (the other §2 tier axis)\n")
    print(
        f"  blended rate ${blended.price_per_mbps:.2f}/Mbps ->"
        f" profit ${blended_profit:,.0f}"
    )
    print("  optimized commit menu:")
    for contract in menu:
        print(
            f"    commit {contract.commit_mbps:8.1f} Mbps at"
            f" ${contract.price_per_mbps:.3f}/Mbps"
        )
    menu_profit = market.profit(valuations, menu)
    print(
        f"  menu profit ${menu_profit:,.0f}"
        f" ({menu_profit / blended_profit - 1:+.1%} vs blended)"
    )
    choices = market.simulate(valuations, menu)
    by_contract: dict = {}
    for choice in choices:
        by_contract[choice.contract_index] = (
            by_contract.get(choice.contract_index, 0) + 1
        )
    print(f"  self-selection: {dict(sorted(by_contract.items(), key=str))}")


def main() -> None:
    granularity_game()
    commitment_menu()


if __name__ == "__main__":
    main()
