#!/usr/bin/env python3
"""Beyond profit: welfare effects of tiering, and what billing style costs.

Two follow-up questions the core reproduction raises:

1. **Who gains from tiering?**  The paper's Figure 1 shows on two flows
   that tiered pricing can raise ISP profit and customer surplus at once.
   Here we ask the same question on a full calibrated market: is moving
   from a blended rate to 2..5 tiers a Pareto improvement?

2. **How much does the rating method matter?**  Transit is billed at the
   95th percentile of 5-minute samples, not the mean.  Expanding the
   matrix into a diurnal day of traffic shows the premium customers pay
   for their peaks — independent of how the tiers are structured.

Run:  python examples/welfare_and_billing.py
"""

from repro import CEDDemand, LinearDistanceCost, Market, OptimalBundling, load_dataset
from repro.core.welfare import render_welfare_table, welfare_curve
from repro.synth.workloads import expand_to_time_series


def welfare_study() -> None:
    flows = load_dataset("eu_isp", n_flows=120, seed=7)
    market = Market(
        flows, CEDDemand(alpha=1.1), LinearDistanceCost(theta=0.2), blended_rate=20.0
    )
    print("Part 1 - welfare decomposition, EU ISP, optimal bundling\n")
    curve = welfare_curve(market, OptimalBundling(), bundle_counts=(1, 2, 3, 4, 5))
    print(render_welfare_table(curve))
    pareto = [c for c in curve if c.pareto_improvement]
    print(
        f"\n  {len(pareto)} of {len(curve)} tier counts are Pareto"
        " improvements over the blended rate - the Figure 1 phenomenon"
        " holds on the full market, not just the two-flow example."
    )


def billing_study() -> None:
    flows = load_dataset("eu_isp", n_flows=60, seed=7)
    print("\nPart 2 - 95th-percentile vs mean-rate billing\n")
    print(f"  {'peak/trough':>12} {'mean Mbps':>12} {'p95 Mbps':>12} {'premium':>9}")
    for peak in (1.5, 2.0, 3.0, 5.0):
        series = expand_to_time_series(
            flows, n_intervals=288, peak_to_trough=peak, noise_cv=0.1, seed=7
        )
        mean_total = float(series.rates_mbps.mean(axis=0).sum())
        p95_total = sum(
            series.percentile_rate(j, 95.0) for j in range(len(flows))
        )
        print(
            f"  {peak:>12.1f} {mean_total:>12.0f} {p95_total:>12.0f}"
            f" {p95_total / mean_total:>9.2f}"
        )
    print(
        "\n  The burstier the traffic, the more the percentile convention"
        " bills above the mean - a pricing lever orthogonal to tiering."
    )


def main() -> None:
    welfare_study()
    billing_study()


if __name__ == "__main__":
    main()
