#!/usr/bin/env python3
"""Operating tiered pricing: from measured NetFlow to a tiered invoice.

The paper's §5 argues tiered pricing needs no new protocols.  This
example runs the whole operational loop on a synthetic EU-ISP trace:

1. generate sampled NetFlow from core routers and aggregate it (§4.1.1);
2. calibrate the market and design 3 tiers with profit-weighted
   bundling (§4);
3. tag per-destination routes with BGP tier communities (§5.1);
4. bill the same traffic twice — link-based (SNMP counters per tier
   link) and flow-based (NetFlow joined with the RIB) — and check the
   two §5.2 accounting schemes agree.

Run:  python examples/accounting_simulation.py
"""

import numpy as np

from repro import CEDDemand, LinearDistanceCost, Market, ProfitWeightedBundling
from repro.accounting import (
    FlowBasedAccounting,
    LinkBasedAccounting,
    RoutingTable,
    make_route,
    tag_routes_with_tiers,
)
from repro.synth import generate_network_trace

PROVIDER_ASN = 64500


def main() -> None:
    trace = generate_network_trace("eu_isp", n_flows=90, seed=13)
    flows = trace.to_flowset()
    print(f"measured {flows!r} from {len(trace.records)} NetFlow records")

    market = Market(
        flows, CEDDemand(alpha=1.1), LinearDistanceCost(theta=0.2), blended_rate=20.0
    )
    outcome = market.tiered_outcome(ProfitWeightedBundling(), 3)
    print(
        f"designed {len(outcome.bundles)} tiers, profit capture "
        f"{outcome.profit_capture:.1%}"
    )

    # §5.1: tag routes with tier communities.
    tier_of_dst = {}
    rates = {}
    for tier_index, members in enumerate(outcome.bundles, start=1):
        rates[tier_index] = float(outcome.prices[members[0]])
        for i in members:
            tier_of_dst[flows.dsts[int(i)]] = tier_index
    routes = [make_route(f"{dst}/32", next_hop="core") for dst in tier_of_dst]
    rib = RoutingTable()
    rib.insert_many(
        tag_routes_with_tiers(
            routes,
            lambda r: tier_of_dst[str(r.prefix.network_address)],
            PROVIDER_ASN,
        )
    )
    print(f"tagged {len(rib)} routes with tier communities")
    for tier_index in sorted(rates):
        print(f"  tier {tier_index}: ${rates[tier_index]:.2f}/Mbps")

    # §5.2a: link-based accounting with 5-minute SNMP polls.
    link_acct = LinkBasedAccounting(
        tiers=sorted(rates), rib=rib, provider_asn=PROVIDER_ASN
    )
    window = trace.duration_seconds
    poll_interval = 300.0
    volumes = {}
    for record in trace.records:
        if record.key.dst_addr in tier_of_dst:
            volumes.setdefault(record.key, 0)
            volumes[record.key] = max(volumes[record.key], record.estimated_octets)
    n_polls = int(window // poll_interval)
    link_acct.poll(0.0)
    for poll in range(1, n_polls + 1):
        for key, octets in volumes.items():
            link_acct.send(key.dst_addr, octets // n_polls)
        link_acct.poll(poll * poll_interval)
    link_invoice = link_acct.invoice("AS65001", rates, percentile=95.0)

    # §5.2b: flow-based accounting straight from the NetFlow feed.
    flow_acct = FlowBasedAccounting(
        rib=rib, window_seconds=window, provider_asn=PROVIDER_ASN
    )
    flow_acct.ingest_many(
        r for r in trace.records if r.key.dst_addr in tier_of_dst
    )
    flow_invoice = flow_acct.invoice("AS65001", rates)

    print("\n--- link-based (SNMP, 95th percentile) ---")
    print(link_invoice.render())
    print("\n--- flow-based (NetFlow + RIB join, mean rate) ---")
    print(flow_invoice.render())

    gap = abs(link_invoice.total - flow_invoice.total) / flow_invoice.total
    print(f"\nschemes agree within {gap:.1%} on steady traffic")
    assert gap < 0.1, "accounting schemes diverged"

    billed_demand = sum(
        item.billable_mbps for item in flow_invoice.line_items
    )
    print(
        f"billable demand {billed_demand:,.0f} Mbps vs measured "
        f"{np.sum(flows.demands):,.0f} Mbps"
    )


if __name__ == "__main__":
    main()
