#!/usr/bin/env python3
"""Tier-design study across networks, demand models, and cost models.

Reproduces the texture of the paper's §4 evaluation interactively: for
each of the three networks (EU ISP, CDN, Internet2), under both demand
families and all four cost models, how many tiers does profit-weighted
bundling need to capture 90% of the achievable profit?

Run:  python examples/tier_design_study.py
"""

from repro import (
    CEDDemand,
    ClassAwareBundling,
    LogitDemand,
    Market,
    ProfitWeightedBundling,
    load_dataset,
)
from repro.core.cost import (
    ConcaveDistanceCost,
    DestinationTypeCost,
    LinearDistanceCost,
    RegionalCost,
)

NETWORKS = ("eu_isp", "cdn", "internet2")
COST_MODELS = (
    LinearDistanceCost(theta=0.2),
    ConcaveDistanceCost(theta=0.2),
    RegionalCost(theta=1.1),
    DestinationTypeCost(theta=0.1),
)
TARGET_CAPTURE = 0.9
MAX_TIERS = 12


def tiers_needed(market: Market) -> int:
    """Smallest tier count reaching the capture target (or MAX_TIERS)."""
    strategy = ProfitWeightedBundling()
    if market.classes is not None:
        strategy = ClassAwareBundling(strategy)
    for n_bundles in range(1, MAX_TIERS + 1):
        outcome = market.tiered_outcome(strategy, n_bundles)
        if outcome.profit_capture >= TARGET_CAPTURE:
            return n_bundles
    return MAX_TIERS


def main() -> None:
    print(
        f"Tiers needed for {TARGET_CAPTURE:.0%} profit capture "
        "(profit-weighted bundling)\n"
    )
    header = (
        "network".ljust(11)
        + "demand".ljust(8)
        + "".join(cm.name.rjust(18) for cm in COST_MODELS)
    )
    print(header)
    print("-" * len(header))
    for network in NETWORKS:
        flows = load_dataset(network, n_flows=120, seed=7)
        for family, model in (
            ("ced", CEDDemand(alpha=1.1)),
            ("logit", LogitDemand(alpha=1.1, s0=0.2)),
        ):
            cells = []
            for cost_model in COST_MODELS:
                market = Market(flows, model, cost_model, blended_rate=20.0)
                cells.append(str(tiers_needed(market)).rjust(18))
            print(network.ljust(11) + family.ljust(8) + "".join(cells))

    print(
        "\nReading guide: a handful of well-chosen tiers suffices, as the"
        " paper concludes. The destination-type model needs only two (two"
        " cost classes); distance-based models mostly need three or four."
        " Networks with extreme demand variability (Internet2, demand CV"
        " 4.5) can need a few more - the paper's own observation that high"
        " demand CV requires more bundles."
    )


if __name__ == "__main__":
    main()
