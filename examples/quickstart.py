#!/usr/bin/env python3
"""Quickstart: how many pricing tiers does a transit ISP need?

Loads a synthetic EU-ISP traffic matrix (calibrated to the paper's
Table 1), calibrates the constant-elasticity demand model and the linear
cost model against the current $20/Mbps blended rate, and asks the
paper's central question: how much extra profit do 1..6 pricing tiers
capture, per bundling strategy?

Run:  python examples/quickstart.py
"""

from repro import (
    CEDDemand,
    LinearDistanceCost,
    Market,
    load_dataset,
    paper_strategies,
)


def main() -> None:
    flows = load_dataset("eu_isp", n_flows=120, seed=7)
    print(f"loaded {flows!r}")

    market = Market(
        flows,
        demand_model=CEDDemand(alpha=1.1),
        cost_model=LinearDistanceCost(theta=0.2),
        blended_rate=20.0,
    )
    print(market.describe())
    print(
        f"profit today (blended): ${market.blended_profit():,.0f}/month; "
        f"ceiling (per-flow pricing): ${market.max_profit():,.0f}/month\n"
    )

    bundle_counts = (1, 2, 3, 4, 5, 6)
    header = "strategy".ljust(18) + "".join(f"{b:>8}" for b in bundle_counts)
    print(header)
    print("-" * len(header))
    for strategy in paper_strategies():
        captures = [
            market.tiered_outcome(strategy, b).profit_capture
            for b in bundle_counts
        ]
        row = strategy.name.ljust(18) + "".join(f"{c:8.3f}" for c in captures)
        print(row)

    print(
        "\nThe paper's headline: with the right bundling, 3-4 tiers capture"
        " 90-95% of the profit an infinite number of tiers would."
    )
    best = market.tiered_outcome(paper_strategies()[0], 3)
    print("\nA concrete 3-tier design (optimal bundling):")
    for i, tier in enumerate(best.tiers, start=1):
        print(
            f"  tier {i}: ${tier.price:6.2f}/Mbps  "
            f"{tier.n_flows:4d} destinations  "
            f"{tier.demand_mbps:10.1f} Mbps  "
            f"(mean cost ${tier.mean_cost:.2f})"
        )
    print(f"  -> profit capture {best.profit_capture:.1%}")


if __name__ == "__main__":
    main()
