"""Smoke tests: every example script runs cleanly end to end.

The examples are a deliverable in their own right; these tests keep them
green as the library evolves.  Each script must exit 0 and produce the
output its walkthrough promises.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

#: script -> a phrase its output must contain.
EXPECTED_OUTPUT = {
    "quickstart.py": "profit capture",
    "tier_design_study.py": "Tiers needed",
    "peering_bypass_analysis.py": "market-failure window",
    "accounting_simulation.py": "schemes agree",
    "custom_network.py": "3-tier design",
    "welfare_and_billing.py": "Pareto",
    "competition_study.py": "granularity game",
    "customer_routing.py": "hot-potato",
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (name, result.stderr[-2000:])
    return result.stdout


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_OUTPUT), (
        "examples/ and EXPECTED_OUTPUT drifted apart"
    )


@pytest.mark.parametrize("name", sorted(EXPECTED_OUTPUT))
def test_example_runs(name):
    stdout = run_example(name)
    assert EXPECTED_OUTPUT[name] in stdout, name
    assert len(stdout.splitlines()) >= 5, name
