"""Tests for the six bundling strategies (paper §4.2.1)."""

import numpy as np
import pytest

from repro.core.bundling import (
    BundlingInputs,
    ClassAwareBundling,
    CostDivisionBundling,
    CostWeightedBundling,
    DemandWeightedBundling,
    IndexDivisionBundling,
    OptimalBundling,
    ProfitWeightedBundling,
    evaluate_partition,
    iter_partitions,
    paper_strategies,
    strategy_by_name,
    token_bucket_partition,
)
from repro.core.ced import CEDDemand
from repro.core.logit import LogitDemand
from repro.errors import BundlingError


def make_inputs(demands, costs, model=None, classes=None, blended_rate=20.0):
    """Calibrate a BundlingInputs snapshot from raw demand/cost arrays."""
    model = model or CEDDemand(alpha=1.1)
    demands = np.asarray(demands, dtype=float)
    costs = np.asarray(costs, dtype=float)
    valuations = model.fit_valuations(demands, blended_rate)
    return BundlingInputs(
        model=model,
        demands=demands,
        valuations=valuations,
        costs=costs,
        potential_profits=model.potential_profits(valuations, costs),
        classes=classes,
    )


def as_sets(bundles):
    return sorted((frozenset(int(i) for i in b) for b in bundles), key=min)


class TestTokenBucket:
    def test_paper_worked_example(self):
        # Demands (30, 10, 10, 10) into two bundles -> {30} and the rest.
        bundles = token_bucket_partition(np.array([30.0, 10.0, 10.0, 10.0]), 2)
        assert as_sets(bundles) == [frozenset({0}), frozenset({1, 2, 3})]

    def test_deficit_carry_cascades_heavy_flows(self):
        # One huge flow eats several budgets; next flows start new bundles.
        bundles = token_bucket_partition(np.array([100.0, 10.0, 10.0]), 3)
        assert as_sets(bundles)[0] == frozenset({0})
        assert len(bundles) <= 3

    def test_uniform_weights_split_evenly(self):
        bundles = token_bucket_partition(np.ones(9), 3)
        assert sorted(len(b) for b in bundles) == [3, 3, 3]

    def test_every_flow_assigned_exactly_once(self, rng):
        w = rng.lognormal(0, 1.5, 40)
        bundles = token_bucket_partition(w, 5)
        assigned = np.concatenate(bundles)
        assert sorted(assigned.tolist()) == list(range(40))

    def test_single_bundle(self):
        bundles = token_bucket_partition(np.array([3.0, 1.0]), 1)
        assert as_sets(bundles) == [frozenset({0, 1})]


class TestWeightedStrategies:
    def test_demand_weighted_groups_by_demand(self):
        inputs = make_inputs([30.0, 10.0, 10.0, 10.0], [1.0, 1.0, 1.0, 1.0])
        bundles = DemandWeightedBundling().bundle(inputs, 2)
        assert as_sets(bundles) == [frozenset({0}), frozenset({1, 2, 3})]

    def test_cost_weighted_separates_local_flows(self):
        # Weights 1/c: the cheap (local) flow dominates the token budget
        # and gets its own bundle; long-haul flows share.
        inputs = make_inputs(
            [10.0, 10.0, 10.0, 10.0], [1.0, 10.0, 12.0, 15.0]
        )
        bundles = CostWeightedBundling().bundle(inputs, 2)
        assert frozenset({0}) in as_sets(bundles)

    def test_profit_weighted_beats_or_matches_demand_weighted(self, rng):
        demands = rng.lognormal(2.0, 1.5, 30)
        costs = rng.uniform(0.5, 10.0, 30)
        inputs = make_inputs(demands, costs)
        for n_bundles in (2, 3, 4):
            pw = evaluate_partition(
                inputs.model,
                inputs.valuations,
                inputs.costs,
                ProfitWeightedBundling().bundle(inputs, n_bundles),
            )
            dw = evaluate_partition(
                inputs.model,
                inputs.valuations,
                inputs.costs,
                DemandWeightedBundling().bundle(inputs, n_bundles),
            )
            assert pw >= dw - 1e-9

    def test_weights_must_be_positive(self):
        inputs = make_inputs([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        bad = BundlingInputs(
            model=inputs.model,
            demands=np.array([1.0, -2.0, 3.0]),
            valuations=inputs.valuations,
            costs=inputs.costs,
            potential_profits=inputs.potential_profits,
        )
        with pytest.raises(BundlingError, match="positive"):
            DemandWeightedBundling().bundle(bad, 2)


class TestDivisionStrategies:
    def test_cost_division_paper_example(self):
        # Most expensive flow $10, two bundles: $0-4.99 and $5-10.
        inputs = make_inputs(
            [1.0, 1.0, 1.0, 1.0], [1.0, 4.9, 5.1, 10.0]
        )
        bundles = CostDivisionBundling().bundle(inputs, 2)
        assert as_sets(bundles) == [frozenset({0, 1}), frozenset({2, 3})]

    def test_cost_division_drops_empty_ranges(self):
        inputs = make_inputs([1.0, 1.0], [1.0, 10.0])
        bundles = CostDivisionBundling().bundle(inputs, 2)
        # Wait - 1.0 falls in [0,5), 10.0 in [5,10]: two bundles.
        assert len(bundles) == 2
        # Now cluster costs so lower ranges are empty: with five flows in
        # [9, 10] and four ranges over [0, 10], everything lands in the
        # topmost range and the empty ranges are dropped.
        inputs = make_inputs(
            [1.0, 1.0, 1.0, 1.0, 1.0], [9.0, 9.2, 9.5, 9.8, 10.0]
        )
        bundles = CostDivisionBundling().bundle(inputs, 4)
        assert len(bundles) == 1

    def test_index_division_equal_chunks(self):
        inputs = make_inputs(
            np.ones(6), [6.0, 5.0, 4.0, 3.0, 2.0, 1.0]
        )
        bundles = IndexDivisionBundling().bundle(inputs, 3)
        # Cheapest flows are indices 4-5, then 2-3, then 0-1.
        assert as_sets(bundles) == [
            frozenset({0, 1}),
            frozenset({2, 3}),
            frozenset({4, 5}),
        ]

    def test_index_division_is_cost_contiguous(self, rng):
        costs = rng.uniform(1.0, 30.0, 20)
        inputs = make_inputs(np.ones(20), costs)
        bundles = IndexDivisionBundling().bundle(inputs, 4)
        maxima = sorted(max(costs[b]) for b in bundles)
        minima = sorted(min(costs[b]) for b in bundles)
        for hi, lo in zip(maxima[:-1], minima[1:]):
            assert hi <= lo


class TestStrategyContract:
    @pytest.mark.parametrize("strategy", paper_strategies(), ids=lambda s: s.name)
    def test_partition_is_exact(self, strategy, rng):
        demands = rng.lognormal(2.0, 1.0, 12)
        costs = rng.uniform(0.5, 8.0, 12)
        inputs = make_inputs(demands, costs)
        for n_bundles in (1, 3, 12, 20):
            bundles = strategy.bundle(inputs, n_bundles)
            assigned = sorted(int(i) for b in bundles for i in b)
            assert assigned == list(range(12))
            assert len(bundles) <= min(n_bundles, 12)

    @pytest.mark.parametrize("strategy", paper_strategies(), ids=lambda s: s.name)
    def test_more_bundles_than_flows_gives_singletons(self, strategy):
        inputs = make_inputs([5.0, 2.0, 1.0], [1.0, 2.0, 3.0])
        bundles = strategy.bundle(inputs, 10)
        assert as_sets(bundles) == [frozenset({0}), frozenset({1}), frozenset({2})]

    @pytest.mark.parametrize("strategy", paper_strategies(), ids=lambda s: s.name)
    def test_zero_bundles_rejected(self, strategy):
        inputs = make_inputs([1.0], [1.0])
        with pytest.raises(BundlingError):
            strategy.bundle(inputs, 0)

    def test_strategy_by_name(self):
        assert strategy_by_name("optimal").name == "optimal"
        assert strategy_by_name("cost-division").name == "cost-division"
        with pytest.raises(BundlingError):
            strategy_by_name("k-means")


class TestIterPartitions:
    def test_counts_small_cases(self):
        # Bell numbers with block limit: n=3, max 3 blocks -> 5 partitions.
        assert len(list(iter_partitions(3, 3))) == 5
        # n=3, at most 2 blocks -> 4 (drop the all-singletons one).
        assert len(list(iter_partitions(3, 2))) == 4
        # n=4, at most 2 blocks -> S(4,1) + S(4,2) = 1 + 7 = 8.
        assert len(list(iter_partitions(4, 2))) == 8

    def test_partitions_are_valid(self):
        for blocks in iter_partitions(4, 3):
            items = sorted(i for block in blocks for i in block)
            assert items == [0, 1, 2, 3]
            assert 1 <= len(blocks) <= 3


class TestOptimalBundling:
    @pytest.mark.parametrize("family", ["ced", "logit"])
    def test_dp_matches_exhaustive_on_small_instances(self, family, rng):
        model = (
            CEDDemand(alpha=1.3)
            if family == "ced"
            else LogitDemand(alpha=1.3, s0=0.2)
        )
        for trial in range(6):
            n = 7
            demands = rng.lognormal(1.0, 1.2, n)
            costs = rng.uniform(0.5, 6.0, n)
            inputs = make_inputs(demands, costs, model=model)
            for n_bundles in (2, 3):
                exhaustive = OptimalBundling(exhaustive_limit=10)
                dp = OptimalBundling(exhaustive_limit=0)
                profit_exh = evaluate_partition(
                    model,
                    inputs.valuations,
                    inputs.costs,
                    exhaustive.bundle(inputs, n_bundles),
                )
                profit_dp = evaluate_partition(
                    model,
                    inputs.valuations,
                    inputs.costs,
                    dp.bundle(inputs, n_bundles),
                )
                assert profit_dp == pytest.approx(profit_exh, rel=1e-9), (
                    family,
                    trial,
                    n_bundles,
                )

    @pytest.mark.parametrize("family", ["ced", "logit"])
    def test_optimal_dominates_heuristics(self, family, rng):
        model = (
            CEDDemand(alpha=1.1)
            if family == "ced"
            else LogitDemand(alpha=1.1, s0=0.2)
        )
        demands = rng.lognormal(2.0, 1.5, 40)
        costs = rng.uniform(0.5, 10.0, 40)
        inputs = make_inputs(demands, costs, model=model)
        for n_bundles in (2, 4):
            profits = {}
            for strategy in paper_strategies():
                bundles = strategy.bundle(inputs, n_bundles)
                profits[strategy.name] = evaluate_partition(
                    model, inputs.valuations, inputs.costs, bundles
                )
            best_heuristic = max(
                v for k, v in profits.items() if k != "optimal"
            )
            assert profits["optimal"] >= best_heuristic - 1e-9

    def test_more_bundles_never_hurt_optimal(self, rng):
        inputs = make_inputs(
            rng.lognormal(2.0, 1.0, 20), rng.uniform(1.0, 9.0, 20)
        )
        strategy = OptimalBundling()
        profits = [
            evaluate_partition(
                inputs.model,
                inputs.valuations,
                inputs.costs,
                strategy.bundle(inputs, b),
            )
            for b in (1, 2, 3, 4, 5)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(profits, profits[1:]))

    def test_exhaustive_limit_validation(self):
        with pytest.raises(BundlingError):
            OptimalBundling(exhaustive_limit=-1)

    def test_two_cost_classes_need_only_two_bundles(self):
        # With exactly two distinct costs, the optimum at B=2 separates
        # them perfectly and B=3 adds nothing.
        demands = np.array([5.0, 7.0, 3.0, 8.0, 2.0, 6.0])
        costs = np.array([1.0, 1.0, 1.0, 2.0, 2.0, 2.0])
        inputs = make_inputs(demands, costs)
        strategy = OptimalBundling()
        two = evaluate_partition(
            inputs.model,
            inputs.valuations,
            inputs.costs,
            strategy.bundle(inputs, 2),
        )
        three = evaluate_partition(
            inputs.model,
            inputs.valuations,
            inputs.costs,
            strategy.bundle(inputs, 3),
        )
        assert three == pytest.approx(two)
        bundles = strategy.bundle(inputs, 2)
        for members in bundles:
            assert len(set(costs[members])) == 1


class TestClassAwareBundling:
    def test_never_mixes_classes(self, rng):
        n = 12
        demands = rng.lognormal(1.0, 1.0, n)
        costs = np.where(np.arange(n) < 6, 1.0, 2.0)
        classes = tuple("on" if i < 6 else "off" for i in range(n))
        inputs = make_inputs(demands, costs, classes=classes)
        strategy = ClassAwareBundling(ProfitWeightedBundling())
        for n_bundles in (2, 3, 5):
            bundles = strategy.bundle(inputs, n_bundles)
            for members in bundles:
                labels = {classes[int(i)] for i in members}
                assert len(labels) == 1

    def test_falls_back_without_classes(self):
        inputs = make_inputs([3.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        inner = ProfitWeightedBundling()
        aware = ClassAwareBundling(inner)
        assert as_sets(aware.bundle(inputs, 2)) == as_sets(
            inner.bundle(inputs, 2)
        )

    def test_falls_back_when_fewer_bundles_than_classes(self):
        classes = ("a", "b", "c")
        inputs = make_inputs([1.0, 2.0, 3.0], [1.0, 2.0, 3.0], classes=classes)
        bundles = ClassAwareBundling(ProfitWeightedBundling()).bundle(inputs, 2)
        # Constraint unsatisfiable: plain strategy output (may mix).
        assert sorted(i for b in bundles for i in b) == [0, 1, 2]

    def test_every_class_gets_a_bundle(self):
        classes = ("a", "a", "b", "b", "c", "c")
        inputs = make_inputs(
            [10.0, 9.0, 1.0, 1.0, 1.0, 1.0],
            [1.0, 1.0, 2.0, 2.0, 3.0, 3.0],
            classes=classes,
        )
        bundles = ClassAwareBundling(ProfitWeightedBundling()).bundle(inputs, 3)
        covered = {classes[int(i)] for b in bundles for i in [b[0]]}
        assert covered == {"a", "b", "c"}

    def test_name_mentions_inner(self):
        aware = ClassAwareBundling(CostWeightedBundling())
        assert "cost-weighted" in aware.name
