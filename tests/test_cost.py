"""Tests for the four cost models (paper §3.3)."""

import numpy as np
import pytest

from repro.core.cost import (
    ConcaveDistanceCost,
    CostedFlows,
    DestinationTypeCost,
    LinearDistanceCost,
    OFF_NET,
    ON_NET,
    RegionalCost,
    default_cost_models,
    fit_concave_price_curve,
)
from repro.core.flow import FlowSet, INTERNATIONAL, METRO, NATIONAL
from repro.errors import DataError, ModelParameterError


class TestLinearDistanceCost:
    def test_paper_worked_example(self):
        # §3.3: distances (1, 10, 100), theta=0.1 -> base 10, costs
        # (11, 20, 110) at gamma=1.
        flows = FlowSet(demands_mbps=[1.0, 1.0, 1.0], distances_miles=[1, 10, 100])
        costed = LinearDistanceCost(theta=0.1).prepare(flows)
        assert costed.relative_costs == pytest.approx([11.0, 20.0, 110.0])

    def test_zero_theta_is_pure_distance(self):
        flows = FlowSet(demands_mbps=[1.0, 1.0], distances_miles=[2.0, 8.0])
        costed = LinearDistanceCost(theta=0.0).prepare(flows)
        assert costed.relative_costs == pytest.approx([2.0, 8.0])

    def test_distance_floor_applies(self):
        flows = FlowSet(demands_mbps=[1.0, 1.0], distances_miles=[0.0, 100.0])
        costed = LinearDistanceCost(theta=0.0).prepare(flows)
        assert costed.relative_costs[0] == pytest.approx(1.0)

    def test_higher_theta_lowers_cost_cv(self):
        flows = FlowSet(
            demands_mbps=[1.0, 1.0, 1.0], distances_miles=[1.0, 50.0, 500.0]
        )
        def cv(theta):
            f = LinearDistanceCost(theta=theta).prepare(flows).relative_costs
            return np.std(f) / np.mean(f)
        assert cv(0.3) < cv(0.1) < cv(0.0)

    def test_no_classes_emitted(self, small_flows):
        assert LinearDistanceCost(theta=0.2).prepare(small_flows).classes is None

    @pytest.mark.parametrize("theta", [-0.1, float("nan")])
    def test_invalid_theta_rejected(self, theta):
        with pytest.raises(ModelParameterError):
            LinearDistanceCost(theta=theta)

    def test_invalid_floor_rejected(self):
        with pytest.raises(ModelParameterError):
            LinearDistanceCost(theta=0.1, min_distance_miles=0.0)


class TestConcaveDistanceCost:
    def test_costs_positive_and_increasing(self, small_flows):
        costed = ConcaveDistanceCost(theta=0.1).prepare(small_flows)
        f = costed.relative_costs
        order = np.argsort(small_flows.distances)
        assert np.all(f > 0)
        assert np.all(np.diff(f[order]) > 0)

    def test_concavity_compresses_long_distances(self):
        flows = FlowSet(
            demands_mbps=[1.0, 1.0, 1.0], distances_miles=[1.0, 100.0, 10000.0]
        )
        f = ConcaveDistanceCost(theta=0.0).prepare(flows).relative_costs
        # Equal distance ratios give equal cost increments (log law).
        assert f[1] - f[0] == pytest.approx(f[2] - f[1])

    def test_defaults_match_figure6_fit(self):
        # a=0.5, b=6, c=1: cost at the 1-mile floor is exactly c.
        flows = FlowSet(demands_mbps=[1.0], distances_miles=[1.0])
        f = ConcaveDistanceCost(theta=0.0).prepare(flows).relative_costs
        assert f[0] == pytest.approx(1.0)

    def test_base_cost_offset(self):
        flows = FlowSet(demands_mbps=[1.0, 1.0], distances_miles=[1.0, 36.0])
        # g = (1, 2) with defaults (log_6 36 = 2); theta=0.5 -> beta = 1.
        f = ConcaveDistanceCost(theta=0.5).prepare(flows).relative_costs
        assert f == pytest.approx([2.0, 3.0])

    @pytest.mark.parametrize(
        "kwargs", [{"a": 0.0}, {"a": -1.0}, {"b": 1.0}, {"b": 0.5}, {"c": -0.1}]
    )
    def test_invalid_shape_rejected(self, kwargs):
        with pytest.raises(ModelParameterError):
            ConcaveDistanceCost(theta=0.1, **kwargs)

    def test_nonpositive_cost_at_floor_rejected(self):
        flows = FlowSet(demands_mbps=[1.0], distances_miles=[1.0])
        # c=0 makes g(1 mile) = 0 -> invalid.
        with pytest.raises(ModelParameterError, match="min_distance"):
            ConcaveDistanceCost(theta=0.1, c=0.0).prepare(flows)


class TestRegionalCost:
    def test_threshold_classification(self, small_flows):
        model = RegionalCost(theta=1.0)
        labels = model.classify(small_flows)
        assert labels == (METRO, NATIONAL, INTERNATIONAL, INTERNATIONAL)

    def test_stored_labels_take_precedence(self):
        flows = FlowSet(
            demands_mbps=[1.0],
            distances_miles=[5000.0],
            regions=[METRO],  # contradicts distance; label wins
        )
        assert RegionalCost(theta=1.0).classify(flows) == (METRO,)

    def test_theta_zero_equalizes_costs(self, small_flows):
        f = RegionalCost(theta=0.0).prepare(small_flows).relative_costs
        assert np.all(f == 1.0)

    def test_theta_one_is_linear_1_2_3(self, small_flows):
        f = RegionalCost(theta=1.0).prepare(small_flows).relative_costs
        assert f == pytest.approx([1.0, 2.0, 3.0, 3.0])

    def test_theta_above_one_is_superlinear(self, small_flows):
        f = RegionalCost(theta=2.0).prepare(small_flows).relative_costs
        assert f == pytest.approx([1.0, 4.0, 9.0, 9.0])

    def test_classes_are_region_labels(self, small_flows):
        costed = RegionalCost(theta=1.1).prepare(small_flows)
        assert costed.classes == (METRO, NATIONAL, INTERNATIONAL, INTERNATIONAL)

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ModelParameterError):
            RegionalCost(theta=1.0, metro_miles=100.0, national_miles=10.0)

    def test_custom_thresholds(self):
        flows = FlowSet(demands_mbps=[1.0, 1.0], distances_miles=[40.0, 40.0])
        wide = RegionalCost(theta=1.0, metro_miles=50.0, national_miles=100.0)
        assert wide.classify(flows) == (METRO, METRO)


class TestDestinationTypeCost:
    def test_split_preserves_total_demand(self, small_flows):
        costed = DestinationTypeCost(theta=0.3).prepare(small_flows)
        assert costed.flows.demands.sum() == pytest.approx(
            small_flows.demands.sum()
        )
        assert len(costed.flows) == 2 * len(small_flows)

    def test_split_fractions(self, small_flows):
        costed = DestinationTypeCost(theta=0.25).prepare(small_flows)
        n = len(small_flows)
        assert costed.flows.demands[:n] == pytest.approx(
            0.25 * small_flows.demands
        )
        assert costed.flows.demands[n:] == pytest.approx(
            0.75 * small_flows.demands
        )

    def test_off_net_costs_twice_on_net(self, small_flows):
        costed = DestinationTypeCost(theta=0.5).prepare(small_flows)
        n = len(small_flows)
        assert np.all(costed.relative_costs[n:] == 2.0 * costed.relative_costs[:n])

    def test_two_flat_cost_classes(self, small_flows):
        costed = DestinationTypeCost(theta=0.5).prepare(small_flows)
        assert set(np.unique(costed.relative_costs)) == {1.0, 2.0}

    def test_class_labels(self, small_flows):
        costed = DestinationTypeCost(theta=0.5).prepare(small_flows)
        n = len(small_flows)
        assert costed.classes[:n] == (ON_NET,) * n
        assert costed.classes[n:] == (OFF_NET,) * n

    def test_region_labels_carried_through(self, labeled_flows):
        costed = DestinationTypeCost(theta=0.5).prepare(labeled_flows)
        assert costed.flows.regions == tuple(labeled_flows.regions) * 2

    @pytest.mark.parametrize("theta", [0.0, 1.0, -0.3, 2.0])
    def test_theta_must_be_a_fraction(self, theta):
        with pytest.raises(ModelParameterError):
            DestinationTypeCost(theta=theta)


class TestCostedFlows:
    def test_shape_mismatch_rejected(self, small_flows):
        with pytest.raises(DataError):
            CostedFlows(flows=small_flows, relative_costs=np.array([1.0]))

    def test_nonpositive_costs_rejected(self, small_flows):
        with pytest.raises(DataError):
            CostedFlows(
                flows=small_flows, relative_costs=np.array([1.0, 2.0, 0.0, 1.0])
            )

    def test_class_length_mismatch_rejected(self, small_flows):
        with pytest.raises(DataError):
            CostedFlows(
                flows=small_flows,
                relative_costs=np.ones(4),
                classes=("a",),
            )


class TestConcaveFit:
    def test_recovers_exact_curve(self):
        x = np.linspace(0.05, 1.0, 30)
        y = 0.25 * np.log(x) + 0.9
        fit = fit_concave_price_curve(x, y)
        assert fit.k == pytest.approx(0.25, abs=1e-9)
        assert fit.c == pytest.approx(0.9, abs=1e-9)
        assert fit.residual == pytest.approx(0.0, abs=1e-9)

    def test_predict(self):
        x = np.linspace(0.1, 1.0, 20)
        fit = fit_concave_price_curve(x, 0.3 * np.log(x) + 1.0)
        assert fit.predict(np.array([1.0]))[0] == pytest.approx(1.0)

    def test_a_for_base_conversion(self):
        x = np.linspace(0.1, 1.0, 20)
        fit = fit_concave_price_curve(x, 0.3 * np.log(x) + 1.0)
        # a = k * ln(b): with b = e, a == k.
        assert fit.a_for_base(np.e) == pytest.approx(fit.k)
        with pytest.raises(ModelParameterError):
            fit.a_for_base(1.0)

    def test_rejects_nonpositive_distance(self):
        with pytest.raises(DataError):
            fit_concave_price_curve(np.array([0.0, 1.0]), np.array([1.0, 2.0]))

    def test_rejects_short_input(self):
        with pytest.raises(DataError):
            fit_concave_price_curve(np.array([1.0]), np.array([1.0]))


def test_default_cost_models_cover_all_four():
    models = default_cost_models()
    assert [m.name for m in models] == [
        "linear",
        "concave",
        "regional",
        "destination-type",
    ]


def test_default_cost_models_theta_override():
    models = default_cost_models(theta=0.5)
    assert all(m.theta == 0.5 for m in models)


class TestStepDistanceCost:
    def test_reach_classes(self):
        from repro.core.cost import StepDistanceCost

        flows = FlowSet(
            demands_mbps=[1.0] * 6,
            distances_miles=[0.1, 1.0, 10.0, 40.0, 300.0, 3000.0],
        )
        costed = StepDistanceCost(theta=0.0).prepare(flows)
        assert costed.relative_costs == pytest.approx(
            [1.0, 2.0, 4.0, 7.0, 12.0, 30.0]
        )
        assert costed.classes == (
            "reach-0",
            "reach-1",
            "reach-2",
            "reach-3",
            "reach-4",
            "reach-5",
        )

    def test_base_cost_offset(self):
        from repro.core.cost import StepDistanceCost

        flows = FlowSet(demands_mbps=[1.0, 1.0], distances_miles=[0.1, 3000.0])
        costed = StepDistanceCost(theta=0.1).prepare(flows)
        assert costed.relative_costs == pytest.approx([4.0, 33.0])

    def test_monotone_in_distance(self):
        from repro.core.cost import StepDistanceCost

        flows = FlowSet(
            demands_mbps=np.ones(50),
            distances_miles=np.linspace(0.01, 5000.0, 50),
        )
        f = StepDistanceCost(theta=0.2).prepare(flows).relative_costs
        assert np.all(np.diff(f) >= 0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"thresholds": (1.0, 1.0), "levels": (1.0, 2.0, 3.0)},
            {"thresholds": (1.0, 2.0), "levels": (1.0, 2.0)},
            {"thresholds": (1.0,), "levels": (2.0, 1.0)},
            {"thresholds": (1.0,), "levels": (0.0, 1.0)},
        ],
    )
    def test_validation(self, kwargs):
        from repro.core.cost import StepDistanceCost

        with pytest.raises(ModelParameterError):
            StepDistanceCost(theta=0.1, **kwargs)

    def test_few_levels_need_few_tiers(self):
        """With k occupied cost levels, k tiers capture everything."""
        from repro.core.bundling import OptimalBundling
        from repro.core.ced import CEDDemand
        from repro.core.cost import StepDistanceCost
        from repro.core.market import Market

        rng = np.random.default_rng(2)
        flows = FlowSet(
            demands_mbps=rng.lognormal(2.0, 1.0, 30),
            distances_miles=rng.choice([1.0, 30.0, 1000.0], size=30),
        )
        market = Market(
            flows, CEDDemand(1.1), StepDistanceCost(theta=0.1), 20.0
        )
        outcome = market.tiered_outcome(OptimalBundling(), 3)
        assert outcome.profit_capture == pytest.approx(1.0, abs=1e-9)


class TestCallableCost:
    def test_wraps_a_function(self, small_flows):
        from repro.core.cost import CallableCost

        costed = CallableCost(lambda d: d**0.5, theta=0.0).prepare(small_flows)
        assert costed.relative_costs == pytest.approx(
            np.sqrt(np.maximum(small_flows.distances, 1.0))
        )

    def test_base_cost(self, small_flows):
        from repro.core.cost import CallableCost

        flat = CallableCost(lambda d: 1.0, theta=0.5).prepare(small_flows)
        assert flat.relative_costs == pytest.approx([1.5] * 4)

    def test_bad_function_rejected(self, small_flows):
        from repro.core.cost import CallableCost

        with pytest.raises(ModelParameterError, match="non-positive"):
            CallableCost(lambda d: -1.0).prepare(small_flows)
        with pytest.raises(ModelParameterError, match="callable"):
            CallableCost(42)

    def test_describe_names_the_function(self):
        from repro.core.cost import CallableCost

        def fiber_lease(d):
            return d + 1.0

        assert "fiber_lease" in CallableCost(fiber_lease).describe()

    def test_usable_in_a_market(self, medium_flows):
        from repro.core.ced import CEDDemand
        from repro.core.cost import CallableCost
        from repro.core.market import Market

        market = Market(
            medium_flows,
            CEDDemand(1.1),
            CallableCost(lambda d: 1.0 + d / 100.0),
            blended_rate=20.0,
        )
        assert market.max_profit() > market.blended_profit()
