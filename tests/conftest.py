"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ced import CEDDemand
from repro.core.cost import LinearDistanceCost
from repro.core.flow import FlowSet
from repro.core.logit import LogitDemand
from repro.core.market import Market


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_flows():
    """Four flows with distinct demands and distances (no labels)."""
    return FlowSet(
        demands_mbps=[120.0, 40.0, 8.0, 2.0],
        distances_miles=[5.0, 60.0, 400.0, 2500.0],
    )


@pytest.fixture
def labeled_flows():
    """Flows carrying region labels."""
    return FlowSet(
        demands_mbps=[100.0, 50.0, 25.0, 10.0, 5.0],
        distances_miles=[2.0, 30.0, 80.0, 700.0, 4000.0],
        regions=["metro", "national", "national", "international", "international"],
    )


@pytest.fixture
def medium_flows(rng):
    """Fifty heavy-tailed flows for bundling/market tests."""
    demands = rng.lognormal(mean=2.0, sigma=1.3, size=50)
    distances = rng.lognormal(mean=4.0, sigma=0.8, size=50)
    return FlowSet(demands_mbps=demands, distances_miles=distances)


@pytest.fixture
def ced_model():
    return CEDDemand(alpha=1.1)


@pytest.fixture
def logit_model():
    return LogitDemand(alpha=1.1, s0=0.2)


@pytest.fixture
def ced_market(medium_flows, ced_model):
    return Market(
        medium_flows, ced_model, LinearDistanceCost(theta=0.2), blended_rate=20.0
    )


@pytest.fixture
def logit_market(medium_flows, logit_model):
    return Market(
        medium_flows, logit_model, LinearDistanceCost(theta=0.2), blended_rate=20.0
    )


@pytest.fixture(params=["ced", "logit"])
def any_market(request, ced_market, logit_market):
    """Parametrized over both demand families."""
    return {"ced": ced_market, "logit": logit_market}[request.param]
