"""Cross-model grid: every demand family against every cost model.

The paper's robustness argument rests on the conclusions holding across
the model grid; these tests run the full calibrate-bundle-price loop for
all 3 demand families x 6 cost models and assert the shared invariants
(calibration consistency, capture bounds, monotonicity at the optimum).
"""

import numpy as np
import pytest

from repro.core.bundling import OptimalBundling, ProfitWeightedBundling
from repro.core.ced import CEDDemand
from repro.core.cost import (
    CallableCost,
    ConcaveDistanceCost,
    DestinationTypeCost,
    LinearDistanceCost,
    RegionalCost,
    StepDistanceCost,
)
from repro.core.linear import LinearDemand
from repro.core.logit import LogitDemand
from repro.core.market import Market
from repro.synth.datasets import load_dataset

DEMAND_FACTORIES = {
    "ced": lambda: CEDDemand(alpha=1.1),
    "logit": lambda: LogitDemand(alpha=1.1, s0=0.2),
    "linear": lambda: LinearDemand(kappa=1.5),
}

COST_FACTORIES = {
    "linear": lambda: LinearDistanceCost(theta=0.2),
    "concave": lambda: ConcaveDistanceCost(theta=0.2),
    "regional": lambda: RegionalCost(theta=1.1),
    "destination-type": lambda: DestinationTypeCost(theta=0.1),
    "step": lambda: StepDistanceCost(theta=0.1),
    "callable": lambda: CallableCost(lambda d: 1.0 + d / 50.0, theta=0.1),
}


@pytest.fixture(scope="module")
def flows():
    return load_dataset("eu_isp", n_flows=60, seed=13)


@pytest.fixture(
    scope="module",
    params=[
        (demand, cost)
        for demand in DEMAND_FACTORIES
        for cost in COST_FACTORIES
    ],
    ids=lambda pair: f"{pair[0]}+{pair[1]}",
)
def grid_market(request, flows):
    demand_name, cost_name = request.param
    return Market(
        flows,
        DEMAND_FACTORIES[demand_name](),
        COST_FACTORIES[cost_name](),
        blended_rate=20.0,
    )


class TestGridInvariants:
    def test_calibration_reproduces_observed_demand(self, grid_market):
        q = grid_market.quantities(grid_market.blended_prices())
        assert q == pytest.approx(grid_market.flows.demands, rel=1e-6)

    def test_blended_rate_is_uniform_optimum(self, grid_market):
        best = grid_market.blended_profit()
        n = grid_market.n_flows
        for price in np.linspace(10.0, 29.0, 24):
            assert grid_market.profit_at(np.full(n, price)) <= best * (1 + 1e-9)

    def test_gamma_and_costs_positive(self, grid_market):
        assert grid_market.gamma > 0
        assert np.all(grid_market.costs > 0)

    def test_max_profit_bounds_everything(self, grid_market):
        maximum = grid_market.max_profit()
        assert maximum >= grid_market.blended_profit() - 1e-9
        outcome = grid_market.tiered_outcome(ProfitWeightedBundling(), 3)
        assert outcome.profit <= maximum + 1e-9 * max(1.0, abs(maximum))

    def test_capture_in_unit_interval(self, grid_market):
        for n_bundles in (2, 4):
            outcome = grid_market.tiered_outcome(
                ProfitWeightedBundling(), n_bundles
            )
            assert -1e-6 <= outcome.profit_capture <= 1.0 + 1e-6

    def test_optimal_capture_weakly_increasing(self, grid_market):
        strategy = OptimalBundling()
        curve = [
            grid_market.tiered_outcome(strategy, b).profit_capture
            for b in (1, 2, 3)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(curve, curve[1:]))

    def test_tier_summaries_consistent(self, grid_market):
        outcome = grid_market.tiered_outcome(ProfitWeightedBundling(), 3)
        assert sum(t.n_flows for t in outcome.tiers) == grid_market.n_flows
        for tier in outcome.tiers:
            assert tier.price > 0
            assert tier.demand_mbps >= 0
