"""Tests for the calibrated market and counterfactual engine (§3-4)."""

import numpy as np
import pytest

from repro.core.bundling import (
    OptimalBundling,
    ProfitWeightedBundling,
    paper_strategies,
)
from repro.core.ced import CEDDemand
from repro.core.cost import (
    DestinationTypeCost,
    LinearDistanceCost,
    RegionalCost,
)
from repro.core.logit import LogitDemand
from repro.core.market import Market, capture_table
from repro.errors import ModelParameterError


class TestCalibrationInvariants:
    def test_quantities_at_blended_rate_match_observed(self, any_market):
        q = any_market.quantities(any_market.blended_prices())
        assert q == pytest.approx(any_market.flows.demands)

    def test_blended_rate_is_optimal_uniform_price(self, any_market):
        # No single price improves on P0 after calibration.
        best = any_market.blended_profit()
        n = any_market.n_flows
        for price in np.linspace(8.0, 45.0, 60):
            assert any_market.profit_at(np.full(n, price)) <= best + 1e-9

    def test_costs_are_gamma_times_relative(self, ced_market):
        assert ced_market.costs == pytest.approx(
            ced_market.gamma * ced_market.relative_costs
        )

    def test_max_profit_exceeds_blended(self, any_market):
        assert any_market.max_profit() > any_market.blended_profit()

    def test_max_profit_unbeatable_by_random_prices(self, ced_market, rng):
        v, c = ced_market.valuations, ced_market.costs
        best = ced_market.max_profit()
        for _ in range(30):
            prices = ced_market.optimal_flow_prices() * rng.uniform(
                0.7, 1.3, ced_market.n_flows
            )
            assert ced_market.profit_at(prices) <= best + 1e-9
        del v, c

    def test_invalid_blended_rate_rejected(self, medium_flows, ced_model):
        with pytest.raises(ModelParameterError):
            Market(medium_flows, ced_model, LinearDistanceCost(0.2), blended_rate=0.0)


class TestProfitCapture:
    def test_capture_of_blended_profit_is_zero(self, any_market):
        assert any_market.profit_capture(any_market.blended_profit()) == (
            pytest.approx(0.0, abs=1e-9)
        )

    def test_capture_of_max_profit_is_one(self, any_market):
        assert any_market.profit_capture(any_market.max_profit()) == (
            pytest.approx(1.0)
        )

    def test_single_bundle_captures_nothing(self, any_market):
        outcome = any_market.tiered_outcome(ProfitWeightedBundling(), 1)
        assert outcome.profit_capture == pytest.approx(0.0, abs=1e-9)

    def test_one_bundle_per_flow_captures_everything(self, any_market):
        outcome = any_market.tiered_outcome(
            ProfitWeightedBundling(), any_market.n_flows
        )
        assert outcome.profit_capture == pytest.approx(1.0)

    def test_optimal_capture_is_monotone_in_bundles(self, any_market):
        curve = [
            any_market.tiered_outcome(OptimalBundling(), b).profit_capture
            for b in (1, 2, 3, 4)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(curve, curve[1:]))

    def test_capture_between_zero_and_one_for_all_strategies(self, any_market):
        for strategy in paper_strategies():
            for b in (2, 4):
                capture = any_market.tiered_outcome(strategy, b).profit_capture
                assert -1e-9 <= capture <= 1.0 + 1e-9, (strategy.name, b)

    def test_degenerate_equal_costs_capture_is_one(self, ced_model):
        # All flows same distance -> same cost -> blended is already optimal.
        from repro.core.flow import FlowSet

        flows = FlowSet(
            demands_mbps=[5.0, 1.0, 9.0], distances_miles=[10.0, 10.0, 10.0]
        )
        market = Market(flows, ced_model, LinearDistanceCost(0.0), 20.0)
        assert market.profit_capture(market.blended_profit()) == 1.0


class TestTieredOutcome:
    def test_prices_equal_within_bundles(self, ced_market):
        outcome = ced_market.tiered_outcome(ProfitWeightedBundling(), 3)
        for members in outcome.bundles:
            assert np.allclose(
                outcome.prices[members], outcome.prices[members[0]]
            )

    def test_tier_summaries_sorted_by_price(self, any_market):
        outcome = any_market.tiered_outcome(ProfitWeightedBundling(), 4)
        prices = [t.price for t in outcome.tiers]
        assert prices == sorted(prices)

    def test_tier_demand_sums_to_market_demand(self, any_market):
        outcome = any_market.tiered_outcome(ProfitWeightedBundling(), 3)
        total = sum(t.demand_mbps for t in outcome.tiers)
        assert total == pytest.approx(
            float(any_market.quantities(outcome.prices).sum())
        )

    def test_tier_margin(self, ced_market):
        outcome = ced_market.tiered_outcome(ProfitWeightedBundling(), 3)
        for tier in outcome.tiers:
            assert tier.margin == pytest.approx(tier.price - tier.mean_cost)

    def test_welfare_is_profit_plus_surplus(self, any_market):
        outcome = any_market.tiered_outcome(ProfitWeightedBundling(), 3)
        assert outcome.welfare == pytest.approx(
            outcome.profit + outcome.consumer_surplus
        )

    def test_expensive_tiers_have_higher_mean_cost_under_ced(self, ced_market):
        # CED tier prices are markups over weighted mean cost, so price
        # order follows cost order.
        outcome = ced_market.tiered_outcome(OptimalBundling(), 3)
        costs = [t.mean_cost for t in outcome.tiers]
        assert costs == sorted(costs)

    def test_invalid_bundle_count_rejected(self, ced_market):
        with pytest.raises(ModelParameterError):
            ced_market.tiered_outcome(ProfitWeightedBundling(), 0)

    def test_strategy_name_recorded(self, ced_market):
        outcome = ced_market.tiered_outcome(ProfitWeightedBundling(), 2)
        assert outcome.strategy == "profit-weighted"
        assert outcome.n_bundles == 2


class TestTieredPricingWelfare:
    def test_tiered_pricing_raises_welfare_under_ced(self, ced_market):
        """The paper's §2.2.1 claim: tiering helps ISP *and* customers."""
        blended_welfare = (
            ced_market.blended_profit() + ced_market.blended_surplus()
        )
        outcome = ced_market.tiered_outcome(OptimalBundling(), 4)
        assert outcome.welfare > blended_welfare


class TestMarketWithOtherCostModels:
    def test_regional_market_exposes_classes(self, labeled_flows, ced_model):
        market = Market(
            labeled_flows, ced_model, RegionalCost(theta=1.1), blended_rate=20.0
        )
        assert market.classes is not None
        assert set(market.classes) <= {"metro", "national", "international"}

    def test_destination_type_market_doubles_flows(self, medium_flows, ced_model):
        market = Market(
            medium_flows,
            ced_model,
            DestinationTypeCost(theta=0.1),
            blended_rate=20.0,
        )
        assert market.n_flows == 2 * len(medium_flows)
        # Total demand preserved by the split.
        assert market.flows.demands.sum() == pytest.approx(
            medium_flows.demands.sum()
        )

    def test_logit_and_ced_agree_on_capture_sign(self, medium_flows):
        for model in (CEDDemand(1.1), LogitDemand(1.1, s0=0.2)):
            market = Market(
                medium_flows, model, LinearDistanceCost(0.2), blended_rate=20.0
            )
            outcome = market.tiered_outcome(OptimalBundling(), 3)
            assert outcome.profit_capture > 0.5


class TestCaptureTable:
    def test_table_shape(self, ced_market):
        strategies = [ProfitWeightedBundling(), OptimalBundling()]
        table = capture_table(ced_market, strategies, bundle_counts=(1, 2, 3))
        assert set(table) == {"profit-weighted", "optimal"}
        assert all(len(v) == 3 for v in table.values())

    def test_describe_mentions_models(self, ced_market):
        text = ced_market.describe()
        assert "constant-elasticity" in text
        assert "linear" in text
